#!/usr/bin/env python3
"""Check that every relative link in the repo's documentation resolves.

Scans ``README.md``, ``DESIGN.md``, ``CHANGES.md``, ``ROADMAP.md`` and every
``docs/*.md`` page for Markdown links and inline ``[text](target)``
references, and verifies that each relative target exists on disk (relative
to the file containing the link). External schemes (``http``, ``https``,
``mailto``) and pure in-page anchors (``#section``) are skipped; a fragment
on a relative link (``docs/kernel.md#perf``) is checked against the linked
file's headings.

Run from the repository root::

    python tools/check_doc_links.py

Exit status is 0 when every link resolves, 1 otherwise (each broken link is
reported as ``file:line: broken link 'target'``). CI runs this as the docs
link-check gate.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

DOC_FILES = ("README.md", "DESIGN.md", "CHANGES.md", "ROADMAP.md")
DOC_DIRS = ("docs",)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a Markdown heading."""
    text = heading.strip().lstrip("#").strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s+", "-", text.strip())


def _anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.startswith("#"):
            anchors.add(_slugify(line))
    return anchors


def iter_doc_files(root: Path) -> list[Path]:
    """Return the documentation files to scan, in deterministic order."""
    files = [root / name for name in DOC_FILES if (root / name).is_file()]
    for dirname in DOC_DIRS:
        files.extend(sorted((root / dirname).glob("**/*.md")))
    return files


def check_file(path: Path, root: Path) -> list[str]:
    """Return a list of broken-link error strings for one document."""
    errors: list[str] = []
    in_code = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            target_path, _, fragment = target.partition("#")
            resolved = (path.parent / target_path).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                errors.append(
                    f"{path.relative_to(root)}:{lineno}: link escapes repo: {target!r}"
                )
                continue
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(root)}:{lineno}: broken link {target!r}"
                )
            elif fragment and resolved.suffix == ".md":
                if fragment not in _anchors(resolved):
                    errors.append(
                        f"{path.relative_to(root)}:{lineno}: "
                        f"missing anchor {target!r}"
                    )
    return errors


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    errors: list[str] = []
    checked = 0
    for doc in iter_doc_files(root):
        checked += 1
        errors.extend(check_file(doc, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
