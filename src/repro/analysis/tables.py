"""Plain-text tables for benchmark and example output."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


class TextTable:
    """A minimal column-aligned text table.

    Used by the benchmark harness to print the rows/series corresponding to
    the paper's figures and to the evaluation study, so that the regenerated
    numbers can be eyeballed directly in the pytest-benchmark output.
    """

    def __init__(self, columns: Sequence[str], *, title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self._columns = [str(c) for c in columns]
        self._rows: List[List[str]] = []
        self._title = title

    def add_row(self, *values: Any) -> None:
        """Append a row; values are converted with ``str``."""
        if len(values) != len(self._columns):
            raise ValueError(
                f"expected {len(self._columns)} values, got {len(values)}"
            )
        self._rows.append([_format(value) for value in values])

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(*row)

    @property
    def row_count(self) -> int:
        """Number of data rows added so far."""
        return len(self._rows)

    def render(self) -> str:
        """The table as a multi-line string."""
        widths = [len(c) for c in self._columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self._title:
            lines.append(self._title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self._columns))
        lines.append(header)
        lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
        for row in self._rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
