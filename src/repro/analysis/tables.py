"""Plain-text tables for benchmark and example output.

Besides the aligned text rendering, tables export to CSV and JSON — the
campaign layer writes its aggregate tables through these so that a sweep's
results can be diffed byte for byte (serial vs parallel execution) and fed to
external tooling.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterable, List, Sequence


class TextTable:
    """A minimal column-aligned text table.

    Used by the benchmark harness to print the rows/series corresponding to
    the paper's figures and to the evaluation study, so that the regenerated
    numbers can be eyeballed directly in the pytest-benchmark output.
    """

    def __init__(self, columns: Sequence[str], *, title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self._columns = [str(c) for c in columns]
        self._rows: List[List[str]] = []
        self._raw_rows: List[List[Any]] = []
        self._title = title

    def add_row(self, *values: Any) -> None:
        """Append a row; values are converted with ``str``."""
        if len(values) != len(self._columns):
            raise ValueError(
                f"expected {len(self._columns)} values, got {len(values)}"
            )
        self._rows.append([_format(value) for value in values])
        self._raw_rows.append(list(values))

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(*row)

    @property
    def row_count(self) -> int:
        """Number of data rows added so far."""
        return len(self._rows)

    def render(self) -> str:
        """The table as a multi-line string."""
        widths = [len(c) for c in self._columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self._title:
            lines.append(self._title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self._columns))
        lines.append(header)
        lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
        for row in self._rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def render_csv(self) -> str:
        """The table as RFC-4180 CSV (header row first, formatted cells)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self._columns)
        writer.writerows(self._rows)
        return buffer.getvalue()

    def render_json(self) -> str:
        """The table as a JSON document: ``{"title", "columns", "rows"}``.

        Rows carry the *raw* values passed to :meth:`add_row` (falling back to
        ``str`` for non-JSON-serialisable objects), keyed by column name, so
        downstream tooling is not limited to the text formatting.
        """
        rows = [
            dict(zip(self._columns, row)) for row in self._raw_rows
        ]
        return json.dumps(
            {"title": self._title, "columns": self._columns, "rows": rows},
            indent=2,
            sort_keys=False,
            default=str,
        )

    def __str__(self) -> str:
        return self.render()


def _format(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
