"""Storage-occupancy analysis of simulation results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.simulation.runner import SimulationResult, StorageSample


@dataclass(frozen=True)
class OccupancySummary:
    """Headline storage-occupancy numbers of one run."""

    peak_total: int
    mean_total: float
    final_total: int
    peak_per_process: int
    mean_per_process: float

    def as_row(self) -> Tuple[int, float, int, int, float]:
        """The summary as a tuple (used by report tables)."""
        return (
            self.peak_total,
            round(self.mean_total, 2),
            self.final_total,
            self.peak_per_process,
            round(self.mean_per_process, 2),
        )


def occupancy_series(result: SimulationResult) -> List[Tuple[float, int]]:
    """The (time, total retained checkpoints) series of one run."""
    return [(sample.time, sample.total) for sample in result.samples]


def summarize_occupancy(result: SimulationResult) -> OccupancySummary:
    """Summarise the occupancy of one run."""
    samples: Sequence[StorageSample] = result.samples
    totals = [sample.total for sample in samples] or [result.total_retained_final]
    num_processes = result.config.num_processes
    per_process_peak = result.max_retained_any_process
    mean_total = sum(totals) / len(totals)
    return OccupancySummary(
        peak_total=max(totals),
        mean_total=mean_total,
        final_total=result.total_retained_final,
        peak_per_process=per_process_peak,
        mean_per_process=mean_total / num_processes,
    )
