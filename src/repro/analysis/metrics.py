"""Aggregation of repeated runs into summary statistics."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Sequence

from repro.simulation.runner import SimulationResult


@dataclass(frozen=True)
class AggregateStats:
    """Mean / spread of one scalar metric over repeated runs.

    ``stdev`` is the *sample* standard deviation: the seeded runs of a study
    are a sample of the run distribution, not the whole population, so the
    spread uses the ``n - 1`` (Bessel-corrected) estimator.  A single run has
    no measurable spread — its ``stdev`` is 0.
    """

    mean: float
    minimum: float
    maximum: float
    stdev: float
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.2f} ± {self.stdev:.2f} "
            f"(min {self.minimum:.2f}, max {self.maximum:.2f}, n={self.count})"
        )


def aggregate(values: Iterable[float]) -> AggregateStats:
    """Aggregate a sequence of scalar observations."""
    observations = [float(v) for v in values]
    if not observations:
        raise ValueError("cannot aggregate an empty sequence")
    return AggregateStats(
        mean=statistics.fmean(observations),
        minimum=min(observations),
        maximum=max(observations),
        stdev=statistics.stdev(observations) if len(observations) > 1 else 0.0,
        count=len(observations),
    )


def aggregate_results(
    results: Sequence[SimulationResult],
    metrics: Dict[str, Callable[[SimulationResult], float]],
) -> Dict[str, AggregateStats]:
    """Aggregate named metrics extracted from several runs.

    ``metrics`` maps a metric name to an extractor, e.g.
    ``{"peak": lambda r: r.peak_total_retained}``.
    """
    if not results:
        raise ValueError("cannot aggregate zero results")
    return {
        name: aggregate(extractor(result) for result in results)
        for name, extractor in metrics.items()
    }
