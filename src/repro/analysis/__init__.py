"""Analysis and reporting helpers.

* :mod:`storage` — storage-occupancy series and summaries extracted from
  simulation results;
* :mod:`metrics` — aggregation of repeated runs (multiple seeds) into mean /
  min / max statistics;
* :mod:`tables` — plain-text tables used by the benchmark harness and the
  examples to print paper-style result tables.
"""

from repro.analysis.metrics import AggregateStats, aggregate, aggregate_results
from repro.analysis.storage import (
    OccupancySummary,
    occupancy_series,
    summarize_occupancy,
)
from repro.analysis.tables import TextTable

__all__ = [
    "AggregateStats",
    "OccupancySummary",
    "TextTable",
    "aggregate",
    "aggregate_results",
    "occupancy_series",
    "summarize_occupancy",
]
