"""The simulator as a :class:`Transport`.

A deliberately mechanical facade: every call forwards to exactly the engine
or network call the pre-abstraction node made, with no added draws, no added
events and no reordering — which is what keeps seeded simulated executions
(and their persisted traces) byte-identical across the refactor.  The
regression gate in ``tests/traceio/test_golden_traces.py`` pins this.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple, TYPE_CHECKING

from repro.transport.base import AppMessage, Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import SimulationEngine
    from repro.simulation.network import Network


class SimTransport(Transport):
    """Virtual clock and in-process network of one simulated run."""

    def __init__(self, engine: "SimulationEngine", network: "Network") -> None:
        self._engine = engine
        self._network = network

    @property
    def engine(self) -> "SimulationEngine":
        """The discrete-event engine driving this run."""
        return self._engine

    @property
    def network(self) -> "Network":
        """The shared in-process network."""
        return self._network

    def now(self) -> float:
        return self._engine.now

    def send_app_message(
        self,
        sender: int,
        receiver: int,
        piggyback: Tuple[int, ...],
        payload: Any = None,
    ) -> AppMessage:
        return self._network.send_app_message(sender, receiver, piggyback, payload)

    def send_control_message(self, sender: int, receiver: int, payload: Any) -> None:
        self._network.send_control_message(sender, receiver, payload)

    def schedule_timer(self, delay: float, callback: Callable[[], None]) -> None:
        self._engine.schedule_after(delay, callback)
