"""Transport abstraction: the seam between the middleware and its world.

The checkpointing middleware (:class:`repro.simulation.node.SimulationNode`,
its control plane, the protocols and the garbage collectors) never talks to
the :class:`repro.simulation.engine.SimulationEngine` or the
:class:`repro.simulation.network.Network` directly — it talks to a
:class:`Transport`.  Two implementations exist:

* :class:`SimTransport` — a thin facade over the discrete-event simulator
  (virtual clock, in-process network).  It adds no behaviour of its own, so
  seeded simulated executions are byte-identical to the pre-abstraction
  stack (gated by ``tests/traceio/test_golden_traces.py``).
* :class:`repro.live.transport.LiveTransport` — real OS processes exchanging
  UDP datagrams on localhost, with wall-clock timers and sender-side fault
  injection mirroring the simulator's :class:`ChannelModel` semantics.
"""

from repro.transport.base import AppMessage, TraceRecorderPort, Transport
from repro.transport.sim import SimTransport

__all__ = ["AppMessage", "SimTransport", "TraceRecorderPort", "Transport"]
