"""The :class:`Transport` interface and the message/recorder contracts.

Everything the middleware needs from its environment fits in five calls:
a clock, application sends, control sends, timers, and crash/recover
notifications.  The paper's model needs nothing more — the piggybacked
dependency vector is the only control information on application messages,
and the coordinated baselines only add reliable control exchanges and
timers.

:class:`AppMessage` lives here (re-exported by
:mod:`repro.simulation.network` for compatibility) because it is part of
the transport contract, not of any one backend.

:class:`TraceRecorderPort` is the structural type of the middleware's trace
dependency: the simulator hands nodes the global
:class:`repro.simulation.trace.TraceRecorder`, the live backend hands each
worker a per-process shard recorder — the node cannot tell the difference.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence, Tuple, runtime_checkable


@dataclass(frozen=True)
class AppMessage:
    """An application message in transit."""

    message_id: int
    sender: int
    receiver: int
    piggyback: Tuple[int, ...]
    payload: Any = None


@runtime_checkable
class TraceRecorderPort(Protocol):
    """What the middleware records its execution into.

    Structurally satisfied by :class:`repro.simulation.trace.TraceRecorder`
    (the simulator's global recorder) and by the live backend's per-process
    shard recorder.  Times are always supplied by the caller, sourced from
    :meth:`Transport.now` — the recorder has no clock of its own.
    """

    def record_send(
        self, sender: int, receiver: int, message_id: int, time: float
    ) -> None:
        """An application message was sent."""

    def record_receive(self, message_id: int, time: float) -> None:
        """An application message was delivered."""

    def record_duplicate_receive(self, message_id: int, time: float) -> None:
        """A duplicate copy of an already-received message was delivered."""

    def record_checkpoint(
        self,
        pid: int,
        index: int,
        dependency_vector: Sequence[int],
        *,
        forced: bool,
        time: float,
    ) -> None:
        """A stable checkpoint was stored with its dependency vector."""


class Transport(abc.ABC):
    """The middleware's window on the world: clock, messages, timers.

    Contract:

    * :meth:`now` is the execution clock record timestamps come from —
      virtual time under simulation, scaled monotonic wall time under the
      live backend.  It never goes backwards within one incarnation of a
      process.
    * :meth:`send_app_message` is fire-and-forget with at-least-once-or-not-
      at-all semantics decided by the backend's fault model; it returns the
      in-transit record so the caller learns the assigned ``message_id``.
    * :meth:`send_control_message` is reliable (never dropped, duplicated or
      blocked) — the coordinated baselines assume exactly that.
    * :meth:`schedule_timer` fires ``callback`` once, ``delay`` clock units
      from now, on the thread/task that drives the middleware (no locking
      needed in callbacks).
    * :meth:`on_crash` / :meth:`on_recover` notify the backend that the
      middleware changed liveness state; backends without crash mechanics
      ignore them.
    """

    @abc.abstractmethod
    def now(self) -> float:
        """The current execution time, in workload time units."""

    @abc.abstractmethod
    def send_app_message(
        self,
        sender: int,
        receiver: int,
        piggyback: Tuple[int, ...],
        payload: Any = None,
    ) -> AppMessage:
        """Send an application message; returns the in-transit record."""

    @abc.abstractmethod
    def send_control_message(self, sender: int, receiver: int, payload: Any) -> None:
        """Send a reliable control message to another process's collector."""

    @abc.abstractmethod
    def schedule_timer(self, delay: float, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once, ``delay`` clock units from now."""

    def on_crash(self, pid: int) -> None:
        """The middleware of ``pid`` lost its volatile state."""

    def on_recover(self, pid: int) -> None:
        """The middleware of ``pid`` completed a rollback and is live again."""
