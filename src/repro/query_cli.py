"""``python -m repro query`` — canned analytics over a campaign result store.

List the query library, then answer the paper's questions in one command::

    python -m repro query list
    python -m repro query retained-winner --store sweep.sqlite
    python -m repro query churn-sensitivity --store sweep.sqlite \\
        --param metric=final_retained --json

Queue health and the byte-identical reducer::

    python -m repro query status --store sweep.sqlite
    python -m repro query aggregate --store sweep.sqlite --out results/

Fold CI shard stores into one before reducing::

    python -m repro query merge --store merged.sqlite shard0.sqlite shard1.sqlite
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.tables import TextTable
from repro.scenarios.campaign.queries import (
    QUERIES,
    describe_queries,
    run_query,
    store_summary,
)
from repro.scenarios.campaign.sqlstore import SQLResultStore


def _parse_params(pairs: List[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise argparse.ArgumentTypeError(
                f"--param must look like key=value, got {pair!r}"
            )
        key, value = pair.split("=", 1)
        params[key] = value
    return params


def _print_rows(rows: List[Dict[str, Any]], *, as_json: bool, title: str) -> None:
    if as_json:
        print(json.dumps(rows, indent=2))
        return
    if not rows:
        print(f"{title}: no rows")
        return
    columns = list(rows[0])
    table = TextTable(columns, title=title)
    for row in rows:
        table.add_row(*[
            f"{value:.2f}" if isinstance(value, float) else value
            for value in row.values()
        ])
    print(table.render())


def _cmd_list(args: argparse.Namespace) -> int:
    if args.json:
        print(
            json.dumps(
                [
                    {"name": name, "description": description, "defaults": defaults}
                    for name, description, defaults in describe_queries()
                ],
                indent=2,
            )
        )
        return 0
    for name, description, defaults in describe_queries():
        print(f"{name}")
        print(f"    {description}")
        if defaults:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(defaults.items()))
            print(f"    parameters: {rendered}")
    print("status\n    queue health: cell counts per status plus the lease journal.")
    print(
        "aggregate\n    the byte-identical reducer: fold the store's records "
        "through the\n    campaign aggregation layer (same CSV/JSON as a "
        "JSONL-era sweep)."
    )
    print("merge\n    fold shard stores' completed cells into --store.")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    store = SQLResultStore(args.store)
    counts = store.status_counts()
    claimable, inflight = store.remaining()
    document = {
        "store": args.store,
        "cells": sum(counts.values()),
        "by_status": counts,
        "claimable": claimable,
        "in_flight": inflight,
        "leases": len(store.lease_history()),
    }
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        for key, value in document.items():
            print(f"{key:>12}: {value}")
    # A store with failed cells is a domain finding, same as failed cells in
    # a live sweep's summary.
    return 1 if counts.get("failed") else 0


def _cmd_aggregate(args: argparse.Namespace) -> int:
    group_by = tuple(
        axis.strip() for axis in (args.group_by or "").split(",") if axis.strip()
    ) or None
    try:
        summary = store_summary(
            args.store, group_by=group_by, allow_incomplete=args.partial
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(summary.to_json())
    else:
        print(summary.table().render())
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        name = summary.campaign or "aggregate"
        csv_path = os.path.join(args.out, f"{name}.csv")
        json_path = os.path.join(args.out, f"{name}.json")
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(summary.to_csv())
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(summary.to_json())
        print(f"aggregates written to {csv_path} and {json_path}", file=sys.stderr)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    store = SQLResultStore(args.store)
    total = 0
    for source in args.sources:
        if not os.path.exists(source):
            print(f"error: no such store {source!r}", file=sys.stderr)
            return 2
        imported = store.merge_from(source)
        print(f"{source}: {imported} completed cell(s) imported", file=sys.stderr)
        total += imported
    counts = store.status_counts()
    print(f"{args.store}: {total} imported, now {counts}")
    return 0


def _cmd_canned(args: argparse.Namespace) -> int:
    try:
        rows = run_query(args.store, args.query_name, **_parse_params(args.param))
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_rows(rows, as_json=args.json, title=f"query: {args.query_name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro query",
        description="Canned analytical queries over a campaign result store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    listing = commands.add_parser("list", help="describe the query library")
    listing.add_argument("--json", action="store_true", help="JSON on stdout")
    listing.set_defaults(func=_cmd_list)

    status = commands.add_parser("status", help="queue health of a store")
    status.add_argument("--store", required=True, help="SQL result store path")
    status.add_argument("--json", action="store_true", help="JSON on stdout")
    status.set_defaults(func=_cmd_status)

    aggregate = commands.add_parser(
        "aggregate",
        help="fold the store through the byte-identical campaign reducer",
    )
    aggregate.add_argument("--store", required=True, help="SQL result store path")
    aggregate.add_argument(
        "--group-by", default=None,
        help="comma-separated grouping axes (default: workload,collector,failures)",
    )
    aggregate.add_argument(
        "--out", default=None, help="directory for the CSV/JSON documents"
    )
    aggregate.add_argument(
        "--partial", action="store_true",
        help="aggregate the completed prefix of an unfinished sweep",
    )
    aggregate.add_argument("--json", action="store_true", help="JSON on stdout")
    aggregate.set_defaults(func=_cmd_aggregate)

    merge = commands.add_parser(
        "merge", help="fold shard stores' completed cells into --store"
    )
    merge.add_argument("--store", required=True, help="destination SQL store")
    merge.add_argument("sources", nargs="+", help="shard store files to import")
    merge.set_defaults(func=_cmd_merge)

    for name in sorted(QUERIES):
        canned = commands.add_parser(name, help=QUERIES[name].description)
        canned.add_argument("--store", required=True, help="SQL result store path")
        canned.add_argument(
            "--param", action="append", default=[], metavar="KEY=VALUE",
            help="override a query parameter (repeatable)",
        )
        canned.add_argument("--json", action="store_true", help="JSON on stdout")
        canned.set_defaults(func=_cmd_canned, query_name=name)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
