"""Ready-made scenarios: the paper's figures as executable objects.

The figures of the paper are small, hand-drawn checkpoint-and-communication
patterns.  This subpackage encodes them once, so that tests, examples and the
figure-reproduction benchmarks all work from the same source:

* :func:`figure1_builder` / :func:`figure1_ccp` — the example CCP of Figure 1;
* :func:`figure2_builder` / :func:`figure2_ccp` — the domino-effect pattern of
  Figure 2;
* :func:`figure3_builder` / :func:`figure3_ccp` — a 4-process scenario with the
  structure of Figure 3 (the exact message pattern is not recoverable from the
  paper's text; see the module docstring of :mod:`repro.scenarios.figures`);
* :func:`drive_figure4` and :data:`FIGURE4_ANNOTATIONS` — the fully annotated
  RDT-LGC execution of Figure 4, reproduced value for value;
* :func:`figure4_ccp` — the same execution as a CCP for the offline oracles.

The :mod:`repro.scenarios.campaign` subpackage runs *grids* of experiments —
the paper's evaluation study — declaratively, resumably and in parallel; the
spec builders (:func:`paper_campaign_spec`, :func:`smoke_campaign_spec`) live
in :mod:`repro.scenarios.experiments`.
"""

from repro.scenarios.campaign import (
    CampaignCell,
    CampaignRun,
    CampaignSpec,
    CampaignStore,
    CampaignSummary,
    CollectorSpec,
    WorkloadSpec,
    aggregate_campaign,
    run_campaign,
)
from repro.scenarios.experiments import (
    paper_campaign_spec,
    random_run_config,
    run_collector_comparison,
    run_random_simulation,
    run_worst_case,
    smoke_campaign_spec,
)
from repro.scenarios.figures import (
    FIGURE4_ANNOTATIONS,
    FIGURE4_EXPECTED_FINAL,
    drive_figure4,
    figure1_builder,
    figure1_ccp,
    figure2_builder,
    figure2_ccp,
    figure3_builder,
    figure3_ccp,
    figure4_ccp,
)

__all__ = [
    "CampaignCell",
    "CampaignRun",
    "CampaignSpec",
    "CampaignStore",
    "CampaignSummary",
    "CollectorSpec",
    "FIGURE4_ANNOTATIONS",
    "FIGURE4_EXPECTED_FINAL",
    "WorkloadSpec",
    "aggregate_campaign",
    "drive_figure4",
    "figure1_builder",
    "figure1_ccp",
    "figure2_builder",
    "figure2_ccp",
    "figure3_builder",
    "figure3_ccp",
    "figure4_ccp",
    "paper_campaign_spec",
    "random_run_config",
    "run_campaign",
    "run_collector_comparison",
    "run_random_simulation",
    "run_worst_case",
    "smoke_campaign_spec",
]
