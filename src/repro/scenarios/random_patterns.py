"""Seeded random checkpoint-and-communication patterns.

The kernel-equivalence property tests and the perf-scaling benchmark both need
arbitrary, reproducible CCPs that exercise the full zigzag zoo: causal paths,
crossing (non-causal) Z-paths, zigzag cycles, undelivered messages and uneven
checkpoint rates.  This module generates them as an abstract *script* — a flat
list of operations — that can be interpreted either by the
:class:`repro.ccp.CCPBuilder` (producing a CCP directly) or by a
:class:`repro.simulation.trace.TraceRecorder` (exercising the incremental
recording path), so both consumers see byte-identical executions for a given
seed.

Receives deliberately pick a *random* pending message rather than the oldest:
out-of-order delivery is what creates the crossing message pairs from which
Z-cycles arise (Figure 2 of the paper).
"""

from __future__ import annotations

import random
from typing import List, Tuple, Union

from repro.ccp.builder import CCPBuilder
from repro.ccp.pattern import CCP

Operation = Union[
    Tuple[str, int, int, int],  # ("send", sender, receiver, message_id)
    Tuple[str, int],  # ("receive", message_id) | ("checkpoint", pid)
]


def random_ccp_script(
    seed: int,
    *,
    num_processes: int = 4,
    num_messages: int = 40,
    checkpoint_rate: float = 0.3,
    undelivered_fraction: float = 0.1,
) -> List[Operation]:
    """A reproducible operation script for one random execution.

    ``checkpoint_rate`` is the probability that any given step takes a
    checkpoint instead of progressing a message; ``undelivered_fraction`` of
    the sent messages are left in transit (the CCP definition excludes them).
    """
    if num_processes < 2:
        raise ValueError("crossing messages require at least two processes")
    rng = random.Random(seed)
    ops: List[Operation] = []
    pending: List[int] = []
    sent = 0
    while sent < num_messages or pending:
        roll = rng.random()
        if roll < checkpoint_rate:
            ops.append(("checkpoint", rng.randrange(num_processes)))
            continue
        can_send = sent < num_messages
        if can_send and (not pending or rng.random() < 0.55):
            sender = rng.randrange(num_processes)
            receiver = rng.randrange(num_processes - 1)
            if receiver >= sender:
                receiver += 1
            ops.append(("send", sender, receiver, sent))
            pending.append(sent)
            sent += 1
        else:
            message_id = pending.pop(rng.randrange(len(pending)))
            if sent >= num_messages and rng.random() < undelivered_fraction:
                continue  # leave it in transit
            ops.append(("receive", message_id))
    return ops


def build_ccp(script: List[Operation], num_processes: int) -> CCP:
    """Interpret a script with the fluent builder and return the CCP."""
    builder = CCPBuilder(num_processes)
    for op in script:
        if op[0] == "send":
            _, sender, receiver, message_id = op
            builder.send(sender, receiver, tag=str(message_id))
        elif op[0] == "receive":
            builder.receive(str(op[1]))
        else:
            builder.checkpoint(op[1])
    return builder.build()


def random_ccp(
    seed: int,
    *,
    num_processes: int = 4,
    num_messages: int = 40,
    checkpoint_rate: float = 0.3,
    undelivered_fraction: float = 0.1,
) -> CCP:
    """Convenience: script plus builder interpretation in one call."""
    script = random_ccp_script(
        seed,
        num_processes=num_processes,
        num_messages=num_messages,
        checkpoint_rate=checkpoint_rate,
        undelivered_fraction=undelivered_fraction,
    )
    return build_ccp(script, num_processes)


class TraceFeeder:
    """Replays a script into a :class:`~repro.simulation.trace.TraceRecorder`.

    The feeder is stateful so a script can be delivered in chunks (the perf
    benchmark samples analyses between chunks, mimicking the simulator's
    periodic audits).  Checkpoint operations record a zero dependency vector
    (the recorder does not interpret vectors; oracles that need ground truth
    recompute it from the event graph).  Mirroring the builder's model, every
    process records an initial stable checkpoint ``s_i^0`` before the first
    scripted operation.
    """

    def __init__(self, recorder) -> None:
        self._recorder = recorder
        self._clock = 0.0
        self._next_index = [1] * recorder.num_processes
        zeros = [0] * recorder.num_processes
        for pid in range(recorder.num_processes):
            self._clock += 1.0
            recorder.record_checkpoint(pid, 0, zeros, forced=False, time=self._clock)

    def resync(self) -> None:
        """Re-align checkpoint indices with the recorder after a recovery.

        A recovery session truncates histories, so storage reuses the rolled
        back checkpoint indices; scripted churn schedules call this before
        feeding the next chunk so their checkpoints continue from the
        recorder's post-truncation frontier.
        """
        self._next_index = list(self._recorder.checkpoints_taken)

    def feed(self, script: List[Operation]) -> None:
        """Replay the next chunk of operations."""
        recorder = self._recorder
        for op in script:
            self._clock += 1.0
            if op[0] == "send":
                _, sender, receiver, message_id = op
                recorder.record_send(sender, receiver, message_id, self._clock)
            elif op[0] == "receive":
                recorder.record_receive(op[1], self._clock)
            else:
                pid = op[1]
                recorder.record_checkpoint(
                    pid,
                    self._next_index[pid],
                    [0] * recorder.num_processes,
                    forced=False,
                    time=self._clock,
                )
                self._next_index[pid] += 1


def feed_trace_recorder(recorder, script: List[Operation]) -> None:
    """Replay a whole script into a fresh recorder in one go."""
    TraceFeeder(recorder).feed(script)
