"""Executable encodings of the paper's figures.

Process numbering: the paper's ``p_k`` corresponds to process ``k - 1`` here
(zero-based).  Message tags keep the paper's names where the figure gives
them.

Figure 3 note: the paper only shows checkpoint labels for that figure, not the
message pattern, so :func:`figure3_builder` constructs a *structurally
equivalent* scenario — the recovery line for ``F = {p2, p3}`` excludes
``p3``'s last stable checkpoint because it is causally preceded by ``p2``'s,
and the Theorem-1 obsolete set contains a "hole".  EXPERIMENTS.md records this
substitution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ccp.builder import CCPBuilder
from repro.ccp.pattern import CCP

# ----------------------------------------------------------------------
# Figure 1 — example CCP
# ----------------------------------------------------------------------


def figure1_builder(*, include_m3: bool = True) -> CCPBuilder:
    """The CCP of Figure 1.

    Facts encoded by the figure and the text: ``[m1, m2]`` and ``[m1, m4]`` are
    C-paths, ``[m5, m4]`` is a Z-path, ``{v1, s2^1, s3^1}`` is consistent,
    ``{s1^0, s2^1, s3^1}`` is not, the CCP is RD-trackable, and removing ``m3``
    breaks RDT because ``s1^1 ~> s3^2`` is then not doubled by a causal path.
    """
    builder = CCPBuilder(3)
    builder.send(0, 1, tag="m1")
    builder.receive("m1")
    builder.send(1, 2, tag="m2")
    builder.send(1, 2, tag="m4")
    builder.checkpoint(0)  # s1^1
    builder.send(0, 1, tag="m5")
    builder.receive("m5")
    builder.checkpoint(1)  # s2^1
    builder.checkpoint(2)  # s3^1
    builder.receive("m2")
    builder.receive("m4")
    if include_m3:
        builder.send(0, 2, tag="m3")
        builder.receive("m3")
    builder.checkpoint(2)  # s3^2
    return builder


def figure1_ccp(*, include_m3: bool = True) -> CCP:
    """The built CCP of Figure 1 (optionally without message ``m3``)."""
    return figure1_builder(include_m3=include_m3).build()


# ----------------------------------------------------------------------
# Figure 2 — useless checkpoints and the domino effect
# ----------------------------------------------------------------------


def figure2_builder() -> CCPBuilder:
    """The crossing ping-pong CCP of Figure 2.

    Every non-initial stable checkpoint lies on a zigzag cycle, so a single
    failure forces the whole computation back to its initial state.
    """
    builder = CCPBuilder(2)
    builder.send(1, 0, tag="m1")
    builder.receive("m1")
    builder.checkpoint(0)  # s1^1
    builder.send(0, 1, tag="m2")
    builder.receive("m2")
    builder.checkpoint(1)  # s2^1
    builder.send(1, 0, tag="m3")
    builder.receive("m3")
    builder.checkpoint(0)  # s1^2
    builder.send(0, 1, tag="m4")
    builder.receive("m4")
    return builder


def figure2_ccp() -> CCP:
    """The built CCP of Figure 2."""
    return figure2_builder().build()


# ----------------------------------------------------------------------
# Figure 3 — recovery-line determination
# ----------------------------------------------------------------------


def figure3_builder() -> CCPBuilder:
    """A 4-process scenario with the structure of Figure 3 (see module docstring)."""
    builder = CCPBuilder(4)
    builder.checkpoint(3)  # s4^1
    for target in (0, 1, 2):
        tag = builder.send(3, target)
        builder.receive(tag)
    builder.checkpoint(0)  # s1^1
    builder.checkpoint(1)  # s2^1
    builder.checkpoint(2)  # s3^1
    builder.checkpoint(1)  # s2^2  (last stable of p2)
    tag = builder.send(1, 2)
    builder.receive(tag)
    builder.checkpoint(2)  # s3^2  (last stable of p3, causally after s2^2)
    tag = builder.send(1, 0)
    builder.receive(tag)
    builder.checkpoint(0)  # s1^2
    builder.checkpoint(0)  # s1^3 (turns s1^2 into an obsolete "hole")
    builder.checkpoint(3)  # s4^2
    builder.checkpoint(3)  # s4^3
    return builder


def figure3_ccp() -> CCP:
    """The built CCP of the Figure 3 scenario."""
    return figure3_builder().build()


# ----------------------------------------------------------------------
# Figure 4 — a full RDT-LGC execution with DV / UC annotations
# ----------------------------------------------------------------------

#: The annotations printed in Figure 4, keyed by event.  At checkpoint events
#: the paper shows the *stored* dependency vector (pre-increment) together with
#: the ``UC`` table after the update; at other events the current vector.
FIGURE4_ANNOTATIONS: Dict[str, Tuple[Tuple[int, ...], Tuple[Optional[int], ...]]] = {
    "p1 s^0": ((0, 0, 0), (0, None, None)),
    "p2 s^0": ((0, 0, 0), (None, 0, None)),
    "p3 s^0": ((0, 0, 0), (None, None, 0)),
    "p1 send m_a": ((1, 0, 0), (0, None, None)),
    "p2 recv m_a": ((1, 1, 0), (0, 0, None)),
    "p2 s^1": ((1, 1, 0), (0, 1, None)),
    "p2 send m_b1": ((1, 2, 0), (0, 1, None)),
    "p3 recv m_b0": ((1, 1, 1), (0, 0, 0)),
    "p3 s^1": ((1, 1, 1), (0, 0, 1)),
    "p2 s^2": ((1, 2, 2), (0, 2, 1)),
    "p2 s^3": ((1, 3, 2), (0, 3, 1)),
    "p3 s^2": ((1, 1, 2), (0, 0, 2)),
    "p3 s^3": ((1, 3, 3), (0, 2, 3)),
    "p2 final": ((1, 4, 2), (0, 3, 1)),
    "p3 final": ((1, 4, 4), (0, 3, 3)),
    "p1 final": ((1, 0, 0), (0, None, None)),
}

#: The end-of-execution state of each process: dependency vector, ``UC`` table
#: and the stable checkpoints still on storage.
FIGURE4_EXPECTED_FINAL = {
    0: {"dv": (1, 0, 0), "uc": (0, None, None), "retained": [0]},
    1: {"dv": (1, 4, 2), "uc": (0, 3, 1), "retained": [0, 1, 3]},
    2: {"dv": (1, 4, 4), "uc": (0, 3, 3), "retained": [0, 3]},
}


def drive_figure4(gcs: Sequence) -> List[Tuple[str, Tuple[int, ...], Tuple[Optional[int], ...]]]:
    """Replay the Figure 4 execution against three :class:`repro.core.RdtLgc` instances.

    Returns ``(event label, DV as annotated, UC view)`` steps in the figure's
    reading order; the labels match the keys of :data:`FIGURE4_ANNOTATIONS`.
    """
    p1, p2, p3 = gcs
    steps: List[Tuple[str, Tuple[int, ...], Tuple[Optional[int], ...]]] = []

    def snap(label: str, gc, dv: Optional[Tuple[int, ...]] = None) -> None:
        view = gc.state_view()
        steps.append(
            (label, tuple(dv) if dv is not None else view.dependency_vector, view.uncollected)
        )

    for gc, label in ((p1, "p1 s^0"), (p2, "p2 s^0"), (p3, "p3 s^0")):
        gc.on_checkpoint()
        snap(label, gc, dv=(0, 0, 0))
    m_a = p1.before_send()
    snap("p1 send m_a", p1)
    p2.on_receive(m_a)
    snap("p2 recv m_a", p2)
    m_b0 = p2.before_send()
    p2.on_checkpoint()
    snap("p2 s^1", p2, dv=(1, 1, 0))
    p2.before_send()  # m_b1 stays in transit, as drawn in the figure
    snap("p2 send m_b1", p2)
    p3.on_receive(m_b0)
    snap("p3 recv m_b0", p3)
    p3.on_checkpoint()
    snap("p3 s^1", p3, dv=(1, 1, 1))
    m_c1 = p3.before_send()
    p2.on_receive(m_c1)
    p2.on_checkpoint()
    snap("p2 s^2", p2, dv=(1, 2, 2))
    m_d1 = p2.before_send()
    p2.on_checkpoint()
    snap("p2 s^3", p2, dv=(1, 3, 2))
    p3.on_checkpoint()
    snap("p3 s^2", p3, dv=(1, 1, 2))
    p3.on_receive(m_d1)
    p3.on_checkpoint()
    snap("p3 s^3", p3, dv=(1, 3, 3))
    m_d2 = p2.before_send()
    snap("p2 final", p2)
    p3.on_receive(m_d2)
    snap("p3 final", p3)
    snap("p1 final", p1)
    return steps


def figure4_ccp() -> CCP:
    """The CCP corresponding to the Figure 4 execution (for the offline oracles)."""
    builder = CCPBuilder(3)
    builder.send(0, 1, tag="m_a")
    builder.receive("m_a")
    builder.send(1, 2, tag="m_b0")
    builder.checkpoint(1)  # s2^1
    builder.send(1, 2, tag="m_b1")  # never delivered (in transit)
    builder.receive("m_b0")
    builder.checkpoint(2)  # s3^1
    builder.send(2, 1, tag="m_c1")
    builder.receive("m_c1")
    builder.checkpoint(1)  # s2^2
    builder.send(1, 2, tag="m_d1")
    builder.checkpoint(1)  # s2^3
    builder.checkpoint(2)  # s3^2
    builder.receive("m_d1")
    builder.checkpoint(2)  # s3^3
    builder.send(1, 2, tag="m_d2")
    builder.receive("m_d2")
    return builder.build()
