"""Experiment builders shared by tests, examples and benchmarks.

Two tiers live here:

* single-run helpers (:func:`random_run_config`, :func:`run_random_simulation`,
  :func:`run_worst_case`) — one :class:`SimulationConfig` at a time, used by
  unit tests and the figure reproductions;
* campaign builders (:func:`paper_campaign_spec`, :func:`smoke_campaign_spec`,
  :func:`run_collector_comparison`) — declarative
  :class:`repro.scenarios.campaign.CampaignSpec` grids executed by the
  campaign subsystem.  The paper's evaluation study (every collector ×
  every workload shape × several failure rates × many seeds) is the
  flagship spec; the smoke spec is the same shape shrunk to seconds for the
  regression gate.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.explore.program import ExploreConfig
    from repro.fuzz.fuzzer import FuzzSpec

from repro.membership import MembershipSpec
from repro.scenarios.campaign.aggregate import CampaignSummary, aggregate_campaign
from repro.scenarios.campaign.executor import CampaignRun, run_campaign
from repro.scenarios.campaign.spec import CampaignSpec, CollectorSpec, WorkloadSpec
from repro.simulation.channels import (
    DuplicatingChannel,
    GilbertElliottChannel,
    LatencyMatrixChannel,
    PartitionSchedule,
    UniformChannel,
)
from repro.simulation.failures import FailureModelSpec, FailureSchedule
from repro.simulation.network import NetworkConfig
from repro.simulation.runner import SimulationConfig, SimulationResult, SimulationRunner
from repro.simulation.workloads import UniformRandomWorkload, Workload, WorstCaseWorkload


def random_run_config(
    *,
    num_processes: int = 4,
    duration: float = 120.0,
    seed: int = 0,
    protocol: str = "fdas",
    collector: str = "rdt-lgc",
    collector_options: Optional[Mapping[str, object]] = None,
    crashes: int = 0,
    audit: str = "off",
    mean_message_gap: float = 2.0,
    mean_checkpoint_gap: float = 8.0,
    drop_probability: float = 0.0,
    workload: Optional[Workload] = None,
    keep_final_ccp: bool = True,
) -> SimulationConfig:
    """A complete configuration for one randomized experiment."""
    rng = random.Random(seed * 7919 + 13)
    failures = (
        FailureSchedule.random(
            num_processes=num_processes, duration=duration, count=crashes, rng=rng
        )
        if crashes
        else FailureSchedule.none()
    )
    if workload is None:
        workload = UniformRandomWorkload(
            mean_message_gap=mean_message_gap,
            mean_checkpoint_gap=mean_checkpoint_gap,
        )
    return SimulationConfig(
        num_processes=num_processes,
        duration=duration,
        workload=workload,
        protocol=protocol,
        collector=collector,
        collector_options=dict(collector_options or {}),
        network=NetworkConfig(drop_probability=drop_probability),
        failures=failures,
        seed=seed,
        audit=audit,
        keep_final_ccp=keep_final_ccp,
    )


def run_random_simulation(**kwargs) -> SimulationResult:
    """Build the configuration via :func:`random_run_config` and run it."""
    return SimulationRunner(random_run_config(**kwargs)).run()


def run_worst_case(
    num_processes: int,
    *,
    collector: str = "rdt-lgc",
    protocol: str = "fdas",
    audit: str = "off",
    collector_options: Optional[Mapping[str, object]] = None,
) -> SimulationResult:
    """Run the Figure-5 worst-case schedule for ``num_processes`` processes."""
    workload = WorstCaseWorkload(round_length=10.0)
    config = SimulationConfig(
        num_processes=num_processes,
        duration=workload.required_duration(num_processes),
        workload=workload,
        protocol=protocol,
        collector=collector,
        collector_options=dict(collector_options or {}),
        seed=1,
        audit=audit,
        keep_final_ccp=True,
    )
    return SimulationRunner(config).run()


# ----------------------------------------------------------------------
# Campaign specs
# ----------------------------------------------------------------------

#: Every registered collector with the options the evaluation study uses.
STUDY_COLLECTORS: Tuple[Tuple[str, Mapping[str, object]], ...] = (
    ("none", {}),
    ("rdt-lgc", {}),
    ("all-process-line", {"period": 20.0}),
    ("wang-coordinated", {"period": 20.0}),
    ("manivannan-singhal", {"checkpoint_period": 8.0, "max_message_delay": 3.0}),
)

#: The workload shapes of the evaluation study.
STUDY_WORKLOADS: Tuple[Tuple[str, Mapping[str, object]], ...] = (
    ("client-server", {}),
    ("pipeline", {}),
    ("uniform-random", {"mean_checkpoint_gap": 6.0}),
    ("ring", {}),
)

#: The topology-aware workload families (beyond the paper's four shapes):
#: Zipf-skewed client-server, gossip fan-out, and hierarchical region
#: clusters.  They share parameter defaults with the topology campaign so
#: the nightly grid, the ad-hoc CLI and the tests all run the same cells.
TOPOLOGY_WORKLOADS: Tuple[Tuple[str, Mapping[str, object]], ...] = (
    ("zipf-client-server", {"num_servers": 2}),
    ("gossip", {"fanout": 2}),
    ("hierarchical", {"region_size": 3}),
)


def paper_campaign_spec(
    *,
    num_processes: int = 4,
    duration: float = 120.0,
    num_seeds: int = 10,
    failure_counts: Sequence[int] = (0, 2),
    protocols: Sequence[str] = ("fdas",),
    base_seed: int = 0,
) -> CampaignSpec:
    """The paper's collector-comparison grid as a campaign.

    All five collectors × the four workload shapes × the requested failure
    rates × ``num_seeds`` seeded repetitions — the study Sections 5-6 of the
    paper report, sized by the caller.
    """
    return CampaignSpec(
        name="paper-collector-comparison",
        num_processes=num_processes,
        duration=duration,
        protocols=tuple(protocols),
        collectors=tuple(
            CollectorSpec.of(name, options) for name, options in STUDY_COLLECTORS
        ),
        workloads=tuple(
            WorkloadSpec.of(name, params) for name, params in STUDY_WORKLOADS
        ),
        failure_counts=tuple(failure_counts),
        seeds=tuple(range(num_seeds)),
        base_seed=base_seed,
    )


def fault_model_networks(
    *, num_processes: int = 4, duration: float = 120.0
) -> Tuple[NetworkConfig, ...]:
    """One :class:`NetworkConfig` per adversarial network regime.

    The regimes, from the paper's model outward: the uniform baseline;
    i.i.d. loss at 5%; Gilbert–Elliott bursty loss with the same *average*
    loss concentration but correlated into bursts; at-least-once delivery
    (duplicates); a per-link asymmetric latency matrix (two tight racks
    joined by a slow hop); a partition that splits the first two processes
    off mid-run and heals; and a FIFO-disciplined variant of the baseline
    (the one *restriction* in the family — the paper's channels reorder).
    """
    half = max(num_processes // 2, 1)
    # Two racks: intra-rack latency equals the baseline, the inter-rack hop
    # is 4x slower (and asymmetric: the return path is 6x).
    matrix = [
        [
            1.0 if (a < half) == (b < half) else (4.0 if a < half else 6.0)
            for b in range(num_processes)
        ]
        for a in range(num_processes)
    ]
    return (
        NetworkConfig(),
        NetworkConfig(drop_probability=0.05),
        NetworkConfig(
            channel=GilbertElliottChannel(
                loss_good=0.0, loss_bad=0.4, p_good_to_bad=0.05, p_bad_to_good=0.3
            )
        ),
        NetworkConfig(
            channel=DuplicatingChannel(
                channel=UniformChannel(), duplicate_probability=0.2
            )
        ),
        NetworkConfig(channel=LatencyMatrixChannel.of(matrix)),
        NetworkConfig(
            partitions=PartitionSchedule.of(
                [(duration / 3.0, duration * 2.0 / 3.0, ((0, 1),))]
            )
        ),
        NetworkConfig(fifo=True),
    )


def hierarchical_network_config(
    *,
    num_processes: int = 6,
    duration: float = 120.0,
    region_size: int = 3,
    inter_region_latency: float = 5.0,
    partition_window: bool = True,
) -> NetworkConfig:
    """The fault model matching the hierarchical workload's region layout.

    Regions are the same contiguous ``region_size`` blocks
    :meth:`repro.simulation.workloads.HierarchicalWorkload.region_of`
    computes (the last region absorbs the tail): intra-region links run at
    the baseline latency, inter-region hops at ``inter_region_latency``.
    With ``partition_window`` set, the first region is split off from the
    rest over the middle third of the run and heals — the regime where
    local checkpointing traffic continues while cross-region dependency
    knowledge is stalled.
    """
    if num_processes < 1:
        raise ValueError("the region layout needs at least one process")
    num_regions = max(num_processes // region_size, 1)

    def region_of(pid: int) -> int:
        return min(pid // region_size, num_regions - 1)

    matrix = [
        [
            1.0 if region_of(a) == region_of(b) else inter_region_latency
            for b in range(num_processes)
        ]
        for a in range(num_processes)
    ]
    partitions = None
    if partition_window and num_regions > 1:
        first_region = tuple(
            pid for pid in range(num_processes) if region_of(pid) == 0
        )
        partitions = PartitionSchedule.of(
            [(duration / 3.0, duration * 2.0 / 3.0, (first_region,))]
        )
    return NetworkConfig(
        channel=LatencyMatrixChannel.of(matrix), partitions=partitions
    )


def topology_campaign_spec(
    *,
    num_processes: int = 6,
    duration: float = 120.0,
    num_seeds: int = 3,
    collectors: Optional[Sequence[Tuple[str, Mapping[str, object]]]] = None,
    with_membership_churn: bool = True,
    base_seed: int = 0,
) -> CampaignSpec:
    """The topology-aware grid: skewed/gossip/hierarchical workload families.

    All three :data:`TOPOLOGY_WORKLOADS` × the chosen collectors over the
    region-structured network of :func:`hierarchical_network_config`, with
    (by default) a dynamic-membership axis next to the static baseline: one
    process joins a sixth of the way in and another departs at the halfway
    point, so every cell on that axis exercises capacity growth *and* the
    departed-checkpoints-are-garbage obsolescence rule.
    """
    chosen = STUDY_COLLECTORS if collectors is None else tuple(collectors)
    memberships: Tuple[MembershipSpec, ...] = (MembershipSpec.static(),)
    if with_membership_churn:
        if num_processes < 3:
            raise ValueError("membership churn needs at least three processes")
        memberships = memberships + (
            MembershipSpec.of(
                joins=[(duration / 6.0, num_processes - 1)],
                leaves=[(duration / 2.0, 1)],
            ),
        )
    return CampaignSpec(
        name="topology-families",
        num_processes=num_processes,
        duration=duration,
        collectors=tuple(CollectorSpec.of(name, options) for name, options in chosen),
        workloads=tuple(
            WorkloadSpec.of(name, params) for name, params in TOPOLOGY_WORKLOADS
        ),
        failure_counts=(0, 1),
        networks=(
            NetworkConfig(),
            hierarchical_network_config(
                num_processes=num_processes, duration=duration
            ),
        ),
        seeds=tuple(range(num_seeds)),
        base_seed=base_seed,
        memberships=memberships,
    )


def membership_churn_smoke_spec(*, num_seeds: int = 2) -> CampaignSpec:
    """A seconds-sized membership-churn campaign for the regression gate.

    One join and one leave per cell (the acceptance shape of the dynamic
    membership feature) across the optimality-claiming collector and a
    coordinated baseline, on a topology-aware and a uniform workload.
    """
    return CampaignSpec(
        name="membership-churn-smoke",
        num_processes=4,
        duration=40.0,
        collectors=(
            CollectorSpec.of("rdt-lgc"),
            CollectorSpec.of("all-process-line", {"period": 10.0}),
        ),
        workloads=(
            WorkloadSpec.of("uniform-random"),
            WorkloadSpec.of("zipf-client-server", {"num_servers": 1}),
        ),
        failure_counts=(0, 1),
        seeds=tuple(range(num_seeds)),
        memberships=(
            MembershipSpec.of(joins=[(10.0, 3)], leaves=[(25.0, 1)]),
        ),
    )


def fault_model_campaign_spec(
    *,
    num_processes: int = 4,
    duration: float = 120.0,
    num_seeds: int = 5,
    collectors: Optional[Sequence[Tuple[str, Mapping[str, object]]]] = None,
    base_seed: int = 0,
) -> CampaignSpec:
    """Every collector crossed with every adversarial network regime.

    The grid beyond the paper: all collectors × the
    :func:`fault_model_networks` regimes × {no failures, crash-recovery
    churn} × ``num_seeds`` seeds, on the generic uniform-random workload.
    This is where the remaining collector-safety claims get falsified or
    confirmed — and where the coordinated baselines pay their real
    control-message cost under hostile transports.
    """
    chosen = STUDY_COLLECTORS if collectors is None else tuple(collectors)
    return CampaignSpec(
        name="fault-model-sweep",
        num_processes=num_processes,
        duration=duration,
        collectors=tuple(CollectorSpec.of(name, options) for name, options in chosen),
        workloads=(WorkloadSpec.of("uniform-random", {"mean_checkpoint_gap": 6.0}),),
        failure_counts=(
            0,
            FailureModelSpec.of("churn", {"hazard_rate": 0.02}),
        ),
        networks=fault_model_networks(
            num_processes=num_processes, duration=duration
        ),
        seeds=tuple(range(num_seeds)),
        base_seed=base_seed,
    )


def smoke_campaign_spec(*, num_seeds: int = 2) -> CampaignSpec:
    """A seconds-sized campaign with the paper grid's shape.

    Used by the tier-1 regression gate to exercise expansion, pool execution
    and aggregation cheaply: two collectors, two workloads, one failure level
    and ``num_seeds`` seeds at a short duration.
    """
    return CampaignSpec(
        name="smoke-collector-comparison",
        num_processes=3,
        duration=40.0,
        collectors=(
            CollectorSpec.of("rdt-lgc"),
            CollectorSpec.of("wang-coordinated", {"period": 15.0}),
        ),
        workloads=(
            WorkloadSpec.of("uniform-random"),
            WorkloadSpec.of("client-server"),
        ),
        failure_counts=(0, 1),
        seeds=tuple(range(num_seeds)),
    )


def explore_sweep_configs(
    *,
    num_processes: int = 2,
    messages: int = 6,
    protocols: Optional[Sequence[str]] = None,
    collectors: Optional[Sequence[Tuple[str, Mapping[str, object]]]] = None,
    with_crash: bool = False,
    program_family: str = "ring",
) -> Tuple["ExploreConfig", ...]:
    """The canonical schedule-exploration grid (campaign ``explore`` mode).

    One :class:`repro.explore.ExploreConfig` per (protocol, collector) pair
    over one program family — the configuration family the acceptance
    sweep, the CI smoke gate, the nightly bounded sweep and ``python -m
    repro explore sweep`` all share.  ``program_family`` selects the
    topology: the canonical ``"ring"``, the client-server ``"star"``, or
    the ``"gossip"`` fan-out (the explorable skeletons of the topology
    workload families).  Defaults to every registered protocol × every
    registered collector; crash mode inserts a process-0 crash before the
    final checkpoint round so every schedule exercises a recovery session.
    """
    from repro.explore.program import (
        ExploreConfig, gossip_program, ring_program, star_program,
    )
    from repro.gc.registry import available_collectors
    from repro.protocols.registry import available_protocols

    crash_pid = 0 if with_crash else None
    if program_family == "ring":
        program = ring_program(num_processes, messages, crash_pid=crash_pid)
    elif program_family == "star":
        program = star_program(num_processes, messages, crash_pid=crash_pid)
    elif program_family == "gossip":
        # A gossip round is `fanout` sends; size the round budget so the
        # program's send count tracks the requested message budget.
        fanout = min(2, num_processes - 1)
        program = gossip_program(
            num_processes,
            max(messages // fanout, 1),
            fanout=fanout,
            crash_pid=crash_pid,
        )
    else:
        raise ValueError(
            f"unknown program family {program_family!r} "
            f"(accepted: ring, star, gossip)"
        )
    if protocols is None:
        protocols = available_protocols()
    if collectors is None:
        chosen_names = available_collectors()
        options_by_name: Mapping[str, Mapping[str, object]] = dict(STUDY_COLLECTORS)
        # Every collector runs with its assumptions *honoured* on the
        # explorer's step-per-time-unit scale: the sweep's contract is "zero
        # violations expected".  In particular Manivannan–Singhal gets a
        # window far above any explorer program length — its
        # violated-window failure mode is a *found counterexample* test
        # (tests/explore), not a sweep expectation.
        options_by_name = {
            **options_by_name,
            "manivannan-singhal": {"checkpoint_period": 50.0},
        }
        collectors = tuple(
            (name, options_by_name.get(name, {})) for name in chosen_names
        )
    return tuple(
        ExploreConfig(
            num_processes=num_processes,
            program=program,
            protocol=protocol,
            collector=name,
            collector_options=tuple(sorted(dict(options).items())),
        )
        for protocol in protocols
        for name, options in collectors
    )


def fuzz_target_configs(
    *,
    targets: Optional[Sequence[str]] = None,
    budget: int = 300,
    seeds: Sequence[int] = (0,),
) -> Tuple["FuzzSpec", ...]:
    """The canonical fuzz grid: built-in targets × run seeds.

    One :class:`repro.fuzz.FuzzSpec` per (target, seed) cell — the family
    the CI fuzz gate and the nightly budgeted fuzz job share, mirroring how
    :func:`explore_sweep_configs` feeds the exploration gates.  Defaults to
    the clean built-in targets (the violating ones — the canaries and the
    Manivannan–Singhal window — are *found-counterexample* gates, opted
    into by name).

    Args:
        targets: built-in target names (default: the expected-clean ones).
        budget: candidate executions per cell.
        seeds: fuzzer mutation-stream seeds (one cell per seed).

    Returns:
        One spec per (target, seed), in grid order.
    """
    from repro.fuzz.fuzzer import FuzzSpec, builtin_targets

    registry = builtin_targets()
    if targets is None:
        targets = ("ring", "ring-crash", "ring3-crash", "star-crash", "gossip")
    unknown = sorted(set(targets) - set(registry))
    if unknown:
        accepted = ", ".join(sorted(registry))
        raise ValueError(
            f"unknown fuzz target {unknown[0]!r} (accepted: {accepted})"
        )
    return tuple(
        FuzzSpec(target=registry[name], budget=budget, seed=seed)
        for name in targets
        for seed in seeds
    )


def run_collector_comparison(
    spec: Optional[CampaignSpec] = None,
    *,
    workers: int = 1,
    store_path: Optional[str] = None,
    progress=None,
    group_by: Sequence[str] = ("workload", "collector", "failures"),
    metrics: Optional[Sequence[str]] = None,
) -> Tuple[CampaignRun, CampaignSummary]:
    """Run a collector-comparison campaign and aggregate it.

    Defaults to the full paper grid; pass :func:`smoke_campaign_spec` (or any
    custom spec) to change scope.  Returns the raw run and its per-``group_by``
    summary (default: workload × collector × failure level).
    """
    if spec is None:
        spec = paper_campaign_spec()
    run = run_campaign(spec, store_path=store_path, workers=workers, progress=progress)
    return run, aggregate_campaign(run.records, group_by=group_by, metrics=metrics)
