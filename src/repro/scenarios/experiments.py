"""Convenience experiment builders shared by tests, examples and benchmarks.

These helpers assemble :class:`repro.simulation.SimulationConfig` objects for
the experiment shapes used throughout the repository: a generic random run, a
protocol/collector comparison sweep and the Figure-5 worst-case run.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from repro.simulation.failures import FailureSchedule
from repro.simulation.network import NetworkConfig
from repro.simulation.runner import SimulationConfig, SimulationResult, SimulationRunner
from repro.simulation.workloads import UniformRandomWorkload, Workload, WorstCaseWorkload


def random_run_config(
    *,
    num_processes: int = 4,
    duration: float = 120.0,
    seed: int = 0,
    protocol: str = "fdas",
    collector: str = "rdt-lgc",
    collector_options: Optional[Mapping[str, object]] = None,
    crashes: int = 0,
    audit: str = "off",
    mean_message_gap: float = 2.0,
    mean_checkpoint_gap: float = 8.0,
    drop_probability: float = 0.0,
    workload: Optional[Workload] = None,
    keep_final_ccp: bool = True,
) -> SimulationConfig:
    """A complete configuration for one randomized experiment."""
    rng = random.Random(seed * 7919 + 13)
    failures = (
        FailureSchedule.random(
            num_processes=num_processes, duration=duration, count=crashes, rng=rng
        )
        if crashes
        else FailureSchedule.none()
    )
    if workload is None:
        workload = UniformRandomWorkload(
            mean_message_gap=mean_message_gap,
            mean_checkpoint_gap=mean_checkpoint_gap,
        )
    return SimulationConfig(
        num_processes=num_processes,
        duration=duration,
        workload=workload,
        protocol=protocol,
        collector=collector,
        collector_options=dict(collector_options or {}),
        network=NetworkConfig(drop_probability=drop_probability),
        failures=failures,
        seed=seed,
        audit=audit,
        keep_final_ccp=keep_final_ccp,
    )


def run_random_simulation(**kwargs) -> SimulationResult:
    """Build the configuration via :func:`random_run_config` and run it."""
    return SimulationRunner(random_run_config(**kwargs)).run()


def run_worst_case(
    num_processes: int,
    *,
    collector: str = "rdt-lgc",
    protocol: str = "fdas",
    audit: str = "off",
    collector_options: Optional[Mapping[str, object]] = None,
) -> SimulationResult:
    """Run the Figure-5 worst-case schedule for ``num_processes`` processes."""
    workload = WorstCaseWorkload(round_length=10.0)
    config = SimulationConfig(
        num_processes=num_processes,
        duration=workload.required_duration(num_processes),
        workload=workload,
        protocol=protocol,
        collector=collector,
        collector_options=dict(collector_options or {}),
        seed=1,
        audit=audit,
        keep_final_ccp=True,
    )
    return SimulationRunner(config).run()
