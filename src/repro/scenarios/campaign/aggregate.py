"""Aggregation of campaign results into per-group statistics tables.

Per-cell metrics (see :data:`repro.scenarios.campaign.executor.CELL_METRICS`)
are grouped by declarative axes — collector, workload, failure count, … —
and each group's metric lists are folded through
:func:`repro.analysis.metrics.aggregate` into :class:`AggregateStats`.

Everything here is deterministic in the grid-expansion order of the records,
never in completion order, so the rendered text/CSV/JSON tables of a spec are
byte-identical whether the sweep ran serially, on a pool, or resumed from a
partially filled store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import AggregateStats, aggregate
from repro.analysis.tables import TextTable

#: Default grouping: the paper's tables are per-workload sections with one
#: row per (collector, failure level).
DEFAULT_GROUP_BY: Tuple[str, ...] = ("workload", "collector", "failures")

#: Default metric columns of the rendered tables.
DEFAULT_METRICS: Tuple[str, ...] = (
    "peak_retained",
    "final_retained",
    "max_per_process",
    "collection_ratio",
    "control",
    "forced",
    "recoveries",
)


def _axis_value(params: Mapping[str, Any], axis: str) -> Any:
    """The value of one grouping axis, compacted to a scalar for table keys."""
    value = params[axis]
    if axis == "network":
        if value.get("channel"):
            # A fault-model channel supersedes the scalar fields; the label
            # carries its non-default parameters so two severities of the
            # same model never pool into one group.
            from repro.simulation.channels import channel_label

            label = f"ch={channel_label(value['channel'])}"
        else:
            label = (
                f"lat={value['base_latency']}/jit={value['jitter']}"
                f"/drop={value['drop_probability']}"
            )
        for partition in value.get("partitions") or ():
            groups = ";".join(
                ",".join(str(pid) for pid in group) for group in partition["groups"]
            )
            label += f"/part[{partition['start']:g},{partition['end']:g})g{groups}"
        if value.get("fifo"):
            label += "/fifo"
        return label
    if isinstance(value, Mapping):
        return json.dumps(value, sort_keys=True)
    return value


@dataclass(frozen=True)
class GroupStats:
    """Aggregate statistics of one group of cells.

    ``count`` is the number of *successful* runs folded into ``stats``;
    ``failed`` counts cells of this group whose simulation raised (e.g. an
    unsafe collector breaking recovery — a finding, not an aggregation input).
    """

    key: Tuple[Any, ...]
    count: int
    stats: Dict[str, AggregateStats]
    failed: int = 0


@dataclass(frozen=True)
class CampaignSummary:
    """Aggregated view of a campaign: one :class:`GroupStats` per group."""

    campaign: str
    group_by: Tuple[str, ...]
    metrics: Tuple[str, ...]
    groups: Tuple[GroupStats, ...]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def table(self, *, title: Optional[str] = None) -> TextTable:
        """A display table: one row per group, ``mean ± sd`` per metric."""
        columns = (
            list(self.group_by)
            + [f"{m} (mean±sd)" for m in self.metrics]
            + ["runs", "failed"]
        )
        table = TextTable(
            columns,
            title=title if title is not None else f"Campaign: {self.campaign}",
        )
        for group in self.groups:
            cells = [
                f"{group.stats[m].mean:.2f}±{group.stats[m].stdev:.2f}"
                if m in group.stats
                else "-"
                for m in self.metrics
            ]
            table.add_row(*group.key, *cells, group.count, group.failed)
        return table

    def tables_by(self, axis: str) -> List[Tuple[Any, TextTable]]:
        """One table per distinct value of ``axis`` (which must be a group
        axis), with that axis dropped from the rows — the paper's
        per-workload presentation."""
        if axis not in self.group_by:
            raise ValueError(f"{axis!r} is not a grouping axis of this summary")
        position = self.group_by.index(axis)
        remaining = tuple(a for a in self.group_by if a != axis)
        sections: Dict[Any, List[GroupStats]] = {}
        for group in self.groups:
            sections.setdefault(group.key[position], []).append(group)
        tables: List[Tuple[Any, TextTable]] = []
        for value, groups in sections.items():
            sub = CampaignSummary(
                campaign=self.campaign,
                group_by=remaining,
                metrics=self.metrics,
                groups=tuple(
                    GroupStats(
                        key=tuple(k for i, k in enumerate(g.key) if i != position),
                        count=g.count,
                        stats=g.stats,
                        failed=g.failed,
                    )
                    for g in groups
                ),
            )
            tables.append(
                (value, sub.table(title=f"Campaign: {self.campaign} — {axis}={value}"))
            )
        return tables

    def to_csv(self) -> str:
        """Full-precision CSV: group axes, then mean/stdev/min/max per metric.

        Values are pre-rendered with ``repr`` (exact float round-trip) and the
        serialization itself goes through :meth:`TextTable.render_csv`.
        """
        header = list(self.group_by)
        for metric in self.metrics:
            header += [f"{metric}_mean", f"{metric}_stdev", f"{metric}_min", f"{metric}_max"]
        header += ["runs", "failed"]
        table = TextTable(header)
        for group in self.groups:
            row: List[Any] = [str(k) for k in group.key]
            for metric in self.metrics:
                stats = group.stats.get(metric)
                if stats is None:
                    row += ["", "", "", ""]
                else:
                    row += [
                        repr(stats.mean),
                        repr(stats.stdev),
                        repr(stats.minimum),
                        repr(stats.maximum),
                    ]
            row += [str(group.count), str(group.failed)]
            table.add_row(*row)
        return table.render_csv()

    def to_json(self) -> str:
        """Full-precision JSON document of the grouped statistics."""
        groups = []
        for group in self.groups:
            entry: Dict[str, Any] = {
                axis: key for axis, key in zip(self.group_by, group.key)
            }
            entry["runs"] = group.count
            entry["failed"] = group.failed
            entry["stats"] = {
                metric: {
                    "mean": stats.mean,
                    "stdev": stats.stdev,
                    "min": stats.minimum,
                    "max": stats.maximum,
                    "count": stats.count,
                }
                for metric, stats in group.stats.items()
            }
            groups.append(entry)
        return json.dumps(
            {
                "campaign": self.campaign,
                "group_by": list(self.group_by),
                "metrics": list(self.metrics),
                "groups": groups,
            },
            indent=2,
        )


def aggregate_campaign(
    records: Iterable[Mapping[str, Any]],
    *,
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Optional[Sequence[str]] = None,
) -> CampaignSummary:
    """Fold per-cell records into a :class:`CampaignSummary`.

    ``records`` are store records (``{"cell_id", "params", "metrics"}``) in
    grid-expansion order — pass ``CampaignRun.records``.  (To aggregate a
    store file, run the campaign against it: completed cells resume instead
    of re-executing, and the run re-orders them to expansion order.)
    ``group_by`` names cell parameters; ``metrics`` names cell metrics
    (default: every metric present in the first record, in
    :data:`DEFAULT_METRICS` order first).
    """
    materialised = list(records)
    if not materialised:
        raise ValueError("cannot aggregate an empty campaign")
    succeeded = [r for r in materialised if r.get("status", "ok") == "ok"]
    if not succeeded:
        raise ValueError("cannot aggregate a campaign in which every cell failed")
    available = list(succeeded[0]["metrics"])
    if metrics is None:
        # Default metrics first, then the rest alphabetically: the order must
        # not depend on whether records came from memory (extractor order) or
        # from a JSONL store (sort_keys order).
        chosen = [m for m in DEFAULT_METRICS if m in available]
        chosen += sorted(m for m in available if m not in chosen)
    else:
        missing = [m for m in metrics if m not in available]
        if missing:
            raise KeyError(f"unknown campaign metrics: {', '.join(missing)}")
        chosen = list(metrics)
    campaign = str(materialised[0]["params"].get("campaign", ""))

    grouped: Dict[Tuple[Any, ...], List[Mapping[str, Any]]] = {}
    failed_by_key: Dict[Tuple[Any, ...], int] = {}
    for record in materialised:
        key = tuple(_axis_value(record["params"], axis) for axis in group_by)
        grouped.setdefault(key, [])
        failed_by_key.setdefault(key, 0)
        if record.get("status", "ok") == "ok":
            grouped[key].append(record)
        else:
            failed_by_key[key] += 1

    groups = tuple(
        GroupStats(
            key=key,
            count=len(members),
            stats={
                metric: aggregate(member["metrics"][metric] for member in members)
                for metric in chosen
            }
            if members
            else {},
            failed=failed_by_key[key],
        )
        for key, members in grouped.items()
    )
    return CampaignSummary(
        campaign=campaign,
        group_by=tuple(group_by),
        metrics=tuple(chosen),
        groups=groups,
    )
