"""SQL result store and work-queue for distributed campaign execution.

This is the canonical result sink of the campaign fabric: a single SQLite
file (any number of workers on one machine, or several machines pointed at a
shared directory) holding four relational tables plus a lease journal:

``runs``
    One row per enqueued campaign: a stable ``run_id`` (digest of the cell
    set), the campaign name, cell count and creation time.
``cells``
    One row per grid cell, keyed by the content-addressed ``cell_id``.  The
    canonical parameter document is kept verbatim in ``params`` (JSON);
    the common grid axes (protocol, collector, workload, failures, network,
    backend, seed index) are denormalised into columns so analytical SQL
    never parses JSON.  ``status`` walks ``pending -> leased -> ok|failed``.
``metrics``
    One row per (cell, metric).  ``value`` is a REAL for SQL aggregation;
    ``value_text`` is the JSON scalar encoding, which preserves the
    int-versus-float distinction so records read back from the store are
    *exactly* the records a JSONL store would have returned — that is what
    makes SQL-store aggregates byte-identical to the JSONL era.
``artifacts``
    One row per (cell, kind) pointing at a persisted artifact — today the
    per-cell v2 trace file written by traced sweeps.
``leases``
    Append-only claim journal: every successful claim inserts a row with the
    worker identity, attempt number and expiry; completion stamps the
    outcome.  Double-execution of a cell is visible here as two ``ok`` rows,
    which the concurrency tests assert never happens.

Claim/lease protocol.  ``claim()`` runs a single ``BEGIN IMMEDIATE``
transaction: select claimable cells (``pending``, or ``leased`` with an
expired lease — the crash-recovery path), mark them ``leased`` with a fresh
expiry and an incremented attempt counter, journal the lease.  SQLite's
write lock makes the transaction atomic across processes, so two racing
workers can never claim the same cell.  A worker that dies mid-lease (e.g.
SIGKILL) simply stops heartbeating: once its lease expires the cell is
claimable again, and because cells are content-addressed and self-seeded the
re-run produces a byte-identical result row.  ``complete()`` refuses to
overwrite a row whose attempt counter has moved on (a stale worker finishing
after its lease was reclaimed), so exactly one completion wins.

The schema is deliberately Postgres-ready: plain TEXT/INTEGER/REAL columns,
no SQLite-specific types, ``INTEGER PRIMARY KEY`` instead of AUTOINCREMENT
(maps to IDENTITY), and all timestamps as epoch REALs.  Porting is a
connection string away; only the ``BEGIN IMMEDIATE`` spelling (Postgres:
``SELECT ... FOR UPDATE SKIP LOCKED``) differs.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.scenarios.campaign.aggregate import _axis_value

#: File extensions routed to this store by :func:`open_store`.
SQL_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Default lease duration.  Must comfortably exceed the wall time of the
#: slowest cell: a lease that expires mid-execution makes the cell claimable
#: again and wastes (deterministic, but real) work on a duplicate run.
DEFAULT_LEASE = 900.0

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_info (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id     TEXT PRIMARY KEY,
    campaign   TEXT NOT NULL,
    cells      INTEGER NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    cell_id      TEXT PRIMARY KEY,
    campaign     TEXT NOT NULL,
    cell_index   INTEGER,
    protocol     TEXT NOT NULL,
    collector    TEXT NOT NULL,
    workload     TEXT NOT NULL,
    failures     TEXT NOT NULL,
    network      TEXT NOT NULL,
    backend      TEXT NOT NULL,
    seed_index   INTEGER NOT NULL,
    params       TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'pending',
    worker       TEXT,
    attempt      INTEGER NOT NULL DEFAULT 0,
    lease_expires REAL,
    error        TEXT,
    completed_at REAL
);
CREATE INDEX IF NOT EXISTS idx_cells_status ON cells (status, cell_index);
CREATE TABLE IF NOT EXISTS metrics (
    cell_id    TEXT NOT NULL,
    name       TEXT NOT NULL,
    value      REAL NOT NULL,
    value_text TEXT NOT NULL,
    PRIMARY KEY (cell_id, name)
);
CREATE TABLE IF NOT EXISTS artifacts (
    cell_id TEXT NOT NULL,
    kind    TEXT NOT NULL,
    path    TEXT NOT NULL,
    PRIMARY KEY (cell_id, kind)
);
CREATE TABLE IF NOT EXISTS leases (
    lease_id   INTEGER PRIMARY KEY,
    cell_id    TEXT NOT NULL,
    worker     TEXT NOT NULL,
    attempt    INTEGER NOT NULL,
    claimed_at REAL NOT NULL,
    expires_at REAL NOT NULL,
    outcome    TEXT
);
CREATE INDEX IF NOT EXISTS idx_leases_cell ON leases (cell_id);
CREATE VIEW IF NOT EXISTS cell_metrics AS
    SELECT c.cell_id, c.campaign, c.cell_index, c.protocol, c.collector,
           c.workload, c.failures, c.network, c.backend, c.seed_index,
           m.name AS metric, m.value
    FROM cells c JOIN metrics m ON m.cell_id = c.cell_id
    WHERE c.status = 'ok';
"""


@dataclass(frozen=True)
class ClaimedCell:
    """One cell leased to a worker by :meth:`SQLResultStore.claim`."""

    cell_id: str
    cell_index: Optional[int]
    attempt: int
    lease_expires: float


def _metric_scalar(value: Any) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(f"metric values must be numeric, got {value!r}") from None


class SQLResultStore:
    """SQLite-backed campaign result store with an atomic work queue.

    Implements the same ``load()`` / ``append()`` surface as the JSONL
    :class:`~repro.scenarios.campaign.store.CampaignStore` (so the classic
    pool executor runs against it unchanged) plus the queue operations the
    distributed fabric needs: :meth:`enqueue`, :meth:`claim`,
    :meth:`complete`, :meth:`status_counts` and :meth:`merge_from`.
    """

    def __init__(self, path: str, *, timeout: float = 30.0) -> None:
        self._path = path
        self._timeout = timeout
        self._ensure_schema()

    @property
    def path(self) -> str:
        """Location of the SQLite file."""
        return self._path

    def exists(self) -> bool:
        """True if the store file is present on disk."""
        return os.path.exists(self._path)

    # ------------------------------------------------------------------
    # Connections and schema
    # ------------------------------------------------------------------
    @contextmanager
    def connect(self) -> Iterator[sqlite3.Connection]:
        """A fresh autocommit connection (fork-safe: never cached).

        Exposed publicly so the query library and ad-hoc analysis can run
        arbitrary SQL against the store's tables and views.
        """
        connection = sqlite3.connect(self._path, timeout=self._timeout)
        connection.isolation_level = None  # explicit BEGIN only
        connection.row_factory = sqlite3.Row
        connection.execute(f"PRAGMA busy_timeout = {int(self._timeout * 1000)}")
        try:
            yield connection
        finally:
            connection.close()

    def _ensure_schema(self) -> None:
        directory = os.path.dirname(os.path.abspath(self._path))
        os.makedirs(directory, exist_ok=True)
        with self.connect() as connection:
            # WAL survives in the file: concurrent claimers read while one
            # writes, instead of serialising every SELECT behind the lock.
            connection.execute("PRAGMA journal_mode = WAL")
            # executescript issues its own implicit COMMIT, so the version
            # check runs in a separate explicit transaction below.
            connection.executescript(_SCHEMA)
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT value FROM schema_info WHERE key = 'version'"
            ).fetchone()
            if row is None:
                connection.execute(
                    "INSERT INTO schema_info (key, value) VALUES ('version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row["value"]) != SCHEMA_VERSION:
                connection.execute("ROLLBACK")
                raise ValueError(
                    f"result store {self._path!r} has schema version "
                    f"{row['value']}, this code expects {SCHEMA_VERSION}"
                )
            connection.execute("COMMIT")
            from repro.scenarios.campaign.queries import create_views

            create_views(connection)

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------
    def enqueue(
        self,
        cells: Sequence[Any],
        *,
        campaign: Optional[str] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> int:
        """Register grid cells as pending work; returns the rows inserted.

        ``cells`` are :class:`~repro.scenarios.campaign.spec.CampaignCell`
        objects in grid-expansion order (their position is persisted as
        ``cell_index`` — the reducer's ordering key).  Enqueueing is
        idempotent: cells already present, in any status, are left alone, so
        any number of workers can enqueue the same spec against one store.
        ``shard=(k, n)`` registers only the cells with ``index % n == k``.
        """
        rows = []
        for index, cell in enumerate(cells):
            if shard is not None and index % shard[1] != shard[0]:
                continue
            params = cell.params()
            rows.append(
                (
                    cell.cell_id,
                    params.get("campaign", ""),
                    index,
                    str(params.get("protocol", "")),
                    str(params.get("collector", "")),
                    str(params.get("workload", "")),
                    str(params.get("failures", "")),
                    str(_axis_value(params, "network")),
                    str(params.get("backend", "sim")),
                    int(params.get("seed_index", 0)),
                    json.dumps(params, sort_keys=True),
                )
            )
        if not rows:
            return 0
        name = campaign if campaign is not None else rows[0][1]
        run_id = hashlib.sha256(
            json.dumps([row[0] for row in rows], sort_keys=True).encode("utf-8")
        ).hexdigest()[:16]
        with self.connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            before = connection.execute("SELECT COUNT(*) AS n FROM cells").fetchone()["n"]
            connection.executemany(
                """
                INSERT OR IGNORE INTO cells
                    (cell_id, campaign, cell_index, protocol, collector,
                     workload, failures, network, backend, seed_index, params)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                rows,
            )
            after = connection.execute("SELECT COUNT(*) AS n FROM cells").fetchone()["n"]
            # Cells first seen via append() (the index-less legacy surface)
            # learn their expansion index here, restoring grid order.
            connection.executemany(
                "UPDATE cells SET cell_index = ? "
                "WHERE cell_id = ? AND cell_index IS NULL",
                [(row[2], row[0]) for row in rows],
            )
            connection.execute(
                "INSERT OR IGNORE INTO runs (run_id, campaign, cells, created_at) "
                "VALUES (?, ?, ?, ?)",
                (run_id, name, len(rows), time.time()),
            )
            connection.execute("COMMIT")
        return after - before

    # ------------------------------------------------------------------
    # Claim / lease
    # ------------------------------------------------------------------
    def claim(
        self,
        *,
        worker: str,
        limit: int = 1,
        lease_duration: float = DEFAULT_LEASE,
        now: Optional[float] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> List[ClaimedCell]:
        """Atomically lease up to ``limit`` claimable cells to ``worker``.

        Claimable means ``pending``, or ``leased`` with an expired lease (the
        holder died); expired leases are journalled as ``outcome='expired'``
        when reclaimed.  ``shard=(k, n)`` restricts claims to cells whose
        expansion index is ``k`` modulo ``n``.  Returns the claimed cells in
        ``cell_index`` order; an empty list means nothing is claimable
        *right now* — completed sweeps and in-flight leases held by live
        workers look the same here, so callers distinguish them via
        :meth:`remaining`.
        """
        moment = time.time() if now is None else now
        claimed: List[ClaimedCell] = []
        shard_sql = ""
        args: Tuple[Any, ...] = (moment,)
        if shard is not None:
            shard_sql = "AND cell_index % ? = ?"
            args += (shard[1], shard[0])
        with self.connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            rows = connection.execute(
                f"""
                SELECT cell_id, cell_index, attempt, status FROM cells
                WHERE (status = 'pending'
                   OR (status = 'leased' AND lease_expires <= ?))
                   {shard_sql}
                ORDER BY cell_index, cell_id
                LIMIT ?
                """,
                args + (int(limit),),
            ).fetchall()
            for row in rows:
                attempt = row["attempt"] + 1
                expires = moment + lease_duration
                if row["status"] == "leased":
                    connection.execute(
                        "UPDATE leases SET outcome = 'expired' "
                        "WHERE cell_id = ? AND outcome IS NULL",
                        (row["cell_id"],),
                    )
                connection.execute(
                    "UPDATE cells SET status = 'leased', worker = ?, "
                    "attempt = ?, lease_expires = ? WHERE cell_id = ?",
                    (worker, attempt, expires, row["cell_id"]),
                )
                connection.execute(
                    "INSERT INTO leases (cell_id, worker, attempt, claimed_at, "
                    "expires_at) VALUES (?, ?, ?, ?, ?)",
                    (row["cell_id"], worker, attempt, moment, expires),
                )
                claimed.append(
                    ClaimedCell(
                        cell_id=row["cell_id"],
                        cell_index=row["cell_index"],
                        attempt=attempt,
                        lease_expires=expires,
                    )
                )
            connection.execute("COMMIT")
        return claimed

    def complete(
        self,
        record: Mapping[str, Any],
        *,
        worker: str = "local",
        attempt: Optional[int] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Persist one finished cell's result row; True if this write won.

        ``attempt`` ties the completion to the lease that authorised it: if
        the cell's attempt counter has moved on (our lease expired and
        another worker reclaimed the cell) the write is refused and the stale
        lease journalled as ``outcome='stale'`` — results are deterministic,
        so nothing is lost, but exactly one completion owns the row.
        With ``attempt=None`` (the classic pool executor, which never
        leases) the write is unconditional.
        """
        if "cell_id" not in record:
            raise ValueError("campaign records need a cell_id")
        cell_id = record["cell_id"]
        status = record.get("status", "ok")
        moment = time.time() if now is None else now
        with self.connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT attempt FROM cells WHERE cell_id = ?", (cell_id,)
            ).fetchone()
            if row is None:
                connection.execute("ROLLBACK")
                raise ValueError(
                    f"cannot complete unknown cell {cell_id!r}; enqueue it first "
                    f"(or use append() for store-compatible upserts)"
                )
            if attempt is not None and row["attempt"] != attempt:
                connection.execute(
                    "UPDATE leases SET outcome = 'stale' "
                    "WHERE cell_id = ? AND attempt = ?",
                    (cell_id, attempt),
                )
                connection.execute("COMMIT")
                return False
            connection.execute(
                "UPDATE cells SET status = ?, worker = ?, error = ?, "
                "completed_at = ?, lease_expires = NULL WHERE cell_id = ?",
                (status, worker, record.get("error"), moment, cell_id),
            )
            connection.execute("DELETE FROM metrics WHERE cell_id = ?", (cell_id,))
            for name, value in (record.get("metrics") or {}).items():
                connection.execute(
                    "INSERT INTO metrics (cell_id, name, value, value_text) "
                    "VALUES (?, ?, ?, ?)",
                    (cell_id, name, _metric_scalar(value), json.dumps(value)),
                )
            connection.execute(
                "DELETE FROM artifacts WHERE cell_id = ? AND kind = 'trace'",
                (cell_id,),
            )
            if record.get("trace"):
                connection.execute(
                    "INSERT INTO artifacts (cell_id, kind, path) VALUES (?, ?, ?)",
                    (cell_id, "trace", record["trace"]),
                )
            if attempt is not None:
                connection.execute(
                    "UPDATE leases SET outcome = ? WHERE cell_id = ? AND attempt = ?",
                    (status, cell_id, attempt),
                )
            connection.execute("COMMIT")
        return True

    # ------------------------------------------------------------------
    # CampaignStore-compatible surface
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """All completed records keyed by ``cell_id`` (resume semantics)."""
        return {
            record["cell_id"]: record
            for record in self.records(include_incomplete=False)
        }

    def append(self, record: Mapping[str, Any]) -> None:
        """Upsert one completed record (the JSONL store's append contract).

        Cells unknown to the queue are registered on the fly from the
        record's own ``params``, so the classic in-process executor can
        stream into a fresh SQL store exactly as it streamed into JSONL.
        """
        if "cell_id" not in record:
            raise ValueError("campaign records need a cell_id")
        params = record.get("params") or {}
        with self.connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            connection.execute(
                """
                INSERT OR IGNORE INTO cells
                    (cell_id, campaign, cell_index, protocol, collector,
                     workload, failures, network, backend, seed_index, params)
                VALUES (?, ?, NULL, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    record["cell_id"],
                    params.get("campaign", ""),
                    str(params.get("protocol", "")),
                    str(params.get("collector", "")),
                    str(params.get("workload", "")),
                    str(params.get("failures", "")),
                    str(_axis_value(params, "network")) if "network" in params else "",
                    str(params.get("backend", "sim")),
                    int(params.get("seed_index", 0)),
                    json.dumps(params, sort_keys=True),
                ),
            )
            connection.execute("COMMIT")
        self.complete(record, worker="local", attempt=None)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self, *, include_incomplete: bool = True) -> List[Dict[str, Any]]:
        """Store records in grid-expansion order — the reducer's input.

        Each completed cell reconstructs the exact record the executor
        produced (params from the verbatim JSON, metrics from their JSON
        scalar encodings), so aggregation over these records is
        byte-identical to aggregation over a JSONL store or a live run.
        With ``include_incomplete`` pending/leased cells are reported as
        minimal ``{"cell_id", "params", "status"}`` records (the reducer
        refuses to fold those; callers filter or fail on them).
        """
        with self.connect() as connection:
            rows = connection.execute(
                "SELECT cell_id, params, status, error FROM cells "
                "ORDER BY cell_index, cell_id"
            ).fetchall()
            metric_rows = connection.execute(
                "SELECT cell_id, name, value_text FROM metrics"
            ).fetchall()
            artifact_rows = connection.execute(
                "SELECT cell_id, path FROM artifacts WHERE kind = 'trace'"
            ).fetchall()
        metrics: Dict[str, Dict[str, Any]] = {}
        for row in metric_rows:
            metrics.setdefault(row["cell_id"], {})[row["name"]] = json.loads(
                row["value_text"]
            )
        traces = {row["cell_id"]: row["path"] for row in artifact_rows}
        records: List[Dict[str, Any]] = []
        for row in rows:
            if row["status"] not in ("ok", "failed") and not include_incomplete:
                continue
            record: Dict[str, Any] = {
                "cell_id": row["cell_id"],
                "params": json.loads(row["params"]),
            }
            if row["cell_id"] in traces:
                record["trace"] = traces[row["cell_id"]]
            record["status"] = row["status"]
            if row["status"] == "ok":
                record["metrics"] = metrics.get(row["cell_id"], {})
            elif row["status"] == "failed":
                record["error"] = row["error"]
            records.append(record)
        return records

    def status_counts(self) -> Dict[str, int]:
        """Cell counts per status (``pending``/``leased``/``ok``/``failed``)."""
        with self.connect() as connection:
            rows = connection.execute(
                "SELECT status, COUNT(*) AS n FROM cells GROUP BY status"
            ).fetchall()
        return {row["status"]: row["n"] for row in rows}

    def remaining(self, *, now: Optional[float] = None) -> Tuple[int, int]:
        """(claimable, in-flight) cell counts — the worker loop's exit test.

        Claimable counts pending cells plus expired leases; in-flight counts
        live leases held by (presumed alive) workers.
        """
        moment = time.time() if now is None else now
        with self.connect() as connection:
            claimable = connection.execute(
                "SELECT COUNT(*) AS n FROM cells WHERE status = 'pending' "
                "OR (status = 'leased' AND lease_expires <= ?)",
                (moment,),
            ).fetchone()["n"]
            inflight = connection.execute(
                "SELECT COUNT(*) AS n FROM cells WHERE status = 'leased' "
                "AND lease_expires > ?",
                (moment,),
            ).fetchone()["n"]
        return claimable, inflight

    def lease_history(self, cell_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """The claim journal (optionally for one cell), oldest first."""
        query = (
            "SELECT cell_id, worker, attempt, claimed_at, expires_at, outcome "
            "FROM leases"
        )
        args: Tuple[Any, ...] = ()
        if cell_id is not None:
            query += " WHERE cell_id = ?"
            args = (cell_id,)
        query += " ORDER BY lease_id"
        with self.connect() as connection:
            rows = connection.execute(query, args).fetchall()
        return [dict(row) for row in rows]

    def reset_failed(self) -> int:
        """Return failed cells to ``pending`` (the --retry-failed path)."""
        with self.connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            cursor = connection.execute(
                "UPDATE cells SET status = 'pending', error = NULL, "
                "completed_at = NULL, worker = NULL WHERE status = 'failed'"
            )
            connection.execute("COMMIT")
            return cursor.rowcount

    # ------------------------------------------------------------------
    # Merging (CI shard artifacts -> one store)
    # ------------------------------------------------------------------
    def merge_from(self, other_path: str) -> int:
        """Fold another store's *completed* cells into this one.

        The reducer step for CI matrix shards: each shard uploads its own
        store file, the reduce job merges them and aggregates once.  A cell
        completed in both stores keeps the earlier import (results are
        content-addressed and deterministic, so the rows agree anyway);
        pending/leased rows in ``other`` are registered as pending here.
        Returns the number of completed cells imported.
        """
        other = SQLResultStore(other_path, timeout=self._timeout)
        imported = 0
        already = self.load()
        with other.connect() as connection:
            cell_rows = [
                dict(row)
                for row in connection.execute("SELECT * FROM cells").fetchall()
            ]
        records = {r["cell_id"]: r for r in other.records()}
        for row in cell_rows:
            record = records[row["cell_id"]]
            with self.connect() as connection:
                connection.execute("BEGIN IMMEDIATE")
                connection.execute(
                    """
                    INSERT OR IGNORE INTO cells
                        (cell_id, campaign, cell_index, protocol, collector,
                         workload, failures, network, backend, seed_index, params)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        row["cell_id"],
                        row["campaign"],
                        row["cell_index"],
                        row["protocol"],
                        row["collector"],
                        row["workload"],
                        row["failures"],
                        row["network"],
                        row["backend"],
                        row["seed_index"],
                        row["params"],
                    ),
                )
                connection.execute(
                    "UPDATE cells SET cell_index = ? "
                    "WHERE cell_id = ? AND cell_index IS NULL",
                    (row["cell_index"], row["cell_id"]),
                )
                connection.execute("COMMIT")
            if row["status"] in ("ok", "failed") and row["cell_id"] not in already:
                self.complete(record, worker=row["worker"] or "merge", attempt=None)
                imported += 1
        return imported


def open_store(path: str):
    """Open the result store a path denotes: ``.jsonl`` is the legacy JSONL
    store, everything else (``.sqlite``/``.sqlite3``/``.db`` by convention)
    the SQL store."""
    if path.endswith(".jsonl"):
        from repro.scenarios.campaign.store import CampaignStore

        return CampaignStore(path)
    return SQLResultStore(path)
