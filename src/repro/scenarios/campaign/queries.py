"""Canned analytical queries over the campaign result store.

The paper's evaluation asks a small set of questions over the protocol ×
collector × workload × fault-model grid — which collector retains the fewest
checkpoints under which regime, how sensitive each collector is to churn,
whether live (real-process) executions agree with the simulator.  This
module answers them in two equivalent forms:

* **SQL views** (``v_collector_score``, ``v_retained_winner``,
  ``v_churn_sensitivity``, ``v_live_vs_sim``) created inside every store, so
  any SQL client — ``sqlite3`` CLI, a notebook, Postgres after a port — can
  ask the default-parameter versions directly;
* **Python helpers** (:func:`run_query`, one entry per :data:`QUERIES`)
  which run the parameterised versions and return rows as dicts.

Two queries are *reducers*, not SQL: ``aggregate`` folds the store's records
through :func:`repro.scenarios.campaign.aggregate.aggregate_campaign` — the
same code path JSONL stores and traced sweeps use — so its CSV/JSON output
is byte-identical to the JSONL era on the same grid; ``status`` summarises
queue health (pending/leased/ok/failed, lease journal).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Grid axes shared by every analytical view; ``backend`` is excluded where
#: the query compares backends.
_AXES = "protocol, workload, failures, network"

_VIEW_SQL = {
    # Mean metric value per (regime, collector): the scoring substrate every
    # ranking query builds on.
    "v_collector_score": f"""
        SELECT campaign, {_AXES}, backend, collector, metric,
               AVG(value) AS mean_value,
               MIN(value) AS min_value,
               MAX(value) AS max_value,
               COUNT(*) AS runs
        FROM cell_metrics
        GROUP BY campaign, {_AXES}, backend, collector, metric
    """,
    # The paper's headline question: per fault regime, which collector
    # retains the fewest checkpoints (default metric: peak_retained)?
    "v_retained_winner": f"""
        SELECT * FROM (
            SELECT campaign, {_AXES}, backend, collector, mean_value, runs,
                   RANK() OVER (
                       PARTITION BY campaign, {_AXES}, backend
                       ORDER BY mean_value ASC, collector ASC
                   ) AS rank
            FROM v_collector_score
            WHERE metric = 'peak_retained'
        ) WHERE rank = 1
    """,
    # How much worse does each collector get as the failure axis hardens?
    "v_churn_sensitivity": """
        SELECT campaign, protocol, workload, network, backend, collector,
               failures, metric, mean_value, runs
        FROM v_collector_score
        ORDER BY campaign, protocol, workload, network, collector, failures
    """,
    # Sim-vs-live agreement: mean deltas for cells identical up to backend.
    "v_live_vs_sim": f"""
        SELECT sim.campaign, sim.protocol, sim.workload, sim.failures,
               sim.network, sim.collector, sim.metric,
               sim.mean_value AS sim_mean,
               live.mean_value AS live_mean,
               live.mean_value - sim.mean_value AS delta,
               sim.runs AS sim_runs, live.runs AS live_runs
        FROM v_collector_score sim
        JOIN v_collector_score live
          ON  sim.campaign = live.campaign
          AND sim.protocol = live.protocol
          AND sim.workload = live.workload
          AND sim.failures = live.failures
          AND sim.network = live.network
          AND sim.collector = live.collector
          AND sim.metric = live.metric
        WHERE sim.backend = 'sim' AND live.backend = 'live'
    """,
}


def create_views(connection: sqlite3.Connection) -> None:
    """Install the canned analytical views (idempotent)."""
    for name, sql in _VIEW_SQL.items():
        connection.execute(f"CREATE VIEW IF NOT EXISTS {name} AS {sql}")


@dataclass(frozen=True)
class Query:
    """One canned query: parameterised SQL plus its documentation."""

    name: str
    description: str
    sql: str
    defaults: Dict[str, Any] = field(default_factory=dict)


QUERIES: Dict[str, Query] = {
    query.name: query
    for query in (
        Query(
            name="retained-winner",
            description=(
                "Per fault regime (protocol x workload x failures x network), "
                "the collector with the lowest mean of :metric (default "
                "peak_retained) — 'which collector wins under bursty loss?'"
            ),
            sql=f"""
                SELECT * FROM (
                    SELECT campaign, {_AXES}, backend, collector, mean_value, runs,
                           RANK() OVER (
                               PARTITION BY campaign, {_AXES}, backend
                               ORDER BY mean_value ASC, collector ASC
                           ) AS rank
                    FROM v_collector_score
                    WHERE metric = :metric AND backend = :backend
                ) WHERE rank = 1
                ORDER BY campaign, {_AXES}
            """,
            defaults={"metric": "peak_retained", "backend": "sim"},
        ),
        Query(
            name="collector-table",
            description=(
                "Mean/min/max of :metric per (regime, collector) — the "
                "paper's comparison tables as rows."
            ),
            sql=f"""
                SELECT campaign, {_AXES}, backend, collector,
                       mean_value, min_value, max_value, runs
                FROM v_collector_score
                WHERE metric = :metric
                ORDER BY campaign, {_AXES}, backend, mean_value, collector
            """,
            defaults={"metric": "peak_retained"},
        ),
        Query(
            name="churn-sensitivity",
            description=(
                "Mean of :metric per collector as the failure axis hardens "
                "— how gracefully each collector degrades under churn."
            ),
            sql="""
                SELECT campaign, protocol, workload, network, backend,
                       collector, failures, mean_value, runs
                FROM v_collector_score
                WHERE metric = :metric
                ORDER BY campaign, protocol, workload, network, backend,
                         collector, failures
            """,
            defaults={"metric": "peak_retained"},
        ),
        Query(
            name="live-vs-sim",
            description=(
                "Per-regime mean deltas between live (real-process) and "
                "simulated executions of identical cells, for :metric."
            ),
            sql="""
                SELECT * FROM v_live_vs_sim
                WHERE metric = :metric
                ORDER BY campaign, protocol, workload, failures, network,
                         collector
            """,
            defaults={"metric": "peak_retained"},
        ),
        Query(
            name="failures",
            description="Failed cells with their errors, in expansion order.",
            sql="""
                SELECT cell_id, campaign, protocol, collector, workload,
                       failures, network, backend, seed_index, error
                FROM cells WHERE status = 'failed'
                ORDER BY cell_index, cell_id
            """,
        ),
    )
}


def run_query(
    store: Any,
    name: str,
    **params: Any,
) -> List[Dict[str, Any]]:
    """Run one canned query against a store (object or path); rows as dicts.

    Unknown parameters are rejected by name; omitted ones take the query's
    documented defaults.
    """
    from repro.scenarios.campaign.sqlstore import SQLResultStore

    if isinstance(store, str):
        store = SQLResultStore(store)
    if name not in QUERIES:
        raise KeyError(
            f"unknown query {name!r}; available: {', '.join(sorted(QUERIES))}"
        )
    query = QUERIES[name]
    unknown = sorted(set(params) - set(query.defaults))
    if unknown:
        accepted = ", ".join(sorted(query.defaults)) or "none"
        raise ValueError(
            f"query {name!r} does not take parameter(s) "
            f"{', '.join(unknown)}; accepted: {accepted}"
        )
    bound = {**query.defaults, **params}
    with store.connect() as connection:
        create_views(connection)
        rows = connection.execute(query.sql, bound).fetchall()
    return [dict(row) for row in rows]


def store_summary(
    store: Any,
    *,
    group_by: Optional[Tuple[str, ...]] = None,
    metrics: Optional[Tuple[str, ...]] = None,
    allow_incomplete: bool = False,
):
    """The byte-identical reducer: fold a store into a CampaignSummary.

    Reads the store's records in grid-expansion order and hands them to the
    same :func:`~repro.scenarios.campaign.aggregate.aggregate_campaign` every
    other path uses, so the CSV/JSON this produces is byte-identical to the
    JSONL-era aggregate of the same grid.  Refuses stores with pending or
    leased cells unless ``allow_incomplete`` — a reducer that silently
    aggregates half a sweep would report a different study.
    """
    from repro.scenarios.campaign.aggregate import (
        DEFAULT_GROUP_BY,
        aggregate_campaign,
    )
    from repro.scenarios.campaign.sqlstore import SQLResultStore

    if isinstance(store, str):
        store = SQLResultStore(store)
    records = store.records()
    incomplete = [r for r in records if r.get("status") not in ("ok", "failed")]
    if incomplete and not allow_incomplete:
        raise ValueError(
            f"store has {len(incomplete)} incomplete cell(s) "
            f"(pending or leased); run the sweep to completion or pass "
            f"allow_incomplete=True to aggregate the finished prefix"
        )
    complete = [r for r in records if r.get("status") in ("ok", "failed")]
    return aggregate_campaign(
        complete,
        group_by=group_by or DEFAULT_GROUP_BY,
        metrics=metrics,
    )


def describe_queries() -> List[Tuple[str, str, Mapping[str, Any]]]:
    """(name, description, defaults) for every canned query, sorted."""
    return [
        (query.name, query.description, dict(query.defaults))
        for query in sorted(QUERIES.values(), key=lambda q: q.name)
    ]
