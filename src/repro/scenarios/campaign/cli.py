"""Command-line front end of the campaign subsystem.

Run the paper's collector-comparison grid end to end on a worker pool::

    python -m repro.campaign --workers 8 --store results/paper.jsonl

Resume after an interruption (completed cells are skipped)::

    python -m repro.campaign --workers 8 --store results/paper.jsonl

Run a custom sweep described in JSON (see
:func:`repro.scenarios.campaign.spec.spec_from_mapping` for the schema)::

    python -m repro.campaign --spec my_sweep.json --out results/

Network fault models and crash-recovery churn are grid axes of the JSON
schema: ``networks`` entries may carry a ``channel`` (e.g.
``{"kind": "gilbert-elliott", "loss_bad": 0.5}``), a ``partitions``
schedule and a ``fifo`` flag, and ``failure_counts`` entries may be
failure-model mappings (``{"model": "churn", "hazard_rate": 0.05}``).
Group the aggregate tables per fault regime with ``--group-by
network,collector,failures``.

``--out DIR`` writes the aggregate tables as ``<campaign>.csv`` /
``<campaign>.json`` next to the text rendering on stdout; ``--dry-run``
prints the cell count and the first cells without executing anything.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.scenarios.campaign.aggregate import aggregate_campaign
from repro.scenarios.campaign.executor import run_campaign
from repro.scenarios.campaign.spec import CampaignSpec, spec_from_mapping


def _load_spec(args: argparse.Namespace, parser: argparse.ArgumentParser) -> CampaignSpec:
    if args.spec:
        # The grid-shaping flags configure the *default* grid only; accepting
        # them alongside --spec would silently run a different study than the
        # user asked for.
        for flag, attr in (
            ("--processes", "processes"),
            ("--duration", "duration"),
            ("--seeds", "seeds"),
            ("--failures", "failures"),
        ):
            if getattr(args, attr) != parser.get_default(attr):
                parser.error(
                    f"{flag} shapes the default grid and cannot be combined "
                    f"with --spec (set it in the JSON spec instead)"
                )
        with open(args.spec, "r", encoding="utf-8") as handle:
            return spec_from_mapping(json.load(handle))
    from repro.scenarios.experiments import paper_campaign_spec

    return paper_campaign_spec(
        num_processes=args.processes,
        duration=args.duration,
        num_seeds=args.seeds,
        failure_counts=tuple(args.failures),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Expand, execute and aggregate an experiment campaign.",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="JSON campaign description (default: the paper's collector-comparison grid)",
    )
    parser.add_argument(
        "--processes", type=int, default=4,
        help="processes per simulation for the default grid (default: 4)",
    )
    parser.add_argument(
        "--duration", type=float, default=120.0,
        help="simulated seconds per cell for the default grid (default: 120)",
    )
    parser.add_argument(
        "--seeds", type=int, default=10,
        help="seeded repetitions per grid point for the default grid (default: 10)",
    )
    parser.add_argument(
        "--failures", type=int, nargs="+", default=[0, 2],
        help="failure levels (crashes per run) for the default grid (default: 0 2)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="pool processes; 1 runs serially (default: 1)",
    )
    parser.add_argument(
        "--store", default=None,
        help="JSONL result store; an existing store makes the run resume",
    )
    parser.add_argument(
        "--retry-failed", action="store_true",
        help="re-execute cells the store recorded as failed (transient causes)",
    )
    parser.add_argument(
        "--traces", default=None,
        help="directory for per-cell replayable trace artifacts "
             "(re-aggregate later with `python -m repro.traceio replay`)",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for the aggregate tables as CSV and JSON",
    )
    parser.add_argument(
        "--group-by", default="workload,collector,failures",
        help="comma-separated grouping axes (default: workload,collector,failures)",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the expansion without executing",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    spec = _load_spec(args, parser)
    cells = spec.cells()
    group_by = tuple(axis.strip() for axis in args.group_by.split(",") if axis.strip())
    if not group_by:
        parser.error("--group-by needs at least one axis")
    # Validate the axes before the sweep runs: a typo must not cost a
    # multi-minute grid whose results were never persisted.
    valid_axes = set(cells[0].params()) if cells else set()
    unknown = [axis for axis in group_by if axis not in valid_axes]
    if unknown:
        parser.error(
            f"unknown --group-by axis {', '.join(unknown)}; "
            f"available: {', '.join(sorted(valid_axes))}"
        )
    if args.dry_run:
        print(f"campaign {spec.name!r}: {len(cells)} cells")
        for cell in cells[:10]:
            print(
                f"  {cell.cell_id}  {cell.protocol} / {cell.collector} / "
                f"{cell.workload} / failures={cell.failures} / seed#{cell.seed_index}"
            )
        if len(cells) > 10:
            print(f"  ... and {len(cells) - 10} more")
        return 0

    def progress(done: int, total: int) -> None:
        if not args.quiet:
            print(f"\r{spec.name}: {done}/{total} cells", end="", file=sys.stderr, flush=True)

    started = time.perf_counter()
    run = run_campaign(
        spec,
        store_path=args.store,
        workers=args.workers,
        progress=progress,
        retry_failed=args.retry_failed,
        trace_dir=args.traces,
    )
    elapsed = time.perf_counter() - started
    if not args.quiet:
        print(file=sys.stderr)

    # Report failures before aggregating: if every cell failed, the per-cell
    # errors below are the only diagnostic the user gets.
    failed = run.failed_records
    if failed:
        print(
            f"WARNING: {len(failed)} cell(s) failed (recorded, excluded from "
            f"aggregation):",
            file=sys.stderr,
        )
        for record in failed[:10]:
            p = record["params"]
            print(
                f"  {record['cell_id']}  {p['collector']} / {p['workload']} / "
                f"failures={p['failures']} / seed#{p['seed_index']}: {record['error']}",
                file=sys.stderr,
            )
        if len(failed) > 10:
            print(f"  ... and {len(failed) - 10} more", file=sys.stderr)
    if len(failed) == run.cell_count:
        print("every cell failed; nothing to aggregate", file=sys.stderr)
        return 1

    summary = aggregate_campaign(run.records, group_by=group_by)
    for _, table in summary.tables_by(group_by[0]) if len(group_by) > 1 else [
        (None, summary.table())
    ]:
        print(table.render())
        print()
    print(
        f"{run.cell_count} cells ({run.executed} executed, {run.resumed} resumed "
        f"from store) in {elapsed:.1f}s with {max(args.workers, 1)} worker(s)"
    )
    if args.traces:
        print(f"replayable traces in {args.traces}")

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        csv_path = os.path.join(args.out, f"{spec.name}.csv")
        json_path = os.path.join(args.out, f"{spec.name}.json")
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(summary.to_csv())
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(summary.to_json())
        print(f"aggregates written to {csv_path} and {json_path}")
    return 0
