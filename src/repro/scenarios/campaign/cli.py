"""Command-line front end of the campaign subsystem.

Run the paper's collector-comparison grid end to end on a worker pool::

    python -m repro campaign --workers 8 --store results/paper.sqlite

Resume after an interruption (completed cells are skipped)::

    python -m repro campaign --workers 8 --store results/paper.sqlite

Run as one claim/lease worker of a distributed fabric — start any number of
these, on one machine or several pointed at a shared directory, against the
same SQL store; each cell is executed exactly once::

    python -m repro campaign --worker --store shared/sweep.sqlite \\
        --traces shared/traces

Shard deterministically for CI matrices (shard k of n runs the cells whose
expansion index is k mod n, into its own store; merge the shard stores with
``python -m repro query merge`` and reduce with ``repro query aggregate``)::

    python -m repro campaign --shard 0/2 --store shard0.sqlite

Run a custom sweep described in JSON (see
:func:`repro.scenarios.campaign.spec.spec_from_mapping` for the schema)::

    python -m repro campaign --spec my_sweep.json --out results/

Network fault models and crash-recovery churn are grid axes of the JSON
schema: ``networks`` entries may carry a ``channel`` (e.g.
``{"kind": "gilbert-elliott", "loss_bad": 0.5}``), a ``partitions``
schedule and a ``fifo`` flag, and ``failure_counts`` entries may be
failure-model mappings (``{"model": "churn", "hazard_rate": 0.05}``).
Group the aggregate tables per fault regime with ``--group-by
network,collector,failures``.

``--out DIR`` writes the aggregate tables as ``<campaign>.csv`` /
``<campaign>.json`` next to the text rendering on stdout; ``--dry-run``
prints the cell count and the first cells without executing anything.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Tuple

from repro.scenarios.campaign.aggregate import aggregate_campaign
from repro.scenarios.campaign.executor import run_campaign, run_worker
from repro.scenarios.campaign.spec import CampaignSpec, spec_from_mapping


def _parse_shard(value: str) -> Tuple[int, int]:
    try:
        shard_text, count_text = value.split("/", 1)
        shard, count = int(shard_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like K/N (e.g. 0/2), got {value!r}"
        ) from None
    if not 0 <= shard < count:
        raise argparse.ArgumentTypeError(
            f"shard must satisfy 0 <= K < N, got {value!r}"
        )
    return (shard, count)


def _load_spec(args: argparse.Namespace, parser: argparse.ArgumentParser) -> CampaignSpec:
    if args.spec:
        # The grid-shaping flags configure the *default* grid only; accepting
        # them alongside --spec would silently run a different study than the
        # user asked for.
        for flag, attr in (
            ("--processes", "processes"),
            ("--duration", "duration"),
            ("--seeds", "seeds"),
            ("--failures", "failures"),
        ):
            if getattr(args, attr) != parser.get_default(attr):
                parser.error(
                    f"{flag} shapes the default grid and cannot be combined "
                    f"with --spec (set it in the JSON spec instead)"
                )
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                return spec_from_mapping(json.load(handle))
        except (OSError, ValueError) as exc:
            parser.error(f"--spec {args.spec}: {exc}")
    from repro.scenarios.experiments import paper_campaign_spec

    return paper_campaign_spec(
        num_processes=args.processes,
        duration=args.duration,
        num_seeds=args.seeds,
        failure_counts=tuple(args.failures),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Expand, execute and aggregate an experiment campaign.",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="JSON campaign description (default: the paper's collector-comparison grid)",
    )
    parser.add_argument(
        "--processes", type=int, default=4,
        help="processes per simulation for the default grid (default: 4)",
    )
    parser.add_argument(
        "--duration", type=float, default=120.0,
        help="simulated seconds per cell for the default grid (default: 120)",
    )
    parser.add_argument(
        "--seeds", type=int, default=10,
        help="seeded repetitions per grid point for the default grid (default: 10)",
    )
    parser.add_argument(
        "--failures", type=int, nargs="+", default=[0, 2],
        help="failure levels (crashes per run) for the default grid (default: 0 2)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="pool processes; 1 runs serially (default: 1)",
    )
    parser.add_argument(
        "--store", default=None,
        help="result store; .jsonl is the legacy line store, .sqlite the "
             "canonical SQL store.  An existing store makes the run resume",
    )
    parser.add_argument(
        "--retry-failed", action="store_true",
        help="re-execute cells the store recorded as failed (transient causes)",
    )
    parser.add_argument(
        "--shard", type=_parse_shard, default=None, metavar="K/N",
        help="run only the cells whose expansion index is K mod N "
             "(deterministic CI-matrix sharding)",
    )
    parser.add_argument(
        "--worker", action="store_true",
        help="run as one claim/lease fabric worker against --store (SQL "
             "store required); start any number of these on a shared store",
    )
    parser.add_argument(
        "--worker-id", default=None,
        help="worker identity for lease provenance (default: host:pid)",
    )
    parser.add_argument(
        "--lease", type=float, default=None, metavar="SECONDS",
        help="lease duration per claimed cell (worker mode; default 900). "
             "Must exceed the slowest cell's wall time",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="worker mode: poll until in-flight leases held by other "
             "workers resolve instead of exiting once nothing is claimable",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the aggregate as JSON on stdout instead of tables",
    )
    parser.add_argument(
        "--traces", default=None,
        help="directory for per-cell replayable trace artifacts "
             "(re-aggregate later with `python -m repro trace replay`)",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for the aggregate tables as CSV and JSON",
    )
    parser.add_argument(
        "--group-by", default="workload,collector,failures",
        help="comma-separated grouping axes (default: workload,collector,failures)",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the expansion without executing",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    spec = _load_spec(args, parser)
    cells = spec.cells()
    group_by = tuple(axis.strip() for axis in args.group_by.split(",") if axis.strip())
    if not group_by:
        parser.error("--group-by needs at least one axis")
    # Validate the axes before the sweep runs: a typo must not cost a
    # multi-minute grid whose results were never persisted.
    valid_axes = set(cells[0].params()) if cells else set()
    unknown = [axis for axis in group_by if axis not in valid_axes]
    if unknown:
        parser.error(
            f"unknown --group-by axis {', '.join(unknown)}; "
            f"available: {', '.join(sorted(valid_axes))}"
        )
    if args.dry_run:
        print(f"campaign {spec.name!r}: {len(cells)} cells")
        for cell in cells[:10]:
            print(
                f"  {cell.cell_id}  {cell.protocol} / {cell.collector} / "
                f"{cell.workload} / failures={cell.failures} / seed#{cell.seed_index}"
            )
        if len(cells) > 10:
            print(f"  ... and {len(cells) - 10} more")
        return 0

    def progress(done: int, total: int) -> None:
        if not args.quiet:
            print(f"\r{spec.name}: {done}/{total} cells", end="", file=sys.stderr, flush=True)

    if args.worker:
        if not args.store:
            parser.error("--worker needs --store (a shared SQL result store)")
        if args.store.endswith(".jsonl"):
            parser.error("--worker needs a SQL store (.sqlite), not JSONL")
        started = time.perf_counter()
        worker_run = run_worker(
            spec,
            args.store,
            worker=args.worker_id,
            lease_duration=args.lease if args.lease is not None else 900.0,
            trace_dir=args.traces,
            progress=progress,
            shard=args.shard,
            wait=args.wait,
        )
        elapsed = time.perf_counter() - started
        if not args.quiet:
            print(file=sys.stderr)
        print(
            f"worker {worker_run.worker}: {worker_run.executed} cell(s) executed "
            f"({worker_run.failed} failed, {worker_run.stale} stale) in "
            f"{elapsed:.1f}s; {worker_run.remaining} still in flight elsewhere"
        )
        print(
            f"reduce with: python -m repro query aggregate --store {args.store}"
        )
        return 1 if worker_run.failed else 0

    if args.lease is not None or args.wait or args.worker_id:
        parser.error("--lease/--wait/--worker-id only apply to --worker mode")

    started = time.perf_counter()
    run = run_campaign(
        spec,
        store_path=args.store,
        workers=args.workers,
        progress=progress,
        retry_failed=args.retry_failed,
        trace_dir=args.traces,
        shard=args.shard,
    )
    elapsed = time.perf_counter() - started
    if not args.quiet:
        print(file=sys.stderr)
    if run.executed == 0 and run.skipped:
        # The short-circuit path: everything was already in the store — no
        # pool was created and the store saw no writes.
        print(
            f"{run.skipped} cell(s) already complete — skipped "
            f"(store untouched)",
            file=sys.stderr,
        )

    # Report failures before aggregating: if every cell failed, the per-cell
    # errors below are the only diagnostic the user gets.
    failed = run.failed_records
    if failed:
        print(
            f"WARNING: {len(failed)} cell(s) failed (recorded, excluded from "
            f"aggregation):",
            file=sys.stderr,
        )
        for record in failed[:10]:
            p = record["params"]
            print(
                f"  {record['cell_id']}  {p['collector']} / {p['workload']} / "
                f"failures={p['failures']} / seed#{p['seed_index']}: {record['error']}",
                file=sys.stderr,
            )
        if len(failed) > 10:
            print(f"  ... and {len(failed) - 10} more", file=sys.stderr)
    if len(failed) == run.cell_count:
        print("every cell failed; nothing to aggregate", file=sys.stderr)
        return 1

    summary = aggregate_campaign(run.records, group_by=group_by)
    if args.json:
        print(summary.to_json())
    else:
        for _, table in summary.tables_by(group_by[0]) if len(group_by) > 1 else [
            (None, summary.table())
        ]:
            print(table.render())
            print()
    # In --json mode stdout carries only the JSON document; the run summary
    # moves to stderr so pipelines can parse the output directly.
    chatter = sys.stderr if args.json else sys.stdout
    print(
        f"{run.cell_count} cells ({run.executed} executed, {run.resumed} resumed "
        f"from store) in {elapsed:.1f}s with {max(args.workers, 1)} worker(s)",
        file=chatter,
    )
    if args.traces:
        print(f"replayable traces in {args.traces}", file=chatter)

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        csv_path = os.path.join(args.out, f"{spec.name}.csv")
        json_path = os.path.join(args.out, f"{spec.name}.json")
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(summary.to_csv())
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(summary.to_json())
        print(f"aggregates written to {csv_path} and {json_path}", file=chatter)
    return 0
