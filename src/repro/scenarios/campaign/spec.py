"""Campaign specifications: declarative grids and their expansion into cells.

A :class:`CampaignSpec` is a cross-product description of a study; expanding
it yields one :class:`CampaignCell` per grid point.  Cells are *declarative*
(names and scalar parameters, never live objects) so they are picklable for
pool execution and hashable for the result store.

Seed derivation.  A cell's identity — its ``cell_id`` — is a SHA-256 digest
of the canonical JSON encoding of its parameters.  The engine seed and the
failure-schedule seed are derived from that digest with distinct labels.
Consequences, by construction:

* the same grid point always runs with the same seeds, no matter where in
  the grid it sits, in which order cells execute, or on how many workers;
* two cells differing in any parameter (including the campaign ``base_seed``)
  get independent seed streams;
* a stored result can be matched back to its cell without re-running anything.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.gc.registry import collector_class, make_collector
from repro.membership import MembershipSpec
from repro.protocols.registry import protocol_class
from repro.simulation.failures import FailureModelSpec, FailureSchedule
from repro.simulation.network import NetworkConfig, network_config_from_mapping
from repro.simulation.runner import SimulationConfig
from repro.simulation.workloads import Workload, make_workload, workload_class
from repro.storage.stable import StableStorage

#: A failure axis entry: a bare crash count (the paper's regime) or a
#: declarative failure model (e.g. crash-recovery churn).
FailureAxisEntry = Union[int, FailureModelSpec]

#: Options are stored as sorted ``(key, value)`` tuples: hashable, picklable
#: and with a canonical order so equal option sets hash identically.
Options = Tuple[Tuple[str, Any], ...]

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _freeze_options(options: Optional[Mapping[str, Any]]) -> Options:
    if not options:
        return ()
    frozen = []
    for key, value in dict(options).items():
        if not isinstance(value, _SCALAR_TYPES):
            # Nested containers would break the hashability the frozen form
            # promises (and crash the duplicate-axis check with a bare
            # TypeError far from the offending entry).
            raise ValueError(
                f"option {key!r} must be a scalar, got {type(value).__name__}"
            )
        frozen.append((str(key), value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class CollectorSpec:
    """A garbage collector by name plus its construction options."""

    name: str
    options: Options = ()

    @classmethod
    def of(cls, name: str, options: Optional[Mapping[str, Any]] = None) -> "CollectorSpec":
        spec = cls(name, _freeze_options(options))
        # Fail fast on unknown names AND bad options: a typo'd option must
        # surface here, not as per-cell failure records mid-sweep.
        make_collector(name, 0, 2, StableStorage(0), **spec.options_dict())
        return spec

    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload generator by name plus its construction parameters."""

    name: str
    params: Options = ()

    @classmethod
    def of(cls, name: str, params: Optional[Mapping[str, Any]] = None) -> "WorkloadSpec":
        spec = cls(name, _freeze_options(params))
        spec.build()  # fail fast on unknown names and bad parameters
        return spec

    def build(self) -> Workload:
        return make_workload(self.name, **dict(self.params))


@dataclass(frozen=True)
class CampaignCell:
    """One grid point of a campaign: everything needed to reproduce one run."""

    campaign: str
    num_processes: int
    duration: float
    protocol: str
    collector: str
    collector_options: Options
    workload: str
    workload_params: Options
    failures: FailureAxisEntry
    network: NetworkConfig
    seed_index: int
    base_seed: int
    audit: str = "off"
    backend: str = "sim"
    membership: MembershipSpec = MembershipSpec()

    # ------------------------------------------------------------------
    # Identity and seed derivation
    # ------------------------------------------------------------------
    def params(self) -> Dict[str, Any]:
        """The canonical, JSON-able description of this cell.

        Fault models are part of the identity: a failure-model entry renders
        as its canonical label and the network as its full description
        (channel model, partitions, FIFO discipline), so two cells differing
        only in a fault model hash to different ``cell_id`` values — while a
        cell with the paper's defaults keeps its pre-fault-model identity.
        The execution backend follows the same rule: it appears (and hashes)
        only when it is not the default simulator, so every pre-existing
        sim cell keeps its ``cell_id``.
        """
        params = {
            "campaign": self.campaign,
            "num_processes": self.num_processes,
            "duration": self.duration,
            "protocol": self.protocol,
            "collector": self.collector,
            "collector_options": dict(self.collector_options),
            "workload": self.workload,
            "workload_params": dict(self.workload_params),
            "failures": (
                self.failures
                if isinstance(self.failures, int)
                else self.failures.label()
            ),
            "network": self.network.describe(),
            "seed_index": self.seed_index,
            "base_seed": self.base_seed,
            "audit": self.audit,
        }
        if self.backend != "sim":
            params["backend"] = self.backend
        if not self.membership.is_static():
            # Same identity rule as the backend: only dynamic membership
            # enters the hash, so static cells keep their historical ids.
            params["membership"] = self.membership.label()
        return params

    @property
    def cell_id(self) -> str:
        """Stable identity: a digest of the canonical parameter encoding."""
        canonical = json.dumps(self.params(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def _derive(self, label: str) -> int:
        digest = hashlib.sha256(f"{self.cell_id}:{label}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def seed(self) -> int:
        """The engine seed of this cell (derived, execution-order independent)."""
        return self._derive("engine")

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def failure_schedule(self) -> FailureSchedule:
        """The crash schedule of this cell, derived from the cell identity."""
        if isinstance(self.failures, FailureModelSpec):
            return self.failures.schedule(
                num_processes=self.num_processes,
                duration=self.duration,
                rng=random.Random(self._derive("failures")),
            )
        if not self.failures:
            return FailureSchedule.none()
        return FailureSchedule.random(
            num_processes=self.num_processes,
            duration=self.duration,
            count=self.failures,
            rng=random.Random(self._derive("failures")),
        )

    def config(self) -> SimulationConfig:
        """Materialise the cell into a runnable :class:`SimulationConfig`."""
        return SimulationConfig(
            num_processes=self.num_processes,
            duration=self.duration,
            workload=make_workload(self.workload, **dict(self.workload_params)),
            protocol=self.protocol,
            collector=self.collector,
            collector_options=dict(self.collector_options),
            network=self.network,
            failures=self.failure_schedule(),
            seed=self.seed,
            audit=self.audit,
            keep_final_ccp=False,
            backend=self.backend,
            membership=self.membership.schedule(),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: the cross product of every axis below."""

    name: str
    num_processes: int = 4
    duration: float = 120.0
    protocols: Tuple[str, ...] = ("fdas",)
    collectors: Tuple[CollectorSpec, ...] = (CollectorSpec("rdt-lgc"),)
    workloads: Tuple[WorkloadSpec, ...] = (WorkloadSpec("uniform-random"),)
    #: Crash counts (the paper's regime) and/or declarative failure models
    #: such as churn — both are grid axis entries, hashed into cell ids.
    failure_counts: Tuple[FailureAxisEntry, ...] = (0,)
    networks: Tuple[NetworkConfig, ...] = (NetworkConfig(),)
    seeds: Tuple[int, ...] = (0,)
    base_seed: int = 0
    audit: str = "off"
    #: Execution backends: ``"sim"`` and/or ``"live"`` — a grid axis like
    #: any other, so one spec can run the same cells simulated and on real
    #: processes and compare their metrics side by side.
    backends: Tuple[str, ...] = ("sim",)
    #: Membership schedules: the static default and/or dynamic join/leave
    #: models.  A grid axis, so one spec can compare the same cells under
    #: fixed and churning membership.
    memberships: Tuple[MembershipSpec, ...] = (MembershipSpec(),)

    def __post_init__(self) -> None:
        for axis, label in (
            (self.protocols, "protocols"),
            (self.collectors, "collectors"),
            (self.workloads, "workloads"),
            (self.failure_counts, "failure_counts"),
            (self.networks, "networks"),
            (self.seeds, "seeds"),
            (self.backends, "backends"),
            (self.memberships, "memberships"),
        ):
            if not axis:
                raise ValueError(f"a campaign needs at least one entry on the {label} axis")
            if len(set(axis)) != len(axis):
                # Duplicate entries expand to identical cells (same cell_id),
                # which would execute twice and double-count in aggregation.
                raise ValueError(f"duplicate entries on the {label} axis")
        for protocol in self.protocols:
            protocol_class(protocol)  # fail fast on unknown names
        for collector in self.collectors:
            collector_class(collector.name)
        for workload in self.workloads:
            workload_class(workload.name)
        for entry in self.failure_counts:
            if isinstance(entry, int):
                if entry < 0:
                    raise ValueError("failure counts must be non-negative")
            elif not isinstance(entry, FailureModelSpec):
                raise ValueError(
                    "failure axis entries must be crash counts or FailureModelSpec"
                )
        if self.audit not in ("off", "safety", "full"):
            raise ValueError("audit must be one of 'off', 'safety', 'full'")
        for backend in self.backends:
            if backend not in ("sim", "live"):
                raise ValueError("backends entries must be 'sim' or 'live'")
        for membership in self.memberships:
            if not isinstance(membership, MembershipSpec):
                raise ValueError("memberships entries must be MembershipSpec")
            # Fail fast on schedules the grid cannot run: capacity overflow
            # and (dynamic membership being simulator-only) live backends.
            membership.schedule().validate_for(self.num_processes)
            if not membership.is_static():
                if "live" in self.backends:
                    raise ValueError(
                        "dynamic membership runs on the 'sim' backend only; "
                        "drop 'live' from backends or the dynamic membership entry"
                    )
                for time, pid in membership.joins + membership.leaves:
                    if time >= self.duration:
                        raise ValueError(
                            f"membership event for process {pid} at {time} falls "
                            f"outside the campaign duration {self.duration}"
                        )

    @property
    def cell_count(self) -> int:
        """Number of cells the grid expands to."""
        return (
            len(self.protocols)
            * len(self.collectors)
            * len(self.workloads)
            * len(self.failure_counts)
            * len(self.networks)
            * len(self.seeds)
            * len(self.backends)
            * len(self.memberships)
        )

    def cells(self) -> List[CampaignCell]:
        """Expand the grid.  The order is deterministic (axis-major), but a
        cell's identity and seeds do not depend on its position in it."""
        expanded: List[CampaignCell] = []
        for (
            protocol, collector, workload, failures,
            network, seed_index, backend, membership,
        ) in itertools.product(
            self.protocols,
            self.collectors,
            self.workloads,
            self.failure_counts,
            self.networks,
            self.seeds,
            self.backends,
            self.memberships,
        ):
            expanded.append(
                CampaignCell(
                    campaign=self.name,
                    num_processes=self.num_processes,
                    duration=self.duration,
                    protocol=protocol,
                    collector=collector.name,
                    collector_options=collector.options,
                    workload=workload.name,
                    workload_params=workload.params,
                    failures=failures,
                    network=network,
                    seed_index=seed_index,
                    base_seed=self.base_seed,
                    audit=self.audit,
                    backend=backend,
                    membership=membership,
                )
            )
        return expanded


def spec_from_mapping(document: Mapping[str, Any]) -> CampaignSpec:
    """Build a :class:`CampaignSpec` from a JSON-style mapping.

    Axis entries may be bare names (``"rdt-lgc"``) or mappings with a ``name``
    and ``options`` / ``params``; ``seeds`` may be a list of seed indices or an
    integer count (expanded to ``range(count)``); ``networks`` entries are
    mappings of :class:`NetworkConfig` fields, optionally carrying a fault
    model (``"channel": {"kind": "gilbert-elliott", ...}``), a partition
    schedule (``"partitions": [{"start", "end", "groups"}, ...]``) and a
    ``"fifo"`` discipline flag; ``failure_counts`` entries are crash counts
    or failure-model mappings (``{"model": "churn", "hazard_rate": 0.05}``).
    Unknown keys are rejected — a typoed axis name must not silently run a
    different study.
    """
    known_keys = {
        "name", "num_processes", "duration", "protocols", "collectors",
        "workloads", "failure_counts", "networks", "seeds", "base_seed", "audit",
        "backends", "memberships",
    }
    unknown = sorted(set(document) - known_keys)
    if unknown:
        raise ValueError(
            f"unknown campaign spec keys: {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known_keys))}"
        )
    for axis in (
        "protocols", "collectors", "workloads", "failure_counts", "networks",
        "backends", "memberships",
    ):
        if isinstance(document.get(axis), (str, bytes)):
            # tuple("fdas") would expand to ('f','d','a','s') and produce
            # baffling unknown-name errors for each character.
            raise ValueError(f"the {axis} axis must be a list, not a bare string")

    def _collector(entry: Any) -> CollectorSpec:
        if isinstance(entry, str):
            return CollectorSpec.of(entry)
        return CollectorSpec.of(entry["name"], entry.get("options"))

    def _workload(entry: Any) -> WorkloadSpec:
        if isinstance(entry, str):
            return WorkloadSpec.of(entry)
        return WorkloadSpec.of(entry["name"], entry.get("params"))

    def _failures(entry: Any) -> FailureAxisEntry:
        if isinstance(entry, Mapping):
            params = dict(entry)
            model = params.pop("model", None)
            if model is None:
                raise ValueError(
                    "failure-model entries need a 'model' key "
                    "(e.g. {'model': 'churn', 'hazard_rate': 0.05})"
                )
            return FailureModelSpec.of(str(model), params)
        return int(entry)

    seeds = document.get("seeds", 1)
    if isinstance(seeds, (str, bytes)):
        # "10" would otherwise be iterated per character into seeds (1, 0).
        raise ValueError("seeds must be an integer count or a list of seed indices")
    if isinstance(seeds, int):
        seeds = tuple(range(seeds))
    else:
        seeds = tuple(int(s) for s in seeds)
    networks = tuple(
        network_config_from_mapping(entry) for entry in document.get("networks", ({},))
    )

    def _membership(entry: Any) -> MembershipSpec:
        if entry in (None, "static"):
            return MembershipSpec.static()
        if not isinstance(entry, Mapping):
            raise ValueError(
                "memberships entries must be 'static' or mappings like "
                "{'joins': [[20.0, 4]], 'leaves': [[60.0, 1]]}"
            )
        return MembershipSpec.from_mapping(entry)

    memberships = tuple(
        _membership(entry) for entry in document.get("memberships", ("static",))
    )
    return CampaignSpec(
        name=str(document["name"]),
        num_processes=int(document.get("num_processes", 4)),
        duration=float(document.get("duration", 120.0)),
        protocols=tuple(document.get("protocols", ("fdas",))),
        collectors=tuple(_collector(c) for c in document.get("collectors", ("rdt-lgc",))),
        workloads=tuple(_workload(w) for w in document.get("workloads", ("uniform-random",))),
        failure_counts=tuple(_failures(f) for f in document.get("failure_counts", (0,))),
        networks=networks,
        seeds=seeds,
        base_seed=int(document.get("base_seed", 0)),
        audit=str(document.get("audit", "off")),
        backends=tuple(document.get("backends", ("sim",))),
        memberships=memberships,
    )
