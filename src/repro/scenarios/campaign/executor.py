"""Campaign execution: serial or on a ``multiprocessing`` pool.

Every cell is fully self-describing and self-seeded (see
:mod:`repro.scenarios.campaign.spec`), so execution strategy is pure
mechanics: the same spec produces bit-identical per-cell metrics whether it
runs on one worker or sixteen, and a sweep interrupted at any point resumes
from its JSONL store without re-executing completed cells.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.scenarios.campaign.spec import CampaignCell, CampaignSpec
from repro.scenarios.campaign.sqlstore import (
    DEFAULT_LEASE,
    SQLResultStore,
    open_store,
)
from repro.simulation.runner import SimulationResult, run_simulation

#: The scalar metrics persisted per cell, in extraction order.  The values
#: come from :meth:`repro.simulation.runner.SimulationResult.metrics_dict`
#: (the canonical extraction, shared with trace footers); everything
#: downstream (store, aggregation, tables) works from these names.
CELL_METRICS: Tuple[str, ...] = (
    "checkpoints",
    "basic",
    "forced",
    "messages",
    "control",
    "collected",
    "final_retained",
    "max_per_process",
    "peak_retained",
    "collection_ratio",
    "recoveries",
    "duplicated",
    "partition_blocked",
)


def cell_metrics(result: SimulationResult) -> Dict[str, float]:
    """Extract the persisted scalar metrics from one run."""
    return result.metrics_dict()


def trace_filename(cell_id: str) -> str:
    """The per-cell trace artifact name used by traced sweeps."""
    return f"{cell_id}.trace.jsonl"


def execute_cell(
    cell: CampaignCell,
    trace_dir: Optional[str] = None,
    cell_index: Optional[int] = None,
    worker: Optional[str] = None,
    attempt: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one cell and return its store record (module-level: pool-picklable).

    A cell whose simulation raises is a *result*, not a sweep abort: the
    paper's own grid contains such points (the time-based collector is unsafe
    under crash injection — it can discard a checkpoint the recovery line
    still needs, and recovery then fails).  Failed cells are recorded with
    ``status: "failed"`` and the error, persist like any other cell (the
    simulation is deterministic, so re-running them cannot succeed — see
    ``run_campaign(retry_failed=True)`` for transient causes), and are
    reported separately by the aggregation layer.

    With ``trace_dir`` the cell's run streams a replayable
    :mod:`repro.traceio` artifact to ``<trace_dir>/<cell_id>.trace.jsonl``;
    the trace header carries the cell identity, canonical parameters and
    grid-expansion index — plus, for cells executed under a lease by a
    fabric worker, the worker identity and attempt number — so the sweep can
    later be re-aggregated (or re-audited event by event) from the artifacts
    alone.  Trace persistence never changes the simulation itself: cell
    identity and seeds are derived from the cell parameters only, and the
    shard/lease provenance lives outside the identity fields.
    """
    config = cell.config()
    record: Dict[str, Any] = {"cell_id": cell.cell_id, "params": cell.params()}
    if trace_dir is not None:
        from repro.traceio.format import RunProvenance

        provenance = RunProvenance.campaign_cell(
            campaign=cell.campaign,
            cell_id=cell.cell_id,
            params=cell.params(),
            cell_index=cell_index,
            worker=worker,
            attempt=attempt,
        )
        config = dataclasses.replace(
            config,
            trace_path=os.path.join(trace_dir, trace_filename(cell.cell_id)),
            trace_meta=provenance.to_meta(),
        )
        record["trace"] = trace_filename(cell.cell_id)
    try:
        result = run_simulation(config)
    except Exception as exc:  # noqa: BLE001 - the record carries the error
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
        return record
    record["status"] = "ok"
    record["metrics"] = cell_metrics(result)
    return record


def _execute_cell_args(args: Tuple[CampaignCell, Optional[str], int]) -> Dict[str, Any]:
    """Pool adapter: one-argument wrapper around :func:`execute_cell`.

    Untraced sweeps call ``execute_cell(cell)`` exactly as before — the
    single-argument seam tests and custom drivers hook into.
    """
    cell, trace_dir, cell_index = args
    if trace_dir is None:
        return execute_cell(cell)
    return execute_cell(cell, trace_dir=trace_dir, cell_index=cell_index)


@dataclass
class CampaignRun:
    """The outcome of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    records: List[Dict[str, Any]]
    executed: int
    resumed: int

    @property
    def cell_count(self) -> int:
        """Total cells of the campaign (executed + resumed)."""
        return len(self.records)

    @property
    def skipped(self) -> int:
        """Cells *not* executed because the store already held their result.

        The complement of ``executed``; a fully warm store short-circuits
        the whole run (``skipped == cell_count``) without creating a pool or
        touching the store.
        """
        return self.resumed

    @property
    def failed_records(self) -> List[Dict[str, Any]]:
        """The cells whose simulation raised (recorded, never re-run)."""
        return [r for r in self.records if r.get("status") == "failed"]


def run_campaign(
    spec: CampaignSpec,
    *,
    store_path: Optional[str] = None,
    workers: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    retry_failed: bool = False,
    trace_dir: Optional[str] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> CampaignRun:
    """Execute every cell of ``spec`` and return the full result set.

    ``store_path`` — when given, completed cells stream to a result store
    and cells already in the store are *not* re-executed (resume semantics).
    The path's extension picks the backend (see
    :func:`~repro.scenarios.campaign.sqlstore.open_store`): ``.jsonl`` is
    the legacy line store, anything else the canonical SQL store.
    ``workers`` — number of pool processes; ``<= 1`` runs serially
    in-process.  ``progress(done, total)`` is invoked after every completed
    cell.  ``retry_failed`` — re-execute cells the store recorded as failed:
    the simulation is deterministic, so by default a failure is final, but a
    transient cause (out-of-memory worker, a since-fixed bug) warrants a
    retry pass.  ``trace_dir`` — when given, every *executed* cell
    additionally persists a replayable :mod:`repro.traceio` artifact there
    (cells resumed from the store keep whatever trace their original
    execution left).  ``shard=(k, n)`` restricts the run to the cells whose
    expansion index is ``k`` modulo ``n`` — the CI-matrix spelling of
    distribution; the claim/lease spelling is :func:`run_worker`.

    A run whose cells are all already complete short-circuits: no worker
    pool is created, no trace directory materialises and the store sees no
    writes — the records are simply read back, and the summary reports them
    as ``skipped``.

    The returned records are in grid-expansion order regardless of the order
    cells actually completed in, so downstream aggregation is deterministic.
    """
    expanded = spec.cells()
    cells = list(enumerate(expanded))
    if shard is not None:
        if not (0 <= shard[0] < shard[1]):
            raise ValueError(f"shard must be (k, n) with 0 <= k < n, got {shard}")
        cells = [(index, cell) for index, cell in cells if index % shard[1] == shard[0]]
    store = open_store(store_path) if store_path else None
    completed: Dict[str, Dict[str, Any]] = store.load() if store else {}
    if retry_failed:
        completed = {
            cell_id: record
            for cell_id, record in completed.items()
            if record.get("status", "ok") == "ok"
        }
        if isinstance(store, SQLResultStore):
            store.reset_failed()
    pending = [
        (cell, trace_dir, index)
        for index, cell in cells
        if cell.cell_id not in completed
    ]
    done = len(cells) - len(pending)
    if not pending:
        # Short-circuit: everything is already in the store.  Deliberately
        # *before* pool creation and trace-directory setup so a warm re-run
        # has no side effects whatsoever.
        if progress and done:
            progress(done, len(cells))
        return CampaignRun(
            spec=spec,
            records=[completed[cell.cell_id] for _, cell in cells],
            executed=0,
            resumed=len(cells),
        )
    if isinstance(store, SQLResultStore):
        # Register the grid (with expansion indices) before executing, so
        # records read back from the store keep grid order — the byte-identity
        # invariant.  After the short-circuit on purpose: a warm re-run must
        # not touch the store at all.
        store.enqueue(expanded, shard=shard)
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    if progress and done:
        progress(done, len(cells))

    def _finish(record: Dict[str, Any]) -> None:
        nonlocal done
        completed[record["cell_id"]] = record
        if store is not None:
            store.append(record)
        done += 1
        if progress:
            progress(done, len(cells))

    if workers <= 1 or len(pending) <= 1:
        for args in pending:
            _finish(_execute_cell_args(args))
    else:
        with multiprocessing.Pool(processes=min(workers, len(pending))) as pool:
            for record in pool.imap_unordered(_execute_cell_args, pending):
                _finish(record)
    return CampaignRun(
        spec=spec,
        records=[completed[cell.cell_id] for _, cell in cells],
        executed=len(pending),
        resumed=len(cells) - len(pending),
    )


# ----------------------------------------------------------------------
# Claim/lease workers (the distributed fabric)
# ----------------------------------------------------------------------
def default_worker_id() -> str:
    """The default worker identity: ``host:pid``."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass
class WorkerRun:
    """The outcome of one :func:`run_worker` claim loop."""

    worker: str
    executed: int
    failed: int
    stale: int
    remaining: int

    @property
    def drained(self) -> bool:
        """True if the queue had nothing claimable or in flight on exit."""
        return self.remaining == 0


def run_worker(
    spec: CampaignSpec,
    store_path: str,
    *,
    worker: Optional[str] = None,
    lease_duration: float = DEFAULT_LEASE,
    batch_size: int = 1,
    trace_dir: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    shard: Optional[Tuple[int, int]] = None,
    wait: bool = False,
    poll_interval: float = 0.5,
    max_cells: Optional[int] = None,
) -> WorkerRun:
    """Claim-and-execute cells of ``spec`` until the queue drains.

    The distributed spelling of :func:`run_campaign`: any number of worker
    processes — on one machine or several pointed at a shared directory —
    run this loop against the same SQL store.  Each iteration atomically
    leases up to ``batch_size`` claimable cells (pending, or expired leases
    left behind by killed workers), executes them, and pushes the result
    rows (plus trace artifacts when ``trace_dir`` is given, their headers
    carrying the worker/attempt lease provenance).  Because cells are
    content-addressed and self-seeded, *which* worker runs a cell never
    changes its result row.

    Exit condition: nothing claimable.  With ``wait=False`` (default) the
    worker then returns even if other workers still hold live leases — the
    reducer checks completeness.  With ``wait=True`` it polls every
    ``poll_interval`` seconds until in-flight leases resolve, so the last
    surviving worker also finishes cells reclaimed from killed peers.

    ``lease_duration`` must comfortably exceed the slowest cell's wall time;
    an in-flight lease that expires lets another worker re-run the cell
    (correct but wasteful), and the late completion is refused as stale.
    """
    store = open_store(store_path)
    if not isinstance(store, SQLResultStore):
        raise ValueError(
            "claim-based workers need a SQL result store "
            "(.sqlite/.sqlite3/.db path), not a JSONL store"
        )
    identity = worker if worker is not None else default_worker_id()
    cells = spec.cells()
    store.enqueue(cells, shard=shard)
    by_id = {cell.cell_id: (index, cell) for index, cell in enumerate(cells)}
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    total = len(cells) if shard is None else len(
        [i for i in range(len(cells)) if i % shard[1] == shard[0]]
    )
    executed = failed = stale = 0
    while True:
        claims = store.claim(
            worker=identity,
            limit=batch_size,
            lease_duration=lease_duration,
            shard=shard,
        )
        if not claims:
            claimable, inflight = store.remaining()
            if claimable:
                continue  # raced another worker; try again
            if inflight and wait:
                time.sleep(poll_interval)
                continue
            return WorkerRun(
                worker=identity,
                executed=executed,
                failed=failed,
                stale=stale,
                remaining=inflight,
            )
        for claim in claims:
            if claim.cell_id not in by_id:
                raise ValueError(
                    f"store {store_path!r} holds cell {claim.cell_id} that is "
                    f"not in campaign {spec.name!r} — one store per campaign"
                )
            index, cell = by_id[claim.cell_id]
            record = execute_cell(
                cell,
                trace_dir=trace_dir,
                cell_index=index,
                worker=identity,
                attempt=claim.attempt,
            )
            if store.complete(record, worker=identity, attempt=claim.attempt):
                executed += 1
                if record.get("status") == "failed":
                    failed += 1
            else:
                stale += 1
            if progress:
                counts = store.status_counts()
                progress(counts.get("ok", 0) + counts.get("failed", 0), total)
            if max_cells is not None and executed >= max_cells:
                _, inflight = store.remaining()
                return WorkerRun(
                    worker=identity,
                    executed=executed,
                    failed=failed,
                    stale=stale,
                    remaining=inflight,
                )
