"""Campaign execution: serial or on a ``multiprocessing`` pool.

Every cell is fully self-describing and self-seeded (see
:mod:`repro.scenarios.campaign.spec`), so execution strategy is pure
mechanics: the same spec produces bit-identical per-cell metrics whether it
runs on one worker or sixteen, and a sweep interrupted at any point resumes
from its JSONL store without re-executing completed cells.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.scenarios.campaign.spec import CampaignCell, CampaignSpec
from repro.scenarios.campaign.store import CampaignStore
from repro.simulation.runner import SimulationResult, run_simulation

#: The scalar metrics persisted per cell, in extraction order.  The values
#: come from :meth:`repro.simulation.runner.SimulationResult.metrics_dict`
#: (the canonical extraction, shared with trace footers); everything
#: downstream (store, aggregation, tables) works from these names.
CELL_METRICS: Tuple[str, ...] = (
    "checkpoints",
    "basic",
    "forced",
    "messages",
    "control",
    "collected",
    "final_retained",
    "max_per_process",
    "peak_retained",
    "collection_ratio",
    "recoveries",
    "duplicated",
    "partition_blocked",
)


def cell_metrics(result: SimulationResult) -> Dict[str, float]:
    """Extract the persisted scalar metrics from one run."""
    return result.metrics_dict()


def trace_filename(cell_id: str) -> str:
    """The per-cell trace artifact name used by traced sweeps."""
    return f"{cell_id}.trace.jsonl"


def execute_cell(
    cell: CampaignCell,
    trace_dir: Optional[str] = None,
    cell_index: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one cell and return its store record (module-level: pool-picklable).

    A cell whose simulation raises is a *result*, not a sweep abort: the
    paper's own grid contains such points (the time-based collector is unsafe
    under crash injection — it can discard a checkpoint the recovery line
    still needs, and recovery then fails).  Failed cells are recorded with
    ``status: "failed"`` and the error, persist like any other cell (the
    simulation is deterministic, so re-running them cannot succeed — see
    ``run_campaign(retry_failed=True)`` for transient causes), and are
    reported separately by the aggregation layer.

    With ``trace_dir`` the cell's run streams a replayable
    :mod:`repro.traceio` artifact to ``<trace_dir>/<cell_id>.trace.jsonl``;
    the trace header carries the cell identity, canonical parameters and
    grid-expansion index, so the sweep can later be re-aggregated (or
    re-audited event by event) from the artifacts alone.  Trace persistence
    never changes the simulation itself: cell identity and seeds are derived
    from the cell parameters only.
    """
    config = cell.config()
    record: Dict[str, Any] = {"cell_id": cell.cell_id, "params": cell.params()}
    if trace_dir is not None:
        from repro.traceio.format import RunProvenance

        provenance = RunProvenance.campaign_cell(
            campaign=cell.campaign,
            cell_id=cell.cell_id,
            params=cell.params(),
            cell_index=cell_index,
        )
        config = dataclasses.replace(
            config,
            trace_path=os.path.join(trace_dir, trace_filename(cell.cell_id)),
            trace_meta=provenance.to_meta(),
        )
        record["trace"] = trace_filename(cell.cell_id)
    try:
        result = run_simulation(config)
    except Exception as exc:  # noqa: BLE001 - the record carries the error
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
        return record
    record["status"] = "ok"
    record["metrics"] = cell_metrics(result)
    return record


def _execute_cell_args(args: Tuple[CampaignCell, Optional[str], int]) -> Dict[str, Any]:
    """Pool adapter: one-argument wrapper around :func:`execute_cell`.

    Untraced sweeps call ``execute_cell(cell)`` exactly as before — the
    single-argument seam tests and custom drivers hook into.
    """
    cell, trace_dir, cell_index = args
    if trace_dir is None:
        return execute_cell(cell)
    return execute_cell(cell, trace_dir=trace_dir, cell_index=cell_index)


@dataclass
class CampaignRun:
    """The outcome of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    records: List[Dict[str, Any]]
    executed: int
    resumed: int

    @property
    def cell_count(self) -> int:
        """Total cells of the campaign (executed + resumed)."""
        return len(self.records)

    @property
    def failed_records(self) -> List[Dict[str, Any]]:
        """The cells whose simulation raised (recorded, never re-run)."""
        return [r for r in self.records if r.get("status") == "failed"]


def run_campaign(
    spec: CampaignSpec,
    *,
    store_path: Optional[str] = None,
    workers: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    retry_failed: bool = False,
    trace_dir: Optional[str] = None,
) -> CampaignRun:
    """Execute every cell of ``spec`` and return the full result set.

    ``store_path`` — when given, completed cells stream to a JSONL
    :class:`CampaignStore`; cells already in the store are *not* re-executed
    (resume semantics).  ``workers`` — number of pool processes; ``<= 1``
    runs serially in-process.  ``progress(done, total)`` is invoked after
    every completed cell.  ``retry_failed`` — re-execute cells the store
    recorded as failed: the simulation is deterministic, so by default a
    failure is final, but a transient cause (out-of-memory worker, a since-
    fixed bug) warrants a retry pass.  ``trace_dir`` — when given, every
    *executed* cell additionally persists a replayable :mod:`repro.traceio`
    artifact there (cells resumed from the store keep whatever trace their
    original execution left).

    The returned records are in grid-expansion order regardless of the order
    cells actually completed in, so downstream aggregation is deterministic.
    """
    cells = spec.cells()
    store = CampaignStore(store_path) if store_path else None
    completed: Dict[str, Dict[str, Any]] = store.load() if store else {}
    if retry_failed:
        completed = {
            cell_id: record
            for cell_id, record in completed.items()
            if record.get("status", "ok") == "ok"
        }
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    pending = [
        (cell, trace_dir, index)
        for index, cell in enumerate(cells)
        if cell.cell_id not in completed
    ]
    done = len(cells) - len(pending)
    if progress and done:
        progress(done, len(cells))

    def _finish(record: Dict[str, Any]) -> None:
        nonlocal done
        completed[record["cell_id"]] = record
        if store is not None:
            store.append(record)
        done += 1
        if progress:
            progress(done, len(cells))

    if workers <= 1 or len(pending) <= 1:
        for args in pending:
            _finish(_execute_cell_args(args))
    else:
        with multiprocessing.Pool(processes=min(workers, len(pending))) as pool:
            for record in pool.imap_unordered(_execute_cell_args, pending):
                _finish(record)
    return CampaignRun(
        spec=spec,
        records=[completed[cell.cell_id] for cell in cells],
        executed=len(pending),
        resumed=len(cells) - len(pending),
    )
