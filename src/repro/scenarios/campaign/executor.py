"""Campaign execution: serial or on a ``multiprocessing`` pool.

Every cell is fully self-describing and self-seeded (see
:mod:`repro.scenarios.campaign.spec`), so execution strategy is pure
mechanics: the same spec produces bit-identical per-cell metrics whether it
runs on one worker or sixteen, and a sweep interrupted at any point resumes
from its JSONL store without re-executing completed cells.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.scenarios.campaign.spec import CampaignCell, CampaignSpec
from repro.scenarios.campaign.store import CampaignStore
from repro.simulation.runner import SimulationResult, SimulationRunner

#: The scalar metrics persisted per cell, extracted from a
#: :class:`SimulationResult`.  Everything downstream (store, aggregation,
#: tables) works from these names.
CELL_METRICS: Dict[str, Callable[[SimulationResult], float]] = {
    "checkpoints": lambda r: r.total_checkpoints,
    "basic": lambda r: r.basic_checkpoints,
    "forced": lambda r: r.forced_checkpoints,
    "messages": lambda r: r.messages_sent,
    "control": lambda r: r.control_messages,
    "collected": lambda r: r.total_collected,
    "final_retained": lambda r: r.total_retained_final,
    "max_per_process": lambda r: r.max_retained_any_process,
    "peak_retained": lambda r: r.peak_total_retained,
    "collection_ratio": lambda r: r.collection_ratio,
    "recoveries": lambda r: len(r.recoveries),
}


def cell_metrics(result: SimulationResult) -> Dict[str, float]:
    """Extract the persisted scalar metrics from one run."""
    return {name: extractor(result) for name, extractor in CELL_METRICS.items()}


def execute_cell(cell: CampaignCell) -> Dict[str, Any]:
    """Run one cell and return its store record (module-level: pool-picklable).

    A cell whose simulation raises is a *result*, not a sweep abort: the
    paper's own grid contains such points (the time-based collector is unsafe
    under crash injection — it can discard a checkpoint the recovery line
    still needs, and recovery then fails).  Failed cells are recorded with
    ``status: "failed"`` and the error, persist like any other cell (the
    simulation is deterministic, so re-running them cannot succeed — see
    ``run_campaign(retry_failed=True)`` for transient causes), and are
    reported separately by the aggregation layer.
    """
    try:
        result = SimulationRunner(cell.config()).run()
    except Exception as exc:  # noqa: BLE001 - the record carries the error
        return {
            "cell_id": cell.cell_id,
            "params": cell.params(),
            "status": "failed",
            "error": f"{type(exc).__name__}: {exc}",
        }
    return {
        "cell_id": cell.cell_id,
        "params": cell.params(),
        "status": "ok",
        "metrics": cell_metrics(result),
    }


@dataclass
class CampaignRun:
    """The outcome of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    records: List[Dict[str, Any]]
    executed: int
    resumed: int

    @property
    def cell_count(self) -> int:
        """Total cells of the campaign (executed + resumed)."""
        return len(self.records)

    @property
    def failed_records(self) -> List[Dict[str, Any]]:
        """The cells whose simulation raised (recorded, never re-run)."""
        return [r for r in self.records if r.get("status") == "failed"]


def run_campaign(
    spec: CampaignSpec,
    *,
    store_path: Optional[str] = None,
    workers: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    retry_failed: bool = False,
) -> CampaignRun:
    """Execute every cell of ``spec`` and return the full result set.

    ``store_path`` — when given, completed cells stream to a JSONL
    :class:`CampaignStore`; cells already in the store are *not* re-executed
    (resume semantics).  ``workers`` — number of pool processes; ``<= 1``
    runs serially in-process.  ``progress(done, total)`` is invoked after
    every completed cell.  ``retry_failed`` — re-execute cells the store
    recorded as failed: the simulation is deterministic, so by default a
    failure is final, but a transient cause (out-of-memory worker, a since-
    fixed bug) warrants a retry pass.

    The returned records are in grid-expansion order regardless of the order
    cells actually completed in, so downstream aggregation is deterministic.
    """
    cells = spec.cells()
    store = CampaignStore(store_path) if store_path else None
    completed: Dict[str, Dict[str, Any]] = store.load() if store else {}
    if retry_failed:
        completed = {
            cell_id: record
            for cell_id, record in completed.items()
            if record.get("status", "ok") == "ok"
        }
    pending = [cell for cell in cells if cell.cell_id not in completed]
    done = len(cells) - len(pending)
    if progress and done:
        progress(done, len(cells))

    def _finish(record: Dict[str, Any]) -> None:
        nonlocal done
        completed[record["cell_id"]] = record
        if store is not None:
            store.append(record)
        done += 1
        if progress:
            progress(done, len(cells))

    if workers <= 1 or len(pending) <= 1:
        for cell in pending:
            _finish(execute_cell(cell))
    else:
        with multiprocessing.Pool(processes=min(workers, len(pending))) as pool:
            for record in pool.imap_unordered(execute_cell, pending):
                _finish(record)
    return CampaignRun(
        spec=spec,
        records=[completed[cell.cell_id] for cell in cells],
        executed=len(pending),
        resumed=len(cells) - len(pending),
    )
