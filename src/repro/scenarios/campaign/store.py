"""Resumable JSONL result store for campaigns.

One line per completed cell::

    {"cell_id": "...", "params": {...}, "metrics": {...}}

Lines are appended and flushed as cells complete, so a killed sweep loses at
most the cell in flight.  On load, a trailing half-written line (the usual
artefact of a kill) is skipped; everything before it is preserved, which is
what makes re-running a campaign resume instead of restart.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping


class CampaignStore:
    """Append-only JSONL persistence keyed by ``cell_id``."""

    def __init__(self, path: str) -> None:
        self._path = path

    @property
    def path(self) -> str:
        """Location of the JSONL file."""
        return self._path

    def exists(self) -> bool:
        """True if the store file is present on disk."""
        return os.path.exists(self._path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """All completed records, keyed by ``cell_id``.

        Records are returned in file order; a later record for the same cell
        (possible if two sweeps raced on one store) wins.  Unparseable lines
        are tolerated only at the end of the file — anywhere else they mean
        the store is corrupt, and silently dropping them would quietly
        re-execute (and duplicate) cells.
        """
        records: Dict[str, Dict[str, Any]] = {}
        if not self.exists():
            return records
        with open(self._path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # half-written final line of a killed sweep
                raise ValueError(
                    f"corrupt campaign store {self._path!r}: "
                    f"unparseable record on line {index + 1}"
                )
            if not isinstance(record, dict) or "cell_id" not in record:
                raise ValueError(
                    f"corrupt campaign store {self._path!r}: "
                    f"record on line {index + 1} is not a cell record"
                )
            records[record["cell_id"]] = record
        return records

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> None:
        """Persist one completed cell (flushed immediately).

        If the file ends with a half-written line (killed sweep), appending
        blindly would glue the new record onto it — losing the record and
        turning the partial line into interior corruption that every later
        :meth:`load` rejects.  The tail is repaired first: a complete but
        unterminated record gets its newline; a truly partial one is
        truncated (its cell was never marked complete, so nothing is lost).
        """
        if "cell_id" not in record:
            raise ValueError("campaign records need a cell_id")
        directory = os.path.dirname(os.path.abspath(self._path))
        os.makedirs(directory, exist_ok=True)
        self._repair_tail()
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(dict(record), sort_keys=True) + "\n")
            handle.flush()

    def _repair_tail(self) -> None:
        """Terminate or truncate a non-newline-terminated final line."""
        if not self.exists() or os.path.getsize(self._path) == 0:
            return
        with open(self._path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            content = handle.read()
            cut = content.rfind(b"\n") + 1
            tail = content[cut:]
            try:
                parsed = json.loads(tail.decode("utf-8"))
                complete = isinstance(parsed, dict) and "cell_id" in parsed
            except (json.JSONDecodeError, UnicodeDecodeError):
                complete = False
            if complete:
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            else:
                handle.seek(cut)
                handle.truncate()
