"""Declarative experiment campaigns: grids of simulations at paper scale.

The paper's evaluation (Sections 5-6) compares garbage collectors across
protocols, workloads and failure rates over many seeded runs.  This
subpackage turns that kind of study into a first-class object:

* :mod:`spec` — :class:`CampaignSpec` describes the sweep as a grid
  (protocol × collector × workload × failure schedule × network × seeds);
  expansion produces :class:`CampaignCell` objects whose identity (and the
  per-cell engine/failure seeds) is a stable hash of the cell's parameters,
  independent of execution order;
* :mod:`executor` — runs the cells serially or on a ``multiprocessing`` pool;
  because every cell is self-seeded, the results are identical regardless of
  worker count;
* :mod:`store` — a resumable JSONL result store: re-running a campaign skips
  every cell already on disk;
* :mod:`aggregate` — folds per-cell metrics through
  :mod:`repro.analysis.metrics` into per-group :class:`AggregateStats`
  tables with text/CSV/JSON rendering;
* :mod:`cli` — the ``python -m repro.campaign`` entry point.
"""

from repro.scenarios.campaign.aggregate import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    CampaignSummary,
    GroupStats,
    aggregate_campaign,
)
from repro.scenarios.campaign.executor import (
    CELL_METRICS,
    CampaignRun,
    cell_metrics,
    execute_cell,
    run_campaign,
    trace_filename,
)
from repro.scenarios.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    CollectorSpec,
    FailureAxisEntry,
    WorkloadSpec,
    spec_from_mapping,
)
from repro.scenarios.campaign.store import CampaignStore

__all__ = [
    "CELL_METRICS",
    "DEFAULT_GROUP_BY",
    "DEFAULT_METRICS",
    "CampaignCell",
    "CampaignRun",
    "CampaignSpec",
    "CampaignStore",
    "CampaignSummary",
    "CollectorSpec",
    "FailureAxisEntry",
    "GroupStats",
    "WorkloadSpec",
    "aggregate_campaign",
    "cell_metrics",
    "execute_cell",
    "run_campaign",
    "spec_from_mapping",
    "trace_filename",
]
