"""Declarative experiment campaigns: grids of simulations at paper scale.

The paper's evaluation (Sections 5-6) compares garbage collectors across
protocols, workloads and failure rates over many seeded runs.  This
subpackage turns that kind of study into a first-class object:

* :mod:`spec` — :class:`CampaignSpec` describes the sweep as a grid
  (protocol × collector × workload × failure schedule × network × seeds);
  expansion produces :class:`CampaignCell` objects whose identity (and the
  per-cell engine/failure seeds) is a stable hash of the cell's parameters,
  independent of execution order;
* :mod:`executor` — runs the cells serially, on a ``multiprocessing`` pool,
  or as one of any number of claim/lease workers (:func:`run_worker`)
  sharing a SQL store; because every cell is self-seeded, the results are
  identical regardless of worker count or placement;
* :mod:`store` — the legacy resumable JSONL result store;
* :mod:`sqlstore` — the canonical SQL result store and work queue
  (SQLite-first, Postgres-ready schema: runs/cells/metrics/artifacts plus a
  lease journal), with atomic claims and crash-tolerant lease expiry;
* :mod:`queries` — canned analytical queries (SQL views + Python helpers)
  answering the paper's questions over the store, and the byte-identical
  :func:`store_summary` reducer;
* :mod:`aggregate` — folds per-cell metrics through
  :mod:`repro.analysis.metrics` into per-group :class:`AggregateStats`
  tables with text/CSV/JSON rendering;
* :mod:`cli` — the ``python -m repro campaign`` entry point.
"""

from repro.scenarios.campaign.aggregate import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    CampaignSummary,
    GroupStats,
    aggregate_campaign,
)
from repro.scenarios.campaign.executor import (
    CELL_METRICS,
    CampaignRun,
    WorkerRun,
    cell_metrics,
    default_worker_id,
    execute_cell,
    run_campaign,
    run_worker,
    trace_filename,
)
from repro.scenarios.campaign.queries import (
    QUERIES,
    describe_queries,
    run_query,
    store_summary,
)
from repro.scenarios.campaign.sqlstore import (
    ClaimedCell,
    SQLResultStore,
    open_store,
)
from repro.scenarios.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    CollectorSpec,
    FailureAxisEntry,
    WorkloadSpec,
    spec_from_mapping,
)
from repro.scenarios.campaign.store import CampaignStore

__all__ = [
    "CELL_METRICS",
    "DEFAULT_GROUP_BY",
    "DEFAULT_METRICS",
    "QUERIES",
    "CampaignCell",
    "CampaignRun",
    "CampaignSpec",
    "CampaignStore",
    "CampaignSummary",
    "ClaimedCell",
    "CollectorSpec",
    "FailureAxisEntry",
    "GroupStats",
    "SQLResultStore",
    "WorkerRun",
    "WorkloadSpec",
    "aggregate_campaign",
    "cell_metrics",
    "default_worker_id",
    "describe_queries",
    "execute_cell",
    "open_store",
    "run_campaign",
    "run_query",
    "run_worker",
    "spec_from_mapping",
    "store_summary",
    "trace_filename",
]
