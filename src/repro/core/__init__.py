"""The paper's contribution: the RDT-LGC asynchronous garbage collector.

Modules
-------
``ccb``
    The Checkpoint Control Block (CCB) record of Algorithm 1.
``uncollected``
    The ``UC`` (Uncollected Checkpoints) table with the ``release`` / ``link``
    / ``newCCB`` procedures of Algorithm 1.
``rdt_lgc``
    :class:`RdtLgc`, the per-process garbage collector: Algorithm 2 for normal
    execution periods and Algorithm 3 for recovery sessions (both the
    global-information ``LI`` variant and the causal-knowledge ``DV`` variant).
``merged_fdas``
    Algorithm 4: the FDAS checkpointing protocol with RDT-LGC merged into it.
``obsolete``
    Oracles for the paper's characterisations: Definition 7 (needlessness, by
    exhaustive search), Theorem 1 (obsolete from global knowledge), Theorem 2 /
    Corollary 1 (obsolete from causal knowledge).
``optimality``
    The auditor that checks, against the oracles, that a garbage collector is
    safe (Theorem 4) and optimal (Theorem 5).
"""

from repro.core.ccb import CheckpointControlBlock
from repro.core.merged_fdas import FdasWithRdtLgc
from repro.core.obsolete import (
    needless_stable_checkpoints,
    obsolete_stable_checkpoints_corollary1,
    obsolete_stable_checkpoints_theorem1,
    obsolete_stable_checkpoints_theorem2,
    retained_stable_checkpoints_theorem1,
    retained_stable_checkpoints_theorem2,
)
from repro.core.optimality import GcAudit, audit_garbage_collection
from repro.core.rdt_lgc import RdtLgc
from repro.core.uncollected import UncollectedTable

__all__ = [
    "CheckpointControlBlock",
    "FdasWithRdtLgc",
    "GcAudit",
    "RdtLgc",
    "UncollectedTable",
    "audit_garbage_collection",
    "needless_stable_checkpoints",
    "obsolete_stable_checkpoints_corollary1",
    "obsolete_stable_checkpoints_theorem1",
    "obsolete_stable_checkpoints_theorem2",
    "retained_stable_checkpoints_theorem1",
    "retained_stable_checkpoints_theorem2",
]
