"""Checkpoint Control Blocks (Algorithm 1).

A CCB represents one uncollected stable checkpoint of the local process.  It
stores the checkpoint index and a reference counter of how many ``UC`` entries
(i.e. how many remote processes, in the sense of Theorem 2) currently deny the
elimination of that checkpoint.  When the counter drops to zero the checkpoint
is obsolete (by Corollary 1) and is eliminated from stable storage.
"""

from __future__ import annotations


class CheckpointControlBlock:
    """Record of {checkpoint index, reference counter} for one stable checkpoint."""

    __slots__ = ("index", "ref_count")

    def __init__(self, index: int, ref_count: int = 1) -> None:
        if index < 0:
            raise ValueError("checkpoint indices are non-negative")
        if ref_count < 0:
            raise ValueError("reference counts are non-negative")
        self.index = index
        self.ref_count = ref_count

    def acquire(self) -> None:
        """Add one reference (a ``UC`` entry now points at this CCB)."""
        self.ref_count += 1

    def release(self) -> bool:
        """Drop one reference; return True if the CCB became unreferenced."""
        if self.ref_count <= 0:
            raise RuntimeError(
                f"CCB for checkpoint {self.index} released more times than acquired"
            )
        self.ref_count -= 1
        return self.ref_count == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CCB(index={self.index}, rc={self.ref_count})"
