"""Algorithm 4: the FDAS checkpointing protocol merged with RDT-LGC.

FDAS (Fixed-Dependency-After-Send, Wang 1997) is the classic RDT protocol the
paper uses to illustrate a merged implementation: once a process has sent a
message in its current checkpoint interval, its dependency vector must not
change any more within that interval, so the receipt of a message carrying new
causal information after a send triggers a forced checkpoint *before* the
message is processed.

Note on the pseudocode: the paper's Algorithm 4 listing maintains a ``sent``
flag (set before every send, cleared at every checkpoint) but the condition
printed in the receive handler tests only the ``forced`` latch.  Taking a
forced checkpoint on *every* dependency-changing receive would be the stricter
FDI protocol, which makes the ``sent`` flag pointless; we therefore implement
the standard FDAS condition — new causal information *and* a send already
performed in the current interval — which is what the flag exists for.  Both
variants ensure RDT (FDI takes strictly more forced checkpoints), and the
plain FDI protocol is available separately in :mod:`repro.protocols.fdi`.

The merged class shares a single dependency vector between checkpointing and
garbage collection, which is the whole point of Section 4.5: the GC adds no
piggybacked information and no asymptotic cost to the protocol.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.rdt_lgc import GcStateView, RdtLgc, RollbackGcResult
from repro.storage.stable import StableStorage


class FdasWithRdtLgc:
    """A process's checkpointing middleware: FDAS with integrated RDT-LGC."""

    def __init__(
        self,
        pid: int,
        num_processes: int,
        storage: Optional[StableStorage] = None,
        *,
        take_initial_checkpoint: bool = True,
    ) -> None:
        """Create the merged middleware for process ``pid``.

        ``take_initial_checkpoint`` controls whether ``s_pid^0`` is stored
        immediately (the paper's model requires it; tests sometimes defer it).
        """
        self._gc = RdtLgc(pid, num_processes, storage)
        self._sent = False
        self._forced_checkpoints = 0
        self._basic_checkpoints = 0
        if take_initial_checkpoint:
            self.take_checkpoint()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        """The owning process id."""
        return self._gc.pid

    @property
    def gc(self) -> RdtLgc:
        """The embedded RDT-LGC instance."""
        return self._gc

    @property
    def storage(self) -> StableStorage:
        """The process's stable storage."""
        return self._gc.storage

    @property
    def dependency_vector(self) -> Tuple[int, ...]:
        """The shared dependency vector ``DV``."""
        return self._gc.dependency_vector

    @property
    def sent_in_current_interval(self) -> bool:
        """The FDAS ``sent`` flag."""
        return self._sent

    @property
    def forced_checkpoints(self) -> int:
        """Number of forced checkpoints taken so far."""
        return self._forced_checkpoints

    @property
    def basic_checkpoints(self) -> int:
        """Number of basic (including the initial) checkpoints taken so far."""
        return self._basic_checkpoints

    def state_view(self) -> GcStateView:
        """The ``(DV, UC)`` snapshot of the embedded collector."""
        return self._gc.state_view()

    # ------------------------------------------------------------------
    # Protocol events
    # ------------------------------------------------------------------
    def before_send(self) -> Tuple[int, ...]:
        """Called before sending an application message; returns the piggyback."""
        self._sent = True
        return self._gc.before_send()

    def on_receive(
        self, piggybacked: Sequence[int], *, time: float = 0.0
    ) -> bool:
        """Process a received application message.

        Returns True if a forced checkpoint was taken.  The forced checkpoint
        is stored *before* the dependency vector is updated and before any
        garbage collection related to the receipt runs, as required by the
        discussion of merged implementations in Section 4.5.
        """
        dv = self._gc.dependency_vector
        brings_new_information = any(
            value > dv[j] for j, value in enumerate(piggybacked)
        )
        forced = False
        if brings_new_information and self._sent:
            self.take_checkpoint(forced=True, time=time)
            forced = True
        self._gc.on_receive(piggybacked)
        return forced

    def take_checkpoint(
        self,
        *,
        payload: object = None,
        forced: bool = False,
        time: float = 0.0,
        size: int = 1,
    ) -> int:
        """Take a basic or forced checkpoint; returns its index."""
        self._sent = False
        if forced:
            self._forced_checkpoints += 1
        else:
            self._basic_checkpoints += 1
        return self._gc.on_checkpoint(
            payload=payload, forced=forced, time=time, size=size
        )

    # ------------------------------------------------------------------
    # Recovery sessions
    # ------------------------------------------------------------------
    def on_rollback(
        self,
        rollback_index: int,
        last_interval_vector: Optional[Sequence[int]] = None,
    ) -> RollbackGcResult:
        """Roll back to ``rollback_index`` and run Algorithm 3 (see :class:`RdtLgc`)."""
        self._sent = False
        return self._gc.on_rollback(rollback_index, last_interval_vector)

    def on_peer_rollback(self, last_interval_vector: Sequence[int]) -> List[int]:
        """Recovery-session shortcut when this process keeps its volatile state."""
        return self._gc.on_peer_rollback(last_interval_vector)
