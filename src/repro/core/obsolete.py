"""Oracles for the paper's characterisations of obsolete checkpoints.

These functions operate on a *global* view of the execution (a
:class:`repro.ccp.CCP`) and implement, literally, the conditions stated in the
paper.  They are never used by the online algorithm (which only has causal
knowledge); they exist to validate it:

* :func:`needless_stable_checkpoints` — Definition 7, by exhaustive search over
  all ``2^n`` faulty sets (Lemma 3: needless == obsolete).
* :func:`obsolete_stable_checkpoints_theorem1` — Theorem 1: ``s_i^gamma`` is
  obsolete iff there is no ``p_f`` with ``s_f^last -> c_i^{gamma+1}`` and
  ``s_f^last -/-> s_i^gamma``.
* :func:`obsolete_stable_checkpoints_theorem2` — Theorem 2: the weakened,
  causal-knowledge-only sufficient condition (``s_f^last`` replaced by the last
  checkpoint of ``p_f`` known to ``p_i``).
* :func:`obsolete_stable_checkpoints_corollary1` — Corollary 1: the same
  condition expressed purely over dependency vectors, evaluated on the vectors
  attached to the CCP (recorded by the middleware or ground truth).

The expected relationships (Theorem 2 obsolete  ⊆  Theorem 1 obsolete  ==
needless) are asserted by the test suite, not here.

The public Theorem-1/2 functions serve their answers from the pattern's
shared :class:`~repro.ccp.analysis_cache.AnalysisCache`, which implements
batch equivalents with the loop-invariant subterms hoisted.  The literal
per-checkpoint transcriptions (``_is_retained_theorem1``,
``_last_known_checkpoint``, ``_is_retained_theorem2``) are kept as the
executable statements of the theorems: the equivalence property tests pin
the cache to independent re-transcriptions, and the perf benchmark uses
these helpers as the measured old path.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable, List, Set

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP
from repro.recovery.recovery_line import recovery_line


# ----------------------------------------------------------------------
# Definition 7 — needlessness (exhaustive)
# ----------------------------------------------------------------------
def _all_faulty_sets(ccp: CCP) -> Iterable[Set[int]]:
    # Departed processes hold no state and can never fail, so faulty sets
    # range over the active membership only.
    pids = [pid for pid in ccp.active_processes if ccp.last_stable(pid) >= 0]
    return (set(c) for c in chain.from_iterable(
        combinations(pids, size) for size in range(1, len(pids) + 1)
    ))


def needless_stable_checkpoints(ccp: CCP, *, singletons_only: bool = False) -> Set[CheckpointId]:
    """Stable checkpoints that belong to no recovery line of the current cut.

    ``singletons_only=True`` restricts the search to single-failure sets,
    which by Lemma 2 yields the same answer; the default exhaustive mode is
    kept so tests can validate Lemma 2 itself.  Exponential in ``n`` when
    exhaustive — use on small patterns only.
    """
    needed: Set[CheckpointId] = set()
    faulty_sets: Iterable[Set[int]]
    if singletons_only:
        faulty_sets = (
            {pid} for pid in ccp.active_processes if ccp.last_stable(pid) >= 0
        )
    else:
        faulty_sets = _all_faulty_sets(ccp)
    for faulty in faulty_sets:
        line = recovery_line(ccp, faulty)
        for pid in ccp.processes:
            cid = CheckpointId(pid, line.indices[pid])
            if ccp.is_stable(cid):
                needed.add(cid)
    all_stable = {
        cid for pid in ccp.processes for cid in ccp.stable_ids(pid)
    }
    return all_stable - needed


# ----------------------------------------------------------------------
# Theorem 1 — obsolete from global knowledge
# ----------------------------------------------------------------------
def _is_retained_theorem1(ccp: CCP, cid: CheckpointId) -> bool:
    successor = CheckpointId(cid.pid, cid.index + 1)
    for f in ccp.processes:
        if ccp.last_stable(f) < 0:
            continue
        last = ccp.last_stable_id(f)
        if ccp.causally_precedes(last, successor) and not ccp.causally_precedes(last, cid):
            return True
    return False


def obsolete_stable_checkpoints_theorem1(ccp: CCP) -> Set[CheckpointId]:
    """Theorem 1: the exact set of obsolete stable checkpoints.

    The retained set is materialised once per CCP in the pattern's shared
    :class:`~repro.ccp.analysis_cache.AnalysisCache`; repeated audits of the
    same instant reuse it.
    """
    all_stable = {cid for pid in ccp.processes for cid in ccp.stable_ids(pid)}
    return all_stable - ccp.analyses.theorem1_retained


def retained_stable_checkpoints_theorem1(ccp: CCP) -> Set[CheckpointId]:
    """Complement of Theorem 1: the checkpoints every correct GC must retain."""
    return set(ccp.analyses.theorem1_retained)


# ----------------------------------------------------------------------
# Theorem 2 — obsolete from causal knowledge only
# ----------------------------------------------------------------------
def _last_known_checkpoint(ccp: CCP, observer: int, subject: int) -> int:
    """``last_k_observer(subject)``: latest stable checkpoint of ``subject``
    known to ``observer``."""
    volatile = ccp.volatile_id(observer)
    best = -1
    for cid in ccp.stable_ids(subject):
        if ccp.causally_precedes(cid, volatile) and cid.index > best:
            best = cid.index
    return best


def _is_retained_theorem2(ccp: CCP, cid: CheckpointId) -> bool:
    successor = CheckpointId(cid.pid, cid.index + 1)
    for f in ccp.processes:
        last_known = _last_known_checkpoint(ccp, cid.pid, f)
        if last_known < 0:
            continue
        known = CheckpointId(f, last_known)
        if ccp.causally_precedes(known, successor) and not ccp.causally_precedes(known, cid):
            return True
    return False


def obsolete_stable_checkpoints_theorem2(ccp: CCP) -> Set[CheckpointId]:
    """Theorem 2: checkpoints identifiable as obsolete using causal knowledge only.

    This is exactly the set an *optimal* asynchronous garbage collector must
    have eliminated (Theorem 5); it is a subset of the Theorem 1 set.  Like
    Theorem 1, the retained set is cached on the pattern.
    """
    all_stable = {cid for pid in ccp.processes for cid in ccp.stable_ids(pid)}
    return all_stable - ccp.analyses.theorem2_retained


def retained_stable_checkpoints_theorem2(ccp: CCP) -> Set[CheckpointId]:
    """Checkpoints an optimal asynchronous GC is allowed (and expected) to keep."""
    return set(ccp.analyses.theorem2_retained)


# ----------------------------------------------------------------------
# Corollary 1 — the dependency-vector formulation
# ----------------------------------------------------------------------
def obsolete_stable_checkpoints_corollary1(ccp: CCP) -> Set[CheckpointId]:
    """Corollary 1, evaluated on the dependency vectors attached to the CCP.

    ``s_i^gamma`` is obsolete if there is no process ``p_f`` with
    ``DV(v_i)[f] == DV(c_i^{gamma+1})[f]`` and ``DV(v_i)[f] > DV(s_i^gamma)[f]``.
    For RDT executions this coincides with Theorem 2, which tests verify.
    """
    obsolete: Set[CheckpointId] = set()
    for pid in ccp.processes:
        volatile_dv = ccp.dv(ccp.volatile_id(pid))
        stable = ccp.stable_ids(pid)
        for cid in stable:
            successor = CheckpointId(pid, cid.index + 1)
            successor_dv = ccp.dv(successor)
            own_dv = ccp.dv(cid)
            retained = any(
                volatile_dv[f] == successor_dv[f] and volatile_dv[f] > own_dv[f]
                for f in ccp.processes
            )
            if not retained:
                obsolete.add(cid)
    return obsolete


def obsolete_per_process(ccp: CCP, obsolete: Set[CheckpointId]) -> List[List[int]]:
    """Group a set of obsolete checkpoints by process (helper for reports)."""
    grouped: List[List[int]] = [[] for _ in ccp.processes]
    for cid in obsolete:
        grouped[cid.pid].append(cid.index)
    for indices in grouped:
        indices.sort()
    return grouped
