"""The ``UC`` (Uncollected Checkpoints) table of Algorithm 1.

``UC`` is a size-``n`` vector local to each process ``p_i``.  Entry ``UC[f]``
references the CCB of the stable checkpoint that ``p_i`` must retain *because
of* ``p_f`` (Theorem 2): the most recent stable checkpoint of ``p_i`` not
causally preceded by the last checkpoint of ``p_f`` known to ``p_i``.  Several
entries may reference the same CCB; the CCB's reference counter tracks how
many do.  A checkpoint whose CCB loses its last reference is obsolete and is
eliminated immediately.

The table delegates the actual elimination to a callback so it can sit on top
of any stable-storage implementation (or none, for unit tests of the
bookkeeping itself).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.ccb import CheckpointControlBlock

EliminateCallback = Callable[[int], None]


class UncollectedTable:
    """The ``UC`` vector plus the ``release``/``link``/``newCCB`` procedures."""

    def __init__(
        self,
        num_processes: int,
        on_eliminate: Optional[EliminateCallback] = None,
    ) -> None:
        if num_processes <= 0:
            raise ValueError("the UC table needs at least one entry")
        self._entries: List[Optional[CheckpointControlBlock]] = [None] * num_processes
        self._on_eliminate = on_eliminate
        self._eliminated: List[int] = []

    # ------------------------------------------------------------------
    # Algorithm 1 procedures
    # ------------------------------------------------------------------
    def release(self, j: int) -> Optional[int]:
        """Procedure ``release(j)``: drop ``UC[j]``'s reference.

        If the referenced CCB becomes unreferenced its checkpoint is eliminated
        and the eliminated index is returned; otherwise ``None``.  The entry is
        always cleared, so a released entry never silently keeps a stale
        reference (Algorithm 2 immediately re-points it via ``link`` or
        ``newCCB``; recovery-session shortcuts leave it ``Null``).
        """
        ccb = self._entries[j]
        if ccb is None:
            return None
        eliminated: Optional[int] = None
        if ccb.release():
            eliminated = ccb.index
            self._eliminate(ccb.index)
        self._entries[j] = None
        return eliminated

    def link(self, j: int, i: int) -> None:
        """Procedure ``link(j, i)``: make ``UC[j]`` reference the same CCB as ``UC[i]``."""
        target = self._entries[i]
        if target is None:
            raise RuntimeError(
                f"link({j}, {i}) with UC[{i}] = Null: the process has not taken "
                "its initial checkpoint yet"
            )
        if self._entries[j] is not None:
            raise RuntimeError(
                f"link({j}, {i}) would overwrite a live reference; call release({j}) first"
            )
        self._entries[j] = target
        target.acquire()

    def new_ccb(self, j: int, index: int) -> CheckpointControlBlock:
        """Procedure ``newCCB(j, ind)``: create a CCB for checkpoint ``index``."""
        if self._entries[j] is not None:
            raise RuntimeError(
                f"newCCB({j}, {index}) would overwrite a live reference; "
                f"call release({j}) first"
            )
        ccb = CheckpointControlBlock(index, ref_count=1)
        self._entries[j] = ccb
        return ccb

    # ------------------------------------------------------------------
    # Recovery-session (Algorithm 3) helpers
    # ------------------------------------------------------------------
    def rebuild(
        self,
        assignments: Dict[int, int],
        stored_indices: Sequence[int],
    ) -> List[int]:
        """Rebuild the table from scratch during a rollback.

        ``assignments`` maps entry ``f`` to the checkpoint index ``UC[f]`` must
        reference (entries absent from the mapping become ``Null``).
        ``stored_indices`` lists every checkpoint currently on stable storage;
        a fresh CCB is created for each (Algorithm 3, line 7) and every CCB
        left unreferenced afterwards has its checkpoint eliminated (lines
        15-17).  Returns the indices eliminated this way, in ascending order.
        """
        blocks: Dict[int, CheckpointControlBlock] = {
            index: CheckpointControlBlock(index, ref_count=0) for index in stored_indices
        }
        self._entries = [None] * len(self._entries)
        for entry, index in assignments.items():
            if index not in blocks:
                raise KeyError(
                    f"UC[{entry}] cannot reference checkpoint {index}: not on stable storage"
                )
            blocks[index].acquire()
            self._entries[entry] = blocks[index]
        eliminated = sorted(index for index, ccb in blocks.items() if ccb.ref_count == 0)
        for index in eliminated:
            self._eliminate(index)
        return eliminated

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def referenced_index(self, j: int) -> Optional[int]:
        """The checkpoint index referenced by ``UC[j]``, or None."""
        ccb = self._entries[j]
        return ccb.index if ccb is not None else None

    def view(self) -> Tuple[Optional[int], ...]:
        """The table as a tuple of referenced indices (None for ``Null``).

        This is exactly the representation used in Figure 4 of the paper,
        where ``*`` stands for ``Null``.
        """
        return tuple(self.referenced_index(j) for j in range(len(self._entries)))

    def referenced_indices(self) -> Set[int]:
        """The set of checkpoint indices currently protected by some entry."""
        return {ccb.index for ccb in self._entries if ccb is not None}

    def reference_count(self, index: int) -> int:
        """Number of entries referencing checkpoint ``index``."""
        return sum(
            1 for ccb in self._entries if ccb is not None and ccb.index == index
        )

    def eliminated_history(self) -> List[int]:
        """All checkpoint indices this table has eliminated, in order."""
        return list(self._eliminated)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _eliminate(self, index: int) -> None:
        self._eliminated.append(index)
        if self._on_eliminate is not None:
            self._on_eliminate(index)
