"""RDT-LGC: the paper's asynchronous garbage collection algorithm.

:class:`RdtLgc` implements, per process:

* **Algorithm 2** — normal execution periods: dependency-vector propagation,
  plus the ``UC``/CCB bookkeeping that identifies a checkpoint as obsolete as
  soon as it satisfies the causal-knowledge condition of Corollary 1;
* **Algorithm 3** — recovery sessions: rebuilding ``DV`` and ``UC`` after a
  rollback, either from the globally consistent last-interval vector ``LI`` or
  from causal knowledge only (``LI`` replaced by the recreated ``DV``);
* the shortcut for processes that do **not** roll back during a recovery
  session ("release any entry ``UC[f]`` such that ``DV[f] < LI[f]``").

The class is deliberately host-agnostic: it can be driven by the discrete-event
simulator, by a hand-written schedule (as in the Figure 4 reproduction), or
directly from unit tests.  All it needs is to be told about sends, receives,
checkpoints and rollbacks, in the order the process experiences them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.causality.dependency_vector import DependencyVector
from repro.core.rollback import retention_assignments
from repro.core.uncollected import UncollectedTable
from repro.storage.stable import StableStorage


@dataclass(frozen=True)
class RollbackGcResult:
    """Outcome of running Algorithm 3 at one process."""

    rollback_index: int
    rolled_back: Tuple[int, ...]
    collected: Tuple[int, ...]
    retained: Tuple[int, ...]


@dataclass(frozen=True)
class GcStateView:
    """A snapshot of ``DV`` and ``UC`` (the annotations drawn in Figure 4)."""

    dependency_vector: Tuple[int, ...]
    uncollected: Tuple[Optional[int], ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        uc = ", ".join("*" if v is None else str(v) for v in self.uncollected)
        return f"DV={list(self.dependency_vector)} UC=({uc})"


class RdtLgc:
    """Per-process RDT-LGC garbage collector (Algorithms 1-3)."""

    def __init__(
        self,
        pid: int,
        num_processes: int,
        storage: Optional[StableStorage] = None,
    ) -> None:
        """Create the garbage collector of process ``pid``.

        Parameters
        ----------
        pid, num_processes:
            Identity of the owning process and the size of the system.
        storage:
            The process's stable storage.  When omitted a private store is
            created; either way eliminations are applied to it immediately,
            which is what keeps the per-process bound at ``n`` checkpoints.
        """
        if not 0 <= pid < num_processes:
            raise ValueError(f"pid {pid} out of range for {num_processes} processes")
        self._pid = pid
        self._num_processes = num_processes
        self._storage = storage if storage is not None else StableStorage(pid)
        self._dv = DependencyVector.initial(num_processes, pid)
        self._uc = UncollectedTable(num_processes, on_eliminate=self._storage.eliminate)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        """The owning process id."""
        return self._pid

    @property
    def num_processes(self) -> int:
        """Number of processes in the system."""
        return self._num_processes

    @property
    def storage(self) -> StableStorage:
        """The stable storage the collector operates on."""
        return self._storage

    @property
    def dependency_vector(self) -> Tuple[int, ...]:
        """The current dependency vector ``DV`` of the process."""
        return self._dv.as_tuple()

    @property
    def uncollected(self) -> UncollectedTable:
        """The ``UC`` table (exposed for audits and the Figure 4 trace)."""
        return self._uc

    def state_view(self) -> GcStateView:
        """The ``(DV, UC)`` snapshot shown for each event in Figure 4."""
        return GcStateView(self._dv.as_tuple(), self._uc.view())

    def retained_indices(self) -> List[int]:
        """Indices of the stable checkpoints currently retained."""
        return self._storage.retained_indices()

    def collected_indices(self) -> List[int]:
        """Indices eliminated by garbage collection so far, in order."""
        return self._uc.eliminated_history()

    def last_known_checkpoint(self, pid: int) -> int:
        """``last_k_i(pid)`` (Equation 3): ``DV[pid] - 1``."""
        return self._dv.last_known_checkpoint(pid)

    # ------------------------------------------------------------------
    # Algorithm 2 — normal execution periods
    # ------------------------------------------------------------------
    def before_send(self) -> Tuple[int, ...]:
        """The dependency vector to piggyback on an outgoing message."""
        return self._dv.piggyback()

    def on_receive(self, piggybacked: Sequence[int]) -> List[int]:
        """Process the vector piggybacked on a received message.

        For every entry carrying new causal information the corresponding
        ``UC`` entry is re-pointed at the CCB of the last stable checkpoint
        (Theorem 2: that process now denies the collection of the last stable
        checkpoint taken by this one).  Returns the entries that were updated.
        """
        if len(piggybacked) != self._num_processes:
            raise ValueError("piggybacked vector has the wrong size")
        if piggybacked[self._pid] > self._dv[self._pid]:
            raise RuntimeError(
                f"process {self._pid} received new causal information about itself; "
                "the execution violates the system model (orphan message after a "
                "rollback?)"
            )
        updated = self._dv.absorb(piggybacked)
        for j in updated:
            self._uc.release(j)
            self._uc.link(j, self._pid)
        return updated

    def on_checkpoint(
        self,
        *,
        payload: object = None,
        forced: bool = False,
        time: float = 0.0,
        size: int = 1,
    ) -> int:
        """Take a (basic or forced) checkpoint; returns its index.

        Implements the "on taking checkpoint" handler of Algorithm 2: the
        current ``DV`` is stored with the checkpoint, the previous last stable
        checkpoint loses the ``UC[i]`` reference (and is eliminated if that was
        its only protection), a fresh CCB is created for the new checkpoint and
        ``DV[i]`` is advanced to the new interval.
        """
        index = self._dv.current_interval()
        self._storage.store(
            index,
            self._dv.as_tuple(),
            payload=payload,
            forced=forced,
            time=time,
            size=size,
        )
        self._uc.release(self._pid)
        self._uc.new_ccb(self._pid, index)
        self._dv.advance_after_checkpoint()
        return index

    # ------------------------------------------------------------------
    # Algorithm 3 — recovery sessions
    # ------------------------------------------------------------------
    def on_rollback(
        self,
        rollback_index: int,
        last_interval_vector: Optional[Sequence[int]] = None,
    ) -> RollbackGcResult:
        """Run Algorithm 3 after this process is told to roll back.

        Parameters
        ----------
        rollback_index:
            ``RI``: the index of this process's component in the recovery line.
        last_interval_vector:
            ``LI`` as propagated by a centralized recovery manager.  When
            ``None`` the causal-knowledge variant is used: ``LI`` is replaced
            by the recreated ``DV`` (the paper's uncoordinated recovery case),
            and garbage collection is based on Theorem 2 instead of Theorem 1.
        """
        if not self._storage.contains(rollback_index):
            raise KeyError(
                f"process {self._pid} cannot roll back to checkpoint "
                f"{rollback_index}: it is not on stable storage"
            )
        rolled_back = tuple(self._storage.eliminate_after(rollback_index))
        restored = self._storage.get(rollback_index)
        self._dv.restore(restored.dependency_vector)
        self._dv.advance_after_checkpoint()
        reference = (
            tuple(last_interval_vector)
            if last_interval_vector is not None
            else self._dv.as_tuple()
        )
        if len(reference) != self._num_processes:
            raise ValueError("last-interval vector has the wrong size")
        assignments = retention_assignments(
            self._storage, self._dv.as_tuple(), reference
        )
        collected = tuple(
            self._uc.rebuild(assignments, self._storage.retained_indices())
        )
        return RollbackGcResult(
            rollback_index=rollback_index,
            rolled_back=rolled_back,
            collected=collected,
            retained=tuple(self._storage.retained_indices()),
        )

    def on_peer_rollback(self, last_interval_vector: Sequence[int]) -> List[int]:
        """Recovery-session shortcut for a process that keeps its volatile state.

        Releases every entry ``UC[f]`` with ``DV[f] < LI[f]``: the last stable
        checkpoint of ``p_f`` (after the recovery session) does not causally
        precede this process's volatile state, so by Theorem 1 no checkpoint
        needs to be retained because of ``p_f``.  Returns the checkpoint
        indices eliminated as a consequence.
        """
        if len(last_interval_vector) != self._num_processes:
            raise ValueError("last-interval vector has the wrong size")
        eliminated: List[int] = []
        for f in range(self._num_processes):
            if self._dv[f] < last_interval_vector[f]:
                index = self._uc.release(f)
                if index is not None:
                    eliminated.append(index)
        return eliminated
