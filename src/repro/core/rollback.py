"""Shared helpers for the recovery-session part of RDT-LGC (Algorithm 3).

Both the stand-alone :class:`repro.core.RdtLgc` and the simulator-facing
:class:`repro.gc.RdtLgcCollector` need the same computation after a rollback:
given the checkpoints still on stable storage (with their stored dependency
vectors), the process's recreated dependency vector and the reference vector
(the last-interval vector ``LI`` from the recovery manager, or the recreated
``DV`` itself in the uncoordinated case), determine which stored checkpoint
each ``UC`` entry must reference.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.storage.stable import StableStorage


def retention_boundary(
    storage: StableStorage,
    volatile_dv: Sequence[int],
    f: int,
    last_interval: int,
) -> Optional[int]:
    """Algorithm 3, line 9, for a single process ``p_f``.

    Returns the index ``gamma`` of the stored checkpoint that must be retained
    because of ``p_f``: the last stored checkpoint whose dependency on ``p_f``
    is still below ``last_interval`` while the *next* general checkpoint
    (the next stored one, or the volatile state for the most recent) already
    depends on ``p_f``'s checkpoint ``last_interval - 1``.  Returns ``None``
    when ``p_f`` denies nothing.

    Intermediate checkpoints eliminated by earlier garbage collection are
    handled by taking the next *stored* checkpoint as the successor: the
    dependency entries are monotone along a process's checkpoints and a
    previously collected checkpoint can never be the one Theorem 1 mandates
    (obsolete checkpoints stay obsolete across rollbacks, Lemma 3).
    """
    if last_interval <= 0:
        return None
    stored = storage.retained_indices()
    for position, gamma in enumerate(stored):
        stored_dv = storage.get(gamma).dependency_vector
        if stored_dv[f] >= last_interval:
            return None
        if position + 1 < len(stored):
            next_dv: Sequence[int] = storage.get(stored[position + 1]).dependency_vector
        else:
            next_dv = volatile_dv
        if next_dv[f] >= last_interval:
            return gamma
    return None


def retention_assignments(
    storage: StableStorage,
    volatile_dv: Sequence[int],
    reference_vector: Sequence[int],
) -> Dict[int, int]:
    """The full ``UC`` assignment of Algorithm 3 (lines 8-14).

    Returns a mapping ``f -> gamma`` for every entry that must reference a
    stored checkpoint; entries absent from the mapping become ``Null``.
    """
    assignments: Dict[int, int] = {}
    for f, last_interval in enumerate(reference_vector):
        gamma = retention_boundary(storage, volatile_dv, f, last_interval)
        if gamma is not None:
            assignments[f] = gamma
    return assignments
