"""Safety and optimality audits for garbage collectors.

The paper proves two properties of RDT-LGC:

* **Safety** (Theorem 4): every eliminated checkpoint is obsolete — i.e. the
  retained set always contains every checkpoint that Theorem 1 still deems
  necessary;
* **Optimality** (Theorem 5): every checkpoint identifiable as obsolete from
  causal knowledge alone (Theorem 2) has been eliminated.

:func:`audit_garbage_collection` checks both against the oracles of
:mod:`repro.core.obsolete`, given the global CCP at some instant and the
per-process sets of stable checkpoints actually retained at that instant.  It
is used by property-based tests, by the simulator's self-checking mode and by
the optimality benchmark (CLAIM-OPT in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Set

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP


@dataclass
class GcAudit:
    """Outcome of auditing one instant of one execution."""

    safety_violations: List[CheckpointId] = field(default_factory=list)
    optimality_violations: List[CheckpointId] = field(default_factory=list)
    retained_total: int = 0
    required_total: int = 0
    collectible_total: int = 0

    @property
    def is_safe(self) -> bool:
        """True if every checkpoint required by Theorem 1 is still retained."""
        return not self.safety_violations

    @property
    def is_optimal(self) -> bool:
        """True if every Theorem-2-obsolete checkpoint has been eliminated."""
        return not self.optimality_violations

    @property
    def ok(self) -> bool:
        """True if the collector is both safe and optimal at this instant."""
        return self.is_safe and self.is_optimal


def _retained_as_ids(retained: Mapping[int, Iterable[int]]) -> Set[CheckpointId]:
    ids: Set[CheckpointId] = set()
    for pid, indices in retained.items():
        for index in indices:
            ids.add(CheckpointId(pid, index))
    return ids


def audit_garbage_collection(
    ccp: CCP,
    retained: Mapping[int, Iterable[int]],
    *,
    require_optimality: bool = True,
) -> GcAudit:
    """Audit the retained checkpoint sets of every process against the oracles.

    Parameters
    ----------
    ccp:
        The global checkpoint and communication pattern at the instant being
        audited (typically built from the simulator's trace).
    retained:
        Mapping ``pid -> iterable of stable checkpoint indices`` currently on
        that process's stable storage.
    require_optimality:
        When False only the safety check is performed (useful for auditing
        non-optimal baselines such as the no-GC or coordinated collectors).
    """
    retained_ids = _retained_as_ids(retained)
    # Pull the retained sets from the pattern's shared cache: auditing several
    # collectors (or several labels) against the same instant computes the
    # Theorem-1/2 characterisations once.
    required = ccp.analyses.theorem1_retained
    allowed = ccp.analyses.theorem2_retained
    audit = GcAudit(
        retained_total=len(retained_ids),
        required_total=len(required),
        collectible_total=ccp.total_stable_checkpoints() - len(allowed),
    )
    audit.safety_violations = sorted(required - retained_ids)
    if require_optimality:
        audit.optimality_violations = sorted(retained_ids - allowed)
    return audit


def retained_from_storages(storages: Mapping[int, "object"]) -> Dict[int, List[int]]:
    """Convenience: extract retained indices from a mapping of stable storages."""
    result: Dict[int, List[int]] = {}
    for pid, storage in storages.items():
        result[pid] = list(storage.retained_indices())  # type: ignore[attr-defined]
    return result
