"""Records kept on simulated stable storage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple


@dataclass(frozen=True)
class StoredCheckpoint:
    """A stable checkpoint as written to stable storage.

    Attributes
    ----------
    pid, index:
        Identity of the checkpoint (``s_pid^index``).
    dependency_vector:
        The dependency vector stored together with the checkpoint "for
        recovery purposes" (Section 4.2).
    payload:
        The application state snapshot.  The algorithms never look inside it;
        it is carried so examples can demonstrate end-to-end recovery.
    forced:
        Whether the checkpoint was forced by the protocol.
    time:
        Simulated time at which the checkpoint was written.
    size:
        Nominal size (in abstract units) used by storage-occupancy metrics.
    """

    pid: int
    index: int
    dependency_vector: Tuple[int, ...]
    payload: Any = None
    forced: bool = False
    time: float = 0.0
    size: int = 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"s{self.pid}^{self.index}"
