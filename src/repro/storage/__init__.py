"""Stable-storage substrate.

The paper's model gives every process a stable storage that persists through
crashes (Section 2).  The classes here simulate exactly that: an in-memory
store whose contents survive the simulated loss of a process's volatile state.
Garbage collection is, operationally, the act of calling
:meth:`StableStorage.eliminate` on obsolete checkpoint indices; the store also
keeps the occupancy statistics that the evaluation benchmarks report.
"""

from repro.storage.records import StoredCheckpoint
from repro.storage.stable import StableStorage

__all__ = ["StableStorage", "StoredCheckpoint"]
