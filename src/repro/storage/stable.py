"""Per-process simulated stable storage.

A :class:`StableStorage` holds the stable checkpoints of one process.  It
persists across simulated crashes (the failure injector wipes only the
volatile state of a process) and records the occupancy statistics used by the
evaluation benchmarks:

* current number of retained checkpoints,
* high-water mark of retained checkpoints,
* totals of stored and eliminated checkpoints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.storage.records import StoredCheckpoint


class StableStorage:
    """Stable storage of a single process."""

    def __init__(self, pid: int) -> None:
        self._pid = pid
        self._checkpoints: Dict[int, StoredCheckpoint] = {}
        self._next_index = 0
        self._total_stored = 0
        self._total_eliminated = 0
        self._total_rolled_back = 0
        self._max_retained = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        """The owning process id."""
        return self._pid

    def retained_indices(self) -> List[int]:
        """Indices of the checkpoints currently on stable storage, ascending."""
        return sorted(self._checkpoints)

    def retained_count(self) -> int:
        """Number of checkpoints currently retained."""
        return len(self._checkpoints)

    def max_retained(self) -> int:
        """High-water mark of simultaneously retained checkpoints."""
        return self._max_retained

    def total_stored(self) -> int:
        """Total number of checkpoints ever written."""
        return self._total_stored

    def total_eliminated(self) -> int:
        """Total number of checkpoints eliminated by garbage collection."""
        return self._total_eliminated

    def total_rolled_back(self) -> int:
        """Total number of checkpoints discarded because of rollbacks."""
        return self._total_rolled_back

    def next_index(self) -> int:
        """Index the next stored checkpoint must use."""
        return self._next_index

    def last_index(self) -> int:
        """Index of the most recently written (not yet rolled back) checkpoint, or -1."""
        return self._next_index - 1

    def contains(self, index: int) -> bool:
        """True if checkpoint ``index`` is currently retained."""
        return index in self._checkpoints

    def get(self, index: int) -> StoredCheckpoint:
        """The retained checkpoint with the given index."""
        if index not in self._checkpoints:
            raise KeyError(f"checkpoint s{self._pid}^{index} is not on stable storage")
        return self._checkpoints[index]

    def latest(self) -> Optional[StoredCheckpoint]:
        """The most recent retained checkpoint, or None if the store is empty."""
        if not self._checkpoints:
            return None
        return self._checkpoints[max(self._checkpoints)]

    def occupancy(self) -> int:
        """Sum of the sizes of all retained checkpoints."""
        return sum(c.size for c in self._checkpoints.values())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def store(
        self,
        index: int,
        dependency_vector: Tuple[int, ...],
        *,
        payload: object = None,
        forced: bool = False,
        time: float = 0.0,
        size: int = 1,
    ) -> StoredCheckpoint:
        """Write checkpoint ``index`` to stable storage.

        Indices must be written in order: each write uses :meth:`next_index`,
        which increases monotonically during normal execution and is rewound by
        :meth:`eliminate_after` when a rollback discards later checkpoints
        (their indices are then reused, matching Algorithm 3 which resets
        ``DV[i]`` from the restored checkpoint).
        """
        expected = self._next_index
        if index != expected:
            raise ValueError(
                f"process {self._pid}: expected to store checkpoint {expected}, "
                f"got {index}"
            )
        record = StoredCheckpoint(
            pid=self._pid,
            index=index,
            dependency_vector=tuple(dependency_vector),
            payload=payload,
            forced=forced,
            time=time,
            size=size,
        )
        self._checkpoints[index] = record
        self._next_index += 1
        self._total_stored += 1
        self._max_retained = max(self._max_retained, len(self._checkpoints))
        return record

    def eliminate(self, index: int) -> None:
        """Remove checkpoint ``index`` from stable storage (garbage collection)."""
        if index not in self._checkpoints:
            raise KeyError(
                f"cannot eliminate s{self._pid}^{index}: not on stable storage"
            )
        del self._checkpoints[index]
        self._total_eliminated += 1

    def eliminate_after(self, index: int) -> List[int]:
        """Remove every checkpoint with an index strictly greater than ``index``.

        Used during rollback (Algorithm 3, line 4: "eliminate checkpoints
        ``s_i^gamma`` with ``gamma > RI``").  Returns the removed indices.
        Rolled-back checkpoints do not count as garbage-collected in the
        statistics; they are recorded separately.
        """
        removed = [i for i in self._checkpoints if i > index]
        for i in removed:
            del self._checkpoints[i]
        self._total_rolled_back += len(removed)
        self._next_index = index + 1
        return sorted(removed)

    def __len__(self) -> int:
        return len(self._checkpoints)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StableStorage(pid={self._pid}, retained={self.retained_indices()})"
        )
