"""``repro.api`` — the one-stop programmatic façade of the repro toolkit.

Three verbs cover the project's surface without touching subsystem modules::

    from repro import api

    spec = api.load_spec("sweep.json")            # or a dict, or a built object
    run = api.run(spec, store="sweep.sqlite")     # campaign -> CampaignRun
    rows = api.query("sweep.sqlite", "retained-winner")

:func:`load_spec` turns a JSON file or mapping into the matching typed
configuration — a :class:`~repro.scenarios.campaign.spec.CampaignSpec`, a
:class:`~repro.simulation.SimulationConfig` (simulated or live), an
:class:`~repro.explore.ExploreConfig` or a :class:`~repro.fuzz.FuzzSpec` —
inferring the kind from the document's shape (an explicit ``"kind"`` key
wins).  :func:`run` executes any of them; :func:`query` answers questions
over a result store.

Validation is front-loaded and precise: a bad document raises
:class:`SpecValidationError` naming the offending field and, where the set
is enumerable, the accepted values — *before* anything expensive runs.
"""

from __future__ import annotations

import json
import random
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.explore.program import ExploreConfig, ProgramStep, checkpoint, crash, send
from repro.fuzz.fuzzer import FuzzSpec, builtin_targets, resolve_target
from repro.gc import available_collectors
from repro.protocols import available_protocols
from repro.scenarios.campaign.executor import CampaignRun, run_campaign
from repro.scenarios.campaign.spec import (
    CampaignSpec,
    FailureModelSpec,
    spec_from_mapping,
)
from repro.simulation import (
    FailureSchedule,
    SimulationConfig,
    SimulationResult,
    SimulationRunner,
    available_workloads,
    make_workload,
    network_config_from_mapping,
)

#: The closed vocabularies of the non-registry fields.
_AUDITS = ("off", "safety", "full")
_BACKENDS = ("sim", "live")
_KINDS = ("campaign", "simulation", "explore", "live", "fuzz")
_STEP_OPS = ("send", "checkpoint", "crash")

AnySpec = Union[CampaignSpec, SimulationConfig, ExploreConfig, "FuzzSpec"]


class SpecValidationError(ValueError):
    """A specification document failed validation.

    ``field`` names the offending entry; ``accepted`` (when the domain is
    enumerable) lists the values that would have been valid.  The rendered
    message carries both, so the exception is actionable even when only its
    string surfaces (CLI wrappers, logs).
    """

    def __init__(
        self,
        field: str,
        message: str,
        *,
        accepted: Optional[Sequence[Any]] = None,
    ) -> None:
        """Record ``field``/``accepted`` and render the combined message."""
        self.field = field
        self.accepted = list(accepted) if accepted is not None else None
        rendered = f"{field}: {message}"
        if self.accepted is not None:
            rendered += f" (accepted: {', '.join(str(a) for a in self.accepted)})"
        super().__init__(rendered)


def _check_choice(field: str, value: Any, accepted: Sequence[Any]) -> None:
    if value not in accepted:
        raise SpecValidationError(
            field, f"unknown value {value!r}", accepted=accepted
        )


def _entry_name(entry: Any) -> Any:
    """An axis entry's registry name — bare string or a ``{"name": ...}``."""
    if isinstance(entry, Mapping):
        return entry.get("name")
    return entry


def _validate_campaign_names(document: Mapping[str, Any]) -> None:
    """Check every registry-backed axis entry before the spec layer runs.

    The spec layer validates structure; this pass validates *vocabulary*, so
    a typoed collector fails with the accepted list instead of a deep
    factory error mid-expansion.
    """
    registries: Tuple[Tuple[str, Sequence[str]], ...] = (
        ("protocols", available_protocols()),
        ("collectors", available_collectors()),
        ("workloads", available_workloads()),
        ("backends", _BACKENDS),
    )
    for field, accepted in registries:
        entries = document.get(field)
        if entries is None or isinstance(entries, (str, bytes)):
            continue  # shape errors are the spec layer's to report
        for index, entry in enumerate(entries):
            name = _entry_name(entry)
            if isinstance(name, str) and name not in accepted:
                raise SpecValidationError(
                    f"{field}[{index}]",
                    f"unknown value {name!r}",
                    accepted=accepted,
                )
    if "audit" in document:
        _check_choice("audit", document["audit"], _AUDITS)


def _campaign_spec(document: Mapping[str, Any]) -> CampaignSpec:
    _validate_campaign_names(document)
    if "name" not in document:
        raise SpecValidationError("name", "a campaign spec needs a name")
    try:
        return spec_from_mapping(document)
    except SpecValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecValidationError("spec", str(exc)) from exc


def _failure_schedule(
    value: Any, *, num_processes: int, duration: float, seed: int
) -> FailureSchedule:
    """A single run's ``failures`` entry: count, ``[time, pid]`` pairs or a
    declarative failure model (``{"model": "churn", ...}``)."""
    if value is None:
        return FailureSchedule.none()
    if isinstance(value, Mapping):
        params = dict(value)
        model = params.pop("model", None)
        if model is None:
            raise SpecValidationError(
                "failures", "a failure-model mapping needs a 'model' key"
            )
        try:
            return FailureModelSpec.of(str(model), params).schedule(
                num_processes=num_processes,
                duration=duration,
                rng=random.Random(seed),
            )
        except (TypeError, ValueError) as exc:
            raise SpecValidationError("failures", str(exc)) from exc
    if isinstance(value, int):
        if value == 0:
            return FailureSchedule.none()
        return FailureSchedule.random(
            num_processes=num_processes,
            duration=duration,
            count=value,
            rng=random.Random(seed),
        )
    try:
        return FailureSchedule.of((float(t), int(pid)) for t, pid in value)
    except (TypeError, ValueError) as exc:
        raise SpecValidationError(
            "failures",
            f"expected a crash count, [time, pid] pairs or a failure model, "
            f"got {value!r}",
        ) from exc


def _simulation_config(
    document: Mapping[str, Any], *, backend: Optional[str] = None
) -> SimulationConfig:
    known = {
        "name", "num_processes", "duration", "workload", "protocol",
        "collector", "collector_options", "network", "failures", "seed",
        "sample_interval", "audit", "backend", "trace",
    }
    unknown = sorted(set(document) - known)
    if unknown:
        raise SpecValidationError(
            unknown[0], "unknown simulation spec key", accepted=sorted(known)
        )

    workload_entry = document.get("workload", "uniform-random")
    workload_name = _entry_name(workload_entry)
    workload_params: Mapping[str, Any] = (
        workload_entry.get("params", {}) if isinstance(workload_entry, Mapping) else {}
    )
    _check_choice("workload", workload_name, available_workloads())
    _check_choice("protocol", document.get("protocol", "fdas"), available_protocols())
    _check_choice("collector", document.get("collector", "rdt-lgc"), available_collectors())
    _check_choice("audit", document.get("audit", "off"), _AUDITS)
    resolved_backend = backend or document.get("backend", "sim")
    _check_choice("backend", resolved_backend, _BACKENDS)

    num_processes = int(document.get("num_processes", 4))
    duration = float(document.get("duration", 120.0))
    seed = int(document.get("seed", 0))
    try:
        network = network_config_from_mapping(dict(document.get("network", {})))
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecValidationError("network", str(exc)) from exc
    try:
        return SimulationConfig(
            num_processes=num_processes,
            duration=duration,
            workload=make_workload(workload_name, **dict(workload_params)),
            protocol=document.get("protocol", "fdas"),
            collector=document.get("collector", "rdt-lgc"),
            collector_options=dict(document.get("collector_options", {})),
            network=network,
            failures=_failure_schedule(
                document.get("failures"),
                num_processes=num_processes,
                duration=duration,
                seed=seed,
            ),
            seed=seed,
            sample_interval=document.get("sample_interval"),
            audit=document.get("audit", "off"),
            trace_path=document.get("trace"),
            backend=resolved_backend,
        )
    except SpecValidationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecValidationError("spec", str(exc)) from exc


def _program_step(entry: Any, index: int) -> ProgramStep:
    if not isinstance(entry, Mapping):
        raise SpecValidationError(
            f"program[{index}]",
            f"expected a mapping like {{'op': 'send', 'pid': 0, 'target': 1}}, "
            f"got {entry!r}",
        )
    op = entry.get("op")
    _check_choice(f"program[{index}].op", op, _STEP_OPS)
    pid = entry.get("pid")
    if not isinstance(pid, int):
        raise SpecValidationError(f"program[{index}].pid", "an integer pid is required")
    if op == "send":
        target = entry.get("target")
        if not isinstance(target, int):
            raise SpecValidationError(
                f"program[{index}].target", "send steps need an integer target"
            )
        return send(pid, target)
    if op == "checkpoint":
        return checkpoint(pid)
    return crash(pid)


def _explore_config(document: Mapping[str, Any]) -> ExploreConfig:
    known = {
        "name", "num_processes", "program", "protocol", "collector",
        "collector_options", "seed", "step_gap",
    }
    unknown = sorted(set(document) - known)
    if unknown:
        raise SpecValidationError(
            unknown[0], "unknown explore spec key", accepted=sorted(known)
        )
    _check_choice("protocol", document.get("protocol", "fdas"), available_protocols())
    _check_choice("collector", document.get("collector", "rdt-lgc"), available_collectors())
    program_entries = document.get("program")
    if not isinstance(program_entries, Sequence) or isinstance(program_entries, (str, bytes)):
        raise SpecValidationError(
            "program", "an explore spec needs a list of program steps"
        )
    program = tuple(
        _program_step(entry, index) for index, entry in enumerate(program_entries)
    )
    options = document.get("collector_options", {})
    try:
        return ExploreConfig(
            num_processes=int(document.get("num_processes", 2)),
            program=program,
            protocol=document.get("protocol", "fdas"),
            collector=document.get("collector", "rdt-lgc"),
            collector_options=tuple(sorted(dict(options).items())),
            seed=int(document.get("seed", 0)),
            step_gap=float(document.get("step_gap", 1.0)),
        )
    except (TypeError, ValueError) as exc:
        raise SpecValidationError("spec", str(exc)) from exc


def _fuzz_spec(document: Mapping[str, Any]) -> FuzzSpec:
    """A fuzz campaign: a built-in ``target`` name *or* an inline program.

    ``{"kind": "fuzz", "target": "ring", "budget": 500}`` fuzzes a built-in
    target; an explore-shaped document (``program``, ``collector``, ...)
    plus the fuzz knobs fuzzes that custom configuration.
    """
    fuzz_keys = {"target", "budget", "seed", "corpus", "guided", "minimize"}
    explore_keys = {
        "name", "num_processes", "program", "protocol", "collector",
        "collector_options", "step_gap",
    }
    unknown = sorted(set(document) - fuzz_keys - explore_keys)
    if unknown:
        raise SpecValidationError(
            unknown[0],
            "unknown fuzz spec key",
            accepted=sorted(fuzz_keys | explore_keys),
        )
    target_name = document.get("target")
    if target_name is not None and "program" in document:
        raise SpecValidationError(
            "target", "give either a built-in target or an inline program, not both"
        )
    if target_name is not None:
        targets = builtin_targets()
        _check_choice("target", target_name, sorted(targets))
        target = targets[target_name]
    elif "program" in document:
        explore_doc = {
            key: value for key, value in document.items() if key in explore_keys
        }
        # The fuzzer's own seed is a mutation-stream seed, not the
        # simulation seed; the embedded configuration keeps the default.
        target = resolve_target(_explore_config(explore_doc))
    else:
        raise SpecValidationError(
            "target", "a fuzz spec needs a built-in target or an inline program"
        )
    try:
        return FuzzSpec(
            target=target,
            budget=int(document.get("budget", 300)),
            seed=int(document.get("seed", 0)),
            corpus=document.get("corpus"),
            guided=bool(document.get("guided", True)),
            minimize=bool(document.get("minimize", True)),
        )
    except (TypeError, ValueError) as exc:
        raise SpecValidationError("spec", str(exc)) from exc


_CAMPAIGN_AXES = frozenset(
    {"protocols", "collectors", "workloads", "failure_counts", "networks",
     "seeds", "backends", "base_seed"}
)


def _infer_kind(document: Mapping[str, Any]) -> str:
    if _CAMPAIGN_AXES & set(document):
        return "campaign"
    if "target" in document or "budget" in document:
        return "fuzz"
    if "program" in document:
        return "explore"
    return "simulation"


def load_spec(
    source: Union[str, Mapping[str, Any], AnySpec], *, kind: Optional[str] = None
) -> AnySpec:
    """Turn ``source`` into the matching typed configuration.

    ``source`` may be a path to a JSON document, a mapping, or an
    already-built :class:`CampaignSpec` / :class:`SimulationConfig` /
    :class:`ExploreConfig` (returned unchanged).  The document's ``"kind"``
    key — or the ``kind`` argument, which wins — selects ``"campaign"``,
    ``"simulation"``, ``"explore"``, ``"live"`` (a simulation on the live
    backend) or ``"fuzz"``; without either the kind is inferred: campaign
    axes mean a campaign, a ``"target"`` or ``"budget"`` a fuzz spec, a
    ``"program"`` an explore spec, anything else a single simulation.

    Args:
        source: a JSON file path, a mapping, or an already-built spec.
        kind: explicit spec kind (``"campaign"``, ``"simulation"``,
            ``"explore"``, ``"live"``, ``"fuzz"``); wins over the
            document's ``"kind"`` key and over inference.

    Returns:
        The matching typed configuration object.

    Raises:
        SpecValidationError: for unreadable/invalid documents, unknown
            kinds or keys — always naming the offending field and, where
            the domain is enumerable, the accepted values.
    """
    if isinstance(source, (CampaignSpec, SimulationConfig, ExploreConfig, FuzzSpec)):
        return source
    if isinstance(source, str):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as exc:
            raise SpecValidationError("source", f"cannot read {source!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SpecValidationError("source", f"{source!r} is not JSON: {exc}") from exc
    elif isinstance(source, Mapping):
        document = dict(source)
    else:
        raise SpecValidationError(
            "source",
            f"expected a path, mapping or spec object, got {type(source).__name__}",
        )
    if not isinstance(document, dict):
        raise SpecValidationError("source", "the document must be a JSON object")

    declared = document.pop("kind", None)
    resolved = kind or declared or _infer_kind(document)
    _check_choice("kind", resolved, _KINDS)
    if resolved == "campaign":
        return _campaign_spec(document)
    if resolved == "explore":
        return _explore_config(document)
    if resolved == "fuzz":
        return _fuzz_spec(document)
    return _simulation_config(
        document, backend="live" if resolved == "live" else None
    )


def run(
    spec: Union[str, Mapping[str, Any], AnySpec],
    *,
    store: Optional[str] = None,
    traces: Optional[str] = None,
    workers: int = 1,
    shard: Optional[Tuple[int, int]] = None,
    retry_failed: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    max_executions: Optional[int] = None,
) -> Any:
    """Execute ``spec`` (anything :func:`load_spec` accepts) and return its
    native result object.

    * a campaign runs through :func:`run_campaign` (``store``, ``traces``,
      ``workers``, ``shard``, ``retry_failed`` and ``progress`` apply) and
      returns a :class:`CampaignRun`;
    * a simulation runs through :class:`SimulationRunner` — or, when its
      backend is ``"live"``, on real OS processes — and returns a
      :class:`SimulationResult`;
    * an explore config walks its schedule space (``max_executions`` caps
      the budget) and returns an ``ExplorationResult``;
    * a fuzz spec runs the coverage-guided fuzzer
      (:func:`repro.fuzz.fuzz`; ``max_executions`` overrides its budget)
      and returns a :class:`~repro.fuzz.FuzzResult`.

    Args:
        spec: anything :func:`load_spec` accepts.
        store: campaign only — SQL result-store path (claim/lease fabric).
        traces: campaign only — directory for per-cell trace artifacts.
        workers: campaign only — process-pool width.
        shard: campaign only — ``(k, n)`` grid shard.
        retry_failed: campaign only — re-execute failed cells in the store.
        progress: campaign only — ``(done, total)`` callback.
        max_executions: explore/fuzz only — execution budget cap.

    Returns:
        The spec's native result object, as listed above.

    Raises:
        SpecValidationError: when an option does not apply to the spec's
            kind — options are never silently dropped.
    """
    loaded = load_spec(spec)
    if isinstance(loaded, CampaignSpec):
        if max_executions is not None:
            raise SpecValidationError(
                "max_executions", "only applies to explore specs"
            )
        return run_campaign(
            loaded,
            store_path=store,
            workers=workers,
            trace_dir=traces,
            shard=shard,
            retry_failed=retry_failed,
            progress=progress,
        )
    campaign_only = {
        "store": store, "traces": traces, "shard": shard,
        "retry_failed": retry_failed or None, "progress": progress,
    }
    used = sorted(name for name, value in campaign_only.items() if value)
    if isinstance(loaded, FuzzSpec):
        if used:
            raise SpecValidationError(used[0], "only applies to campaign specs")
        from repro.fuzz.fuzzer import fuzz as run_fuzz

        return run_fuzz(
            loaded.target,
            budget=max_executions if max_executions is not None else loaded.budget,
            seed=loaded.seed,
            corpus=loaded.corpus,
            guided=loaded.guided,
            minimize=loaded.minimize,
        )
    if isinstance(loaded, ExploreConfig):
        if used:
            raise SpecValidationError(used[0], "only applies to campaign specs")
        from repro.explore import explore

        return explore(loaded, max_executions=max_executions)
    if used:
        raise SpecValidationError(used[0], "only applies to campaign specs")
    if max_executions is not None:
        raise SpecValidationError("max_executions", "only applies to explore specs")
    if loaded.backend == "live":
        from repro.live import run_live

        return run_live(loaded).result
    return SimulationRunner(loaded).run()


def query(
    store: str, name: Optional[str] = None, **params: Any
) -> Union[List[Mapping[str, Any]], Any]:
    """Answer a canned question over a result store.

    With a ``name`` from :data:`repro.scenarios.campaign.queries.QUERIES`
    this returns the query's rows (``params`` override its defaults).
    Without one it returns the byte-identical campaign aggregate — a
    :class:`~repro.scenarios.campaign.aggregate.CampaignSummary` — honouring
    ``group_by`` and ``allow_incomplete``.

    Args:
        store: path to a SQL result store.
        name: a canned query name, ``"aggregate"``, or ``None``.
        **params: query parameters, overriding the query's defaults.

    Returns:
        The query's rows (a list of mappings), or a ``CampaignSummary``
        for the aggregate form.

    Raises:
        SpecValidationError: for unknown query names or parameters.
    """
    from repro.scenarios.campaign.queries import QUERIES, run_query, store_summary

    if name is None or name == "aggregate":
        group_by = params.pop("group_by", None)
        allow_incomplete = bool(params.pop("allow_incomplete", False))
        if params:
            raise SpecValidationError(
                sorted(params)[0],
                "unknown aggregate option",
                accepted=["group_by", "allow_incomplete"],
            )
        return store_summary(
            store, group_by=group_by, allow_incomplete=allow_incomplete
        )
    if name not in QUERIES:
        raise SpecValidationError(
            "name", f"unknown query {name!r}", accepted=sorted(QUERIES)
        )
    try:
        return run_query(store, name, **params)
    except (KeyError, ValueError) as exc:
        raise SpecValidationError("params", str(exc)) from exc


__all__ = [
    "AnySpec",
    "SpecValidationError",
    "load_spec",
    "query",
    "run",
]
