"""``python -m repro`` — the unified command-line façade.

Thin launcher for :mod:`repro.cli`; see that module (or
``python -m repro --help``) for the subcommands, shared flags and exit-code
semantics.
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
