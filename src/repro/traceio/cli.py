"""Command-line front end of the trace subsystem.

Record a campaign sweep with per-cell trace artifacts::

    python -m repro trace record --traces results/traces --smoke
    python -m repro trace record --traces results/traces --spec my_sweep.json \\
        --store results/sweep.jsonl --out results/ --workers 8

Re-aggregate a recorded sweep from its artifacts alone (no re-simulation;
byte-identical CSV/JSON to the live run)::

    python -m repro trace replay results/traces --out results/replayed

Rehydrate a single trace into its full analysis state, or audit artifacts::

    python -m repro trace replay results/traces/<cell>.trace.jsonl
    python -m repro trace replay results/traces --verify

Peek at a trace without replaying it, or compare two traces::

    python -m repro trace inspect results/traces/<cell>.trace.jsonl
    python -m repro trace diff a.trace.jsonl b.trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.traceio.format import RunProvenance, TraceError
from repro.traceio.reader import (
    TraceReader,
    analysis_table,
    campaign_records_from_traces,
    verify_trace,
)


def _progress(quiet: bool, label: str):
    def progress(done: int, total: int) -> None:
        if not quiet:
            print(f"\r{label}: {done}/{total} cells", end="", file=sys.stderr, flush=True)

    return progress


def _write_aggregates(summary, out_dir: str, name: str) -> None:
    os.makedirs(out_dir, exist_ok=True)
    csv_path = os.path.join(out_dir, f"{name}.csv")
    json_path = os.path.join(out_dir, f"{name}.json")
    with open(csv_path, "w", encoding="utf-8") as handle:
        handle.write(summary.to_csv())
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(summary.to_json())
    print(f"aggregates written to {csv_path} and {json_path}")


# ----------------------------------------------------------------------
# record
# ----------------------------------------------------------------------
def _cmd_record(args: argparse.Namespace) -> int:
    from repro.scenarios.campaign import aggregate_campaign, run_campaign, spec_from_mapping
    from repro.scenarios.experiments import smoke_campaign_spec

    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = spec_from_mapping(json.load(handle))
    else:
        spec = smoke_campaign_spec()
    run = run_campaign(
        spec,
        store_path=args.store,
        workers=args.workers,
        trace_dir=args.traces,
        progress=_progress(args.quiet, spec.name),
    )
    if not args.quiet:
        print(file=sys.stderr)
    failed = run.failed_records
    for record in failed[:10]:
        print(f"failed cell {record['cell_id']}: {record['error']}", file=sys.stderr)
    if len(failed) == run.cell_count:
        print("every cell failed; nothing to aggregate", file=sys.stderr)
        return 1
    summary = aggregate_campaign(run.records)
    print(summary.table().render())
    print(
        f"{run.cell_count} cells ({run.executed} executed, {run.resumed} resumed); "
        f"traces in {args.traces}"
    )
    if args.out:
        _write_aggregates(summary, args.out, spec.name)
    return 0


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def _replay_directory(args: argparse.Namespace) -> int:
    from repro.scenarios.campaign import DEFAULT_GROUP_BY, aggregate_campaign

    group_by = tuple(
        axis.strip() for axis in (args.group_by or "").split(",") if axis.strip()
    ) or DEFAULT_GROUP_BY
    records = campaign_records_from_traces(args.path)
    valid_axes = set(records[0]["params"]) if records else set()
    unknown = [axis for axis in group_by if axis not in valid_axes]
    if unknown:
        print(
            f"error: unknown --group-by axis {', '.join(unknown)}; "
            f"available: {', '.join(sorted(valid_axes))}",
            file=sys.stderr,
        )
        return 2
    if args.verify:
        violations: List[str] = []
        for record in records:
            violations.extend(verify_trace(os.path.join(args.path, record["trace"])))
        if violations:
            for violation in violations:
                print(f"VERIFY: {violation}", file=sys.stderr)
            return 1
        print(f"{len(records)} trace(s) verified — ok")
    failed = [r for r in records if r.get("status") != "ok"]
    for record in failed[:10]:
        print(f"failed cell {record['cell_id']}: {record['error']}", file=sys.stderr)
    if len(failed) == len(records):
        print("every recorded cell failed; nothing to aggregate", file=sys.stderr)
        return 1
    summary = aggregate_campaign(records, group_by=group_by)
    print(summary.table().render())
    print(f"{len(records)} cells re-aggregated from traces (no re-simulation)")
    if args.out:
        _write_aggregates(summary, args.out, summary.campaign or "replayed")
    return 0


def _replay_file(args: argparse.Namespace) -> int:
    if args.verify:
        violations = verify_trace(args.path)
        if violations:
            for violation in violations:
                print(f"VERIFY: {violation}", file=sys.stderr)
            return 1
    replayed = TraceReader(args.path).replay(allow_partial=args.partial)
    header = replayed.header
    print(
        f"{args.path}: {header['protocol']} / {header['collector']} / "
        f"seed {header['seed']} / {replayed.num_processes} processes "
        f"[{replayed.status}]"
    )
    title = f"Replayed: {os.path.basename(args.path)}"
    print(analysis_table(replayed.recorder, title=title).render())
    if replayed.recovery_plans:
        print(f"{len(replayed.recovery_plans)} recovery session(s) replayed:")
        for plan in replayed.recovery_plans:
            line = ",".join(str(i) for i in plan.recovery_line.indices)
            print(f"  faulty {set(plan.faulty)} -> recovery line ({line})")
    metrics = replayed.metrics
    if metrics is not None:
        rendered = ", ".join(f"{k}={v}" for k, v in metrics.items())
        print(f"metrics: {rendered}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if os.path.isdir(args.path):
        return _replay_directory(args)
    return _replay_file(args)


# ----------------------------------------------------------------------
# inspect
# ----------------------------------------------------------------------
def _cmd_inspect(args: argparse.Namespace) -> int:
    reader = TraceReader(args.path)
    header, footer = reader.summary()
    print(f"{args.path}:")
    print(f"  format:       {header['format']} v{header['version']}")
    print(f"  processes:    {header['num_processes']}")
    print(f"  seed:         {header['seed']}")
    print(f"  protocol:     {header['protocol']}")
    print(f"  collector:    {header['collector']} {header.get('collector_options') or ''}")
    print(f"  workload:     {header.get('workload')}")
    print(f"  duration:     {header.get('duration')}")
    network = header.get("network") or {}
    if network.get("channel"):
        print(f"  channel:      {network['channel'].get('kind')} {network['channel']}")
    if network.get("partitions"):
        windows = ", ".join(
            f"[{p['start']:g},{p['end']:g})" for p in network["partitions"]
        )
        print(f"  partitions:   {windows}")
    if network.get("fifo"):
        print("  discipline:   FIFO")
    schedule = header.get("failure_schedule") or []
    if schedule:
        crashes = ", ".join(f"p{pid}@{time:g}" for time, pid in schedule)
        print(f"  failures:     {crashes}")
    meta = header.get("meta") or {}
    provenance = RunProvenance.from_meta(meta)
    if provenance is not None and provenance.kind == "campaign":
        print(
            f"  campaign:     {provenance.fields.get('campaign')} "
            f"cell {provenance.fields['cell_id']}"
        )
    elif provenance is not None and provenance.kind == "live":
        backend = header.get("backend", "live")
        print(f"  backend:      {backend} ({provenance.fields})")
    counts: Dict[str, int] = {}
    try:
        for _, parsed in reader.lines():
            if isinstance(parsed, list) and parsed:
                counts[parsed[0]] = counts.get(parsed[0], 0) + 1
    except TraceError:
        pass
    names = {"s": "sends", "r": "receives", "d": "duplicates", "c": "checkpoints",
             "i": "internal", "v": "recoveries", "S": "samples",
             "p": "partition events"}
    rendered = ", ".join(
        f"{counts[tag]} {names.get(tag, tag)}" for tag in sorted(counts)
    )
    print(f"  records:      {rendered or 'none'}")
    # Always rendered, "none" included: crash-free traces (counterexamples
    # from the explorer's crash-free sweeps, zero-failure campaign cells)
    # must inspect uniformly with crashing ones.
    sessions = counts.get("v", 0)
    print(f"  recoveries:   {sessions if sessions else 'none'}")
    if footer is None:
        print("  footer:       MISSING — trace is truncated")
        return 1
    print(f"  status:       {footer.get('status')}")
    if footer.get("error"):
        print(f"  error:        {footer['error']}")
    metrics = footer.get("metrics")
    if metrics:
        rendered = ", ".join(f"{k}={v}" for k, v in metrics.items())
        print(f"  metrics:      {rendered}")
    return 0


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def _diff_documents(label: str, a: Any, b: Any, diffs: List[str]) -> None:
    if a == b:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                diffs.append(f"{label}.{key}: {a.get(key)!r} != {b.get(key)!r}")
    else:
        diffs.append(f"{label}: {a!r} != {b!r}")


def _cmd_diff(args: argparse.Namespace) -> int:
    readers = (TraceReader(args.a), TraceReader(args.b))
    summaries = [reader.summary() for reader in readers]
    diffs: List[str] = []
    _diff_documents("header", summaries[0][0], summaries[1][0], diffs)
    _diff_documents("footer", summaries[0][1], summaries[1][1], diffs)

    def _records(reader: TraceReader) -> List[Any]:
        body = []
        try:
            for _, parsed in reader.lines():
                if isinstance(parsed, list):
                    body.append(parsed)
        except TraceError:
            pass
        return body

    body_a, body_b = _records(readers[0]), _records(readers[1])
    if len(body_a) != len(body_b):
        diffs.append(f"records: {len(body_a)} != {len(body_b)}")
    shown = 0
    for index, (ra, rb) in enumerate(zip(body_a, body_b)):
        if ra != rb:
            if shown < args.limit:
                diffs.append(f"record {index + 1}: {ra!r} != {rb!r}")
            shown += 1
    if shown > args.limit:
        diffs.append(f"... and {shown - args.limit} more divergent records")
    if not diffs:
        print(f"{args.a} and {args.b} are equivalent")
        return 0
    for diff in diffs:
        print(diff)
    return 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Record, replay, inspect and diff persisted simulation traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="run a campaign sweep with per-cell trace artifacts"
    )
    record.add_argument(
        "--spec", default=None,
        help="JSON campaign description (default: the smoke campaign grid)",
    )
    record.add_argument(
        "--traces", default="traces",
        help="directory for the per-cell trace artifacts (default: traces)",
    )
    record.add_argument(
        "--store", default=None,
        help="optional JSONL result store (resume semantics, as in repro.campaign)",
    )
    record.add_argument(
        "--out", default=None,
        help="directory for the aggregate tables as CSV and JSON",
    )
    record.add_argument("--workers", type=int, default=1, help="pool processes")
    record.add_argument("--quiet", action="store_true", help="suppress progress output")
    record.set_defaults(func=_cmd_record)

    replay = commands.add_parser(
        "replay",
        help="replay one trace file, or re-aggregate a directory of cell traces",
    )
    replay.add_argument("path", help="a .trace.jsonl file or a directory of them")
    replay.add_argument(
        "--out", default=None,
        help="directory for the re-aggregated tables (directory mode)",
    )
    replay.add_argument(
        "--group-by", default=None,
        help="comma-separated grouping axes for the re-aggregation "
             "(directory mode; default: workload,collector,failures — match "
             "the grouping of the live sweep to compare tables byte for byte)",
    )
    replay.add_argument(
        "--verify", action="store_true",
        help="audit trace self-consistency before reporting",
    )
    replay.add_argument(
        "--partial", action="store_true",
        help="tolerate a truncated trace (replay the intact prefix)",
    )
    replay.set_defaults(func=_cmd_replay)

    inspect = commands.add_parser(
        "inspect", help="print a trace's provenance, record counts and metrics"
    )
    inspect.add_argument("path", help="a .trace.jsonl file")
    inspect.set_defaults(func=_cmd_inspect)

    diff = commands.add_parser("diff", help="compare two traces record by record")
    diff.add_argument("a")
    diff.add_argument("b")
    diff.add_argument(
        "--limit", type=int, default=5, help="max divergent records to print"
    )
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
