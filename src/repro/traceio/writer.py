"""Streaming trace persistence.

:class:`TraceWriter` implements the :class:`repro.simulation.trace.TraceSink`
protocol, so attaching one to a :class:`~repro.simulation.trace.TraceRecorder`
turns every recorded occurrence into an appended-and-flushed JSONL record the
moment it happens — a killed run leaves a readable (partial) trace, exactly
like the campaign store's crash semantics.  The runner additionally streams
storage-occupancy samples through :meth:`write_sample` and closes the file
with a footer carrying the run's result record and per-cell metrics
(:meth:`finalize`) or the failure that aborted it (:meth:`abort`).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping, Optional, Sequence, TYPE_CHECKING

from repro.traceio.format import (
    TAG_CHECKPOINT,
    TAG_DUPLICATE,
    TAG_INTERNAL,
    TAG_JOIN,
    TAG_LEAVE,
    TAG_PARTITION,
    TAG_RECEIVE,
    TAG_RECOVERY,
    TAG_SAMPLE,
    TAG_SEND,
    make_footer,
    make_header,
    make_scripted_header,
    result_to_record,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.rollback_plan import RollbackPlan
    from repro.simulation.runner import SimulationConfig, SimulationResult


class TraceWriter:
    """Appends one run's trace to ``path``, header first, footer last."""

    def __init__(
        self,
        path: str,
        config: Optional["SimulationConfig"] = None,
        *,
        meta: Optional[Mapping[str, Any]] = None,
        header: Optional[Dict[str, Any]] = None,
    ) -> None:
        if (config is None) == (header is None):
            raise ValueError("pass exactly one of config or header")
        self._path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._records = 0
        self._events = 0
        self._closed = False
        self._handle = open(path, "w", encoding="utf-8")
        if header is None:
            assert config is not None
            header = make_header(config, meta=meta)
        self._write_line(header)

    @classmethod
    def scripted(
        cls,
        path: str,
        num_processes: int,
        *,
        seed: Optional[int] = None,
        workload: str = "scripted",
        meta: Optional[Mapping[str, Any]] = None,
    ) -> "TraceWriter":
        """A writer for recorders driven outside the simulation runner."""
        return cls(
            path,
            header=make_scripted_header(
                num_processes, seed=seed, workload=workload, meta=meta
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Location of the trace file."""
        return self._path

    @property
    def closed(self) -> bool:
        """True once the footer was written (or the writer abandoned)."""
        return self._closed

    # ------------------------------------------------------------------
    # TraceSink protocol (driven by the TraceRecorder)
    # ------------------------------------------------------------------
    def on_send(self, sender: int, receiver: int, message_id: int, time: float) -> None:
        """Persist an application send."""
        self._events += 1
        self._write_record([TAG_SEND, sender, receiver, message_id, time])

    def on_receive(self, message_id: int, time: float) -> None:
        """Persist a message delivery."""
        self._events += 1
        self._write_record([TAG_RECEIVE, message_id, time])

    def on_duplicate_receive(self, message_id: int, time: float) -> None:
        """Persist a duplicate delivery (at-least-once channels)."""
        self._events += 1
        self._write_record([TAG_DUPLICATE, message_id, time])

    def on_checkpoint(
        self,
        pid: int,
        index: int,
        dependency_vector: Sequence[int],
        *,
        forced: bool,
        time: float,
    ) -> None:
        """Persist a stable checkpoint and its stored dependency vector."""
        self._events += 1
        self._write_record(
            [TAG_CHECKPOINT, pid, index, 1 if forced else 0, time, list(dependency_vector)]
        )

    def on_internal(self, pid: int, time: float) -> None:
        """Persist an internal application event."""
        self._events += 1
        self._write_record([TAG_INTERNAL, pid, time])

    def on_join(self, pid: int, time: float) -> None:
        """Persist a membership join (``pid`` becomes an active member)."""
        self._write_record([TAG_JOIN, pid, time])

    def on_leave(self, pid: int, time: float) -> None:
        """Persist a membership leave (``pid`` retires permanently)."""
        self._write_record([TAG_LEAVE, pid, time])

    def on_recovery(self, plan: "RollbackPlan") -> None:
        """Persist a recovery session (the full rollback plan)."""
        self._write_record(
            [
                TAG_RECOVERY,
                list(plan.faulty),
                list(plan.recovery_line.indices),
                [[r.pid, r.rollback_index] for r in plan.rollbacks],
                list(plan.last_interval_vector),
            ]
        )

    # ------------------------------------------------------------------
    # Runner-driven records
    # ------------------------------------------------------------------
    def write_sample(self, time: float, retained_per_process: Sequence[int]) -> None:
        """Persist a storage-occupancy sample."""
        self._write_record([TAG_SAMPLE, time, list(retained_per_process)])

    def write_partition_event(
        self, kind: str, time: float, groups: Sequence[Sequence[int]]
    ) -> None:
        """Persist a partition transition (``kind`` is ``cut`` or ``heal``)."""
        self._write_record(
            [TAG_PARTITION, kind, time, [list(group) for group in groups]]
        )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finalize(
        self,
        result: "SimulationResult",
        *,
        final_volatile_dvs: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        """Write the ``ok`` footer (result record + metrics) and close."""
        record = result_to_record(result)
        self._finish(
            make_footer(
                records=self._records,
                events=self._events,
                status="ok",
                result=record,
                metrics=result.metrics_dict(),
                final_volatile_dvs=final_volatile_dvs,
            )
        )

    def seal(self) -> None:
        """Write an ``ok`` footer without a result record and close.

        For scripted captures (no :class:`SimulationResult` exists): the
        trace remains fully replayable, it just carries no per-cell metrics.
        """
        self._finish(
            make_footer(records=self._records, events=self._events, status="ok")
        )

    def abort(self, error: str) -> None:
        """Write an ``aborted`` footer carrying ``error`` and close.

        An aborted trace is still fully replayable up to the failure point —
        the property campaign sweeps rely on when an unsafe collector breaks
        recovery mid-cell.
        """
        self._finish(
            make_footer(
                records=self._records,
                events=self._events,
                status="aborted",
                error=error,
            )
        )

    def close(self) -> None:
        """Close without a footer (leaves a truncated trace); idempotent."""
        if not self._closed:
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and not self._closed:
            self.abort(f"{type(exc).__name__}: {exc}")
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish(self, footer: Dict[str, Any]) -> None:
        if self._closed:
            raise RuntimeError(f"trace writer for {self._path!r} is already closed")
        self._write_line(footer)
        self.close()

    def _write_record(self, record: list) -> None:
        self._records += 1
        self._write_line(record)

    def _write_line(self, document: Any) -> None:
        if self._closed:
            raise RuntimeError(f"trace writer for {self._path!r} is already closed")
        self._handle.write(json.dumps(document, separators=(",", ":")) + "\n")
        # Flushed per record so a killed run leaves everything it observed.
        self._handle.flush()
