"""Trace loading and replay.

:class:`TraceReader` parses a persisted trace and replays it, record by
record, into a fresh :class:`repro.simulation.trace.TraceRecorder` — driving
the exact public recording API the live simulation drove, in the exact order
it drove it.  Because the recorder's incremental CCP substrate is a pure
function of that call sequence, the replayed recorder is indistinguishable
from the live one: same event log, same checkpoint dependency vectors, same
message intervals, same memoised CCP, and therefore the same analysis cache
results (zigzag kernel, Theorem-1/2 retained sets, recovery lines).  The
round-trip property tests assert this byte for byte.

Cheap consumers (campaign re-aggregation, ``inspect`` on huge traces) can use
:meth:`TraceReader.summary` instead, which reads only the header and footer
without materialising a recorder.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.ccp.consistency import GlobalCheckpoint
from repro.ccp.pattern import CCP
from repro.recovery.rollback_plan import ProcessRollback, RollbackPlan
from repro.simulation.trace import TraceRecorder
from repro.traceio.format import (
    TAG_CHECKPOINT,
    TAG_DUPLICATE,
    TAG_INTERNAL,
    TAG_JOIN,
    TAG_LEAVE,
    TAG_PARTITION,
    TAG_RECEIVE,
    TAG_RECOVERY,
    TAG_SAMPLE,
    TAG_SEND,
    RunProvenance,
    TraceFormatError,
    TraceTruncatedError,
    metrics_from_record,
    validate_header,
    validate_record,
)


@dataclass
class ReplayedTrace:
    """A persisted trace rehydrated into live analysis objects."""

    path: str
    header: Dict[str, Any]
    recorder: TraceRecorder
    samples: List[Tuple[float, Tuple[int, ...]]]
    recovery_plans: List[RollbackPlan]
    footer: Optional[Dict[str, Any]]
    #: ``(kind, time, groups)`` of every partition cut/heal the run recorded.
    partition_events: List[Tuple[str, float, Tuple[Tuple[int, ...], ...]]] = field(
        default_factory=list
    )
    truncated: bool = False

    @property
    def num_processes(self) -> int:
        """Number of processes of the replayed execution."""
        return self.recorder.num_processes

    @property
    def meta(self) -> Dict[str, Any]:
        """The free-form provenance attached at record time (campaign cell…)."""
        return dict(self.header.get("meta") or {})

    @property
    def status(self) -> str:
        """``ok``/``aborted`` from the footer, or ``truncated`` without one."""
        if self.footer is None:
            return "truncated"
        return str(self.footer.get("status", "ok"))

    @property
    def result_record(self) -> Optional[Dict[str, Any]]:
        """The persisted scalar result record (None for aborted/truncated runs)."""
        if self.footer is None:
            return None
        return self.footer.get("result")

    @property
    def metrics(self) -> Optional[Dict[str, float]]:
        """The persisted per-cell campaign metrics, if the run completed."""
        if self.footer is None:
            return None
        return self.footer.get("metrics")

    def ccp(self, *, with_final_volatile_dvs: bool = False) -> CCP:
        """The CCP of the replayed execution.

        With ``with_final_volatile_dvs`` the footer's recorded end-of-run
        dependency vectors are attached to the volatile checkpoints, which is
        what makes the replayed pattern identical to the live run's *final*
        audit CCP (not just to its stable part).
        """
        if not with_final_volatile_dvs:
            return self.recorder.ccp()
        if self.footer is None or "final_volatile_dvs" not in self.footer:
            raise TraceTruncatedError(
                f"{self.path}: no final volatile vectors in the footer "
                f"(aborted or truncated trace)"
            )
        volatile = {
            pid: tuple(dv)
            for pid, dv in enumerate(self.footer["final_volatile_dvs"])
        }
        return self.recorder.ccp(volatile_dvs=volatile)


def _recorder_for_header(header: Dict[str, Any]) -> TraceRecorder:
    """A fresh recorder matching the header's capacity and membership.

    Headers without a ``membership`` key (every trace written before
    dynamic membership, and every static-membership trace after) get the
    plain all-members recorder; a ``membership`` key restricts the initial
    member set so replayed ``j``/``l`` records land on the same view
    state the live run had.
    """
    num_processes = header["num_processes"]
    description = header.get("membership")
    if not description:
        return TraceRecorder(num_processes)
    from repro.membership import MembershipSchedule

    schedule = MembershipSchedule.from_description(description)
    return TraceRecorder(
        num_processes,
        initial_members=schedule.initial_members(num_processes),
    )


class TraceReader:
    """Parses and replays one persisted trace file."""

    def __init__(self, path: str) -> None:
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        self._path = path

    @property
    def path(self) -> str:
        """Location of the trace file."""
        return self._path

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def lines(self) -> Iterator[Tuple[int, Any]]:
        """Yield ``(line_number, parsed_json)`` for every line of the file.

        Streams the file (one line in memory at a time — traces can be
        large).  A half-written *final* line (killed writer) terminates the
        iteration with :class:`TraceTruncatedError`; an unparseable line
        followed by further content raises :class:`TraceFormatError`.
        """
        bad: Optional[Tuple[int, json.JSONDecodeError]] = None
        with open(self._path, "r", encoding="utf-8") as handle:
            for index, raw in enumerate(handle):
                stripped = raw.strip()
                if not stripped:
                    continue
                if bad is not None:
                    line, exc = bad
                    raise TraceFormatError(
                        f"{self._path}:{line}: unparseable line"
                    ) from exc
                try:
                    parsed = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    bad = (index + 1, exc)
                    continue
                yield index + 1, parsed
        if bad is not None:
            line, exc = bad
            raise TraceTruncatedError(
                f"{self._path}: half-written final line "
                f"(record {line}) — the writer was killed"
            ) from exc

    def header(self) -> Dict[str, Any]:
        """Parse and validate the header line only."""
        for _, parsed in self.lines():
            return validate_header(parsed, path=self._path)
        raise TraceFormatError(f"{self._path}: empty trace file")

    def summary(self) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
        """``(header, footer)`` without replaying; footer is None if absent.

        Body records (JSON arrays) are skipped *without parsing* — this is
        the cheap path campaign re-aggregation and ``inspect`` take over
        large artifact sets.
        """
        header: Optional[Dict[str, Any]] = None
        footer: Optional[Dict[str, Any]] = None
        with open(self._path, "r", encoding="utf-8") as handle:
            for index, raw in enumerate(handle):
                stripped = raw.strip()
                if not stripped:
                    continue
                if footer is not None:
                    raise TraceFormatError(
                        f"{self._path}:{index + 1}: record after the footer"
                    )
                if header is not None and stripped.startswith("["):
                    continue  # body record — content irrelevant here
                try:
                    parsed = json.loads(stripped)
                except json.JSONDecodeError:
                    continue  # half-written tail of a killed writer
                if header is None:
                    header = validate_header(parsed, path=self._path)
                elif isinstance(parsed, dict):
                    if "footer" not in parsed:
                        raise TraceFormatError(
                            f"{self._path}:{index + 1}: unexpected object record"
                        )
                    footer = parsed["footer"]
        if header is None:
            raise TraceFormatError(f"{self._path}: empty trace file")
        return header, footer

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, *, allow_partial: bool = False) -> ReplayedTrace:
        """Rehydrate the trace into a fully-populated :class:`TraceRecorder`.

        ``allow_partial`` tolerates a missing footer and a half-written final
        record (the state of a killed run): everything before the damage is
        replayed and :attr:`ReplayedTrace.truncated` is set.  Without it, a
        trace that does not end in a footer whose counts match the body
        raises :class:`TraceTruncatedError`; structural damage anywhere
        raises :class:`TraceFormatError` in either mode.
        """
        header: Optional[Dict[str, Any]] = None
        footer: Optional[Dict[str, Any]] = None
        recorder: Optional[TraceRecorder] = None
        samples: List[Tuple[float, Tuple[int, ...]]] = []
        plans: List[RollbackPlan] = []
        partitions: List[Tuple[str, float, Tuple[Tuple[int, ...], ...]]] = []
        records = 0
        events = 0
        truncated = False
        try:
            for line, parsed in self.lines():
                if header is None:
                    header = validate_header(parsed, path=self._path)
                    recorder = _recorder_for_header(header)
                    continue
                if footer is not None:
                    raise TraceFormatError(
                        f"{self._path}:{line}: record after the footer"
                    )
                if isinstance(parsed, dict):
                    if "footer" not in parsed:
                        raise TraceFormatError(
                            f"{self._path}:{line}: unexpected object record"
                        )
                    footer = parsed["footer"]
                    continue
                record = validate_record(parsed, line=line, path=self._path)
                records += 1
                assert recorder is not None
                try:
                    events += self._apply(recorder, record, samples, plans, partitions)
                except TraceFormatError:
                    raise
                except Exception as exc:
                    raise TraceFormatError(
                        f"{self._path}:{line}: record is inconsistent with the "
                        f"replayed history ({type(exc).__name__}: {exc})"
                    ) from exc
        except TraceTruncatedError:
            if not allow_partial:
                raise
            truncated = True
        if header is None or recorder is None:
            raise TraceFormatError(f"{self._path}: empty trace file")
        if footer is None:
            truncated = True
            if not allow_partial:
                raise TraceTruncatedError(
                    f"{self._path}: no footer — the trace was cut short"
                )
        else:
            for key, expected, actual in (
                ("records", footer.get("records"), records),
                ("events", footer.get("events"), events),
            ):
                if expected != actual:
                    if allow_partial:
                        truncated = True
                        break
                    raise TraceTruncatedError(
                        f"{self._path}: footer says {expected} {key}, "
                        f"file contains {actual} — records are missing"
                    )
        return ReplayedTrace(
            path=self._path,
            header=header,
            recorder=recorder,
            samples=samples,
            recovery_plans=plans,
            footer=footer,
            partition_events=partitions,
            truncated=truncated,
        )

    def _apply(
        self,
        recorder: TraceRecorder,
        record: List[Any],
        samples: List[Tuple[float, Tuple[int, ...]]],
        plans: List[RollbackPlan],
        partitions: List[Tuple[str, float, Tuple[Tuple[int, ...], ...]]],
    ) -> int:
        """Replay one record; returns how many recorder events it produced."""
        tag = record[0]
        if tag == TAG_SEND:
            _, sender, receiver, message_id, time = record
            recorder.record_send(sender, receiver, message_id, time)
            return 1
        if tag == TAG_RECEIVE:
            _, message_id, time = record
            recorder.record_receive(message_id, time)
            return 1
        if tag == TAG_DUPLICATE:
            _, message_id, time = record
            recorder.record_duplicate_receive(message_id, time)
            return 1
        if tag == TAG_CHECKPOINT:
            _, pid, index, forced, time, dv = record
            recorder.record_checkpoint(
                pid, index, tuple(dv), forced=bool(forced), time=time
            )
            return 1
        if tag == TAG_INTERNAL:
            _, pid, time = record
            recorder.record_internal(pid, time)
            return 1
        if tag == TAG_JOIN:
            _, pid, time = record
            recorder.record_join(pid, time)
            return 0
        if tag == TAG_LEAVE:
            _, pid, time = record
            recorder.record_leave(pid, time)
            return 0
        if tag == TAG_RECOVERY:
            _, faulty, line_indices, rollbacks, last_interval = record
            plan = RollbackPlan(
                faulty=tuple(faulty),
                recovery_line=GlobalCheckpoint(tuple(line_indices)),
                rollbacks=tuple(
                    ProcessRollback(pid=pid, rollback_index=index)
                    for pid, index in rollbacks
                ),
                last_interval_vector=tuple(last_interval),
            )
            recorder.apply_recovery(plan)
            plans.append(plan)
            return 0
        if tag == TAG_SAMPLE:
            _, time, retained = record
            samples.append((time, tuple(retained)))
            return 0
        if tag == TAG_PARTITION:
            _, kind, time, groups = record
            partitions.append((kind, time, tuple(tuple(g) for g in groups)))
            return 0
        raise TraceFormatError(f"{self._path}: unknown record tag {tag!r}")


# ----------------------------------------------------------------------
# Analysis rendering
# ----------------------------------------------------------------------
def analysis_table(recorder: TraceRecorder, *, title: str = "Trace analysis"):
    """A per-process analysis table derived from a (replayed) recorder.

    One row per process: event and checkpoint counts, the recovery line of
    the single-fault failure ``{pid}`` and the ground-truth dependency vector
    of the last stable checkpoint.  The table is a pure function of the
    recorder state, so rendering it for a live run and for its replayed
    trace must produce byte-identical text — the round-trip tests' most
    end-to-end check.
    """
    from repro.analysis.tables import TextTable

    ccp = recorder.ccp()
    analyses = ccp.analyses
    useless = analyses.useless_checkpoints
    table = TextTable(
        ["pid", "events", "stable", "last", "useless", "recovery_line({pid})", "dv(last)"],
        title=title,
    )
    for pid in ccp.processes:
        last = ccp.last_stable(pid)
        if last >= 0:
            line = analyses.recovery_line(frozenset((pid,)))
            line_text = "(" + ",".join(str(i) for i in line.indices) + ")"
            dv = ccp.ground_truth_dv(ccp.last_stable_id(pid))
            dv_text = "(" + ",".join(str(v) for v in dv) + ")"
        else:
            line_text = "-"
            dv_text = "-"
        table.add_row(
            pid,
            len(recorder.log.history(pid)),
            len(ccp.stable_ids(pid)),
            last,
            sum(1 for cid in useless if cid.pid == pid),
            line_text,
            dv_text,
        )
    return table


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
def verify_trace(path: str) -> List[str]:
    """Self-consistency audit of one trace file (empty list == pass).

    Checks the invariants a freshly written trace must satisfy: the footer is
    present with matching record/event counts (replay enforces that), the
    replayed event log contains exactly the footer's event count, the body's
    recovery sessions match the footer result, and the footer metrics equal
    the metrics re-derived from the footer's result record.
    """
    violations: List[str] = []
    replayed = TraceReader(path).replay(allow_partial=True)
    if replayed.footer is None:
        return [f"{path}: trace is truncated (no footer)"]
    footer = replayed.footer
    if replayed.truncated:
        violations.append(
            f"{path}: footer counts disagree with the records present "
            f"(body is damaged or truncated)"
        )
    log_events = replayed.recorder.log.total_events()
    result = footer.get("result")
    if footer.get("status") == "ok":
        if result is None:
            # Scripted captures seal without a result; only a footer that
            # carries metrics but no result record is inconsistent.
            if footer.get("metrics") is not None:
                violations.append(
                    f"{path}: footer has metrics but no result record"
                )
        else:
            if result.get("recoveries") != len(replayed.recovery_plans):
                violations.append(
                    f"{path}: footer result says {result.get('recoveries')} "
                    f"recoveries, body replayed {len(replayed.recovery_plans)}"
                )
            expected = metrics_from_record(result)
            if footer.get("metrics") != expected:
                violations.append(
                    f"{path}: footer metrics disagree with the metrics "
                    f"re-derived from the footer result record"
                )
    # The recorder truncates history at recovery lines, so the log can hold
    # fewer events than were written — never more.
    if log_events > footer.get("events", 0):
        violations.append(
            f"{path}: replayed log has {log_events} events but the footer "
            f"only accounts for {footer.get('events')}"
        )
    return violations


# ----------------------------------------------------------------------
# Campaign re-aggregation
# ----------------------------------------------------------------------
TRACE_SUFFIX = ".trace.jsonl"


def campaign_records_from_traces(directory: str) -> List[Dict[str, Any]]:
    """Rebuild campaign store records from a directory of cell traces.

    Each ``*.trace.jsonl`` written by a traced campaign sweep carries its
    cell's identity, canonical parameters and grid-expansion index in the
    header ``meta`` and its metrics in the footer.  The returned records are
    sorted by expansion index, so aggregating them is byte-identical to
    aggregating the live sweep — no re-simulation involved.
    """
    names = sorted(n for n in os.listdir(directory) if n.endswith(TRACE_SUFFIX))
    if not names:
        raise FileNotFoundError(f"no {TRACE_SUFFIX} files in {directory!r}")
    entries: List[Tuple[Any, Dict[str, Any]]] = []
    for name in names:
        path = os.path.join(directory, name)
        header, footer = TraceReader(path).summary()
        meta = header.get("meta") or {}
        provenance = RunProvenance.from_meta(meta)
        if provenance is None or provenance.kind != "campaign":
            raise TraceFormatError(
                f"{path}: trace carries no campaign cell identity in its "
                f"header meta — was it written outside a campaign sweep?"
            )
        record: Dict[str, Any] = {
            "cell_id": provenance.fields["cell_id"],
            "params": provenance.fields["params"],
            "trace": name,
        }
        if footer is None:
            record["status"] = "failed"
            record["error"] = "trace is truncated (no footer)"
        elif footer.get("status") == "ok":
            record["status"] = "ok"
            record["metrics"] = footer["metrics"]
        else:
            record["status"] = "failed"
            record["error"] = footer.get("error", "aborted")
        order = provenance.fields.get("cell_index")
        entries.append(
            (order if order is not None else provenance.fields["cell_id"], record)
        )
    if all(isinstance(order, int) for order, _ in entries):
        entries.sort(key=lambda item: item[0])
    else:
        entries.sort(key=lambda item: str(item[0]))
    return [record for _, record in entries]
