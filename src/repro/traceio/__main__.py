"""``python -m repro.traceio`` — trace capture/replay from the shell.

Thin launcher for :mod:`repro.traceio.cli`; see that module (or
``python -m repro.traceio --help``) for the subcommands.
"""

from repro.traceio.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
