"""``python -m repro.traceio`` — deprecated alias of ``python -m repro trace``.

Thin launcher for :mod:`repro.traceio.cli`; the unified ``python -m repro``
façade is the canonical spelling.
"""

from repro.traceio.cli import main

if __name__ == "__main__":
    import sys

    print(
        "deprecated: `python -m repro.traceio` is now `python -m repro "
        "trace` (this alias keeps working)",
        file=sys.stderr,
    )
    raise SystemExit(main())
