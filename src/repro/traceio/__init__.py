"""Durable trace capture and replay.

Turns one-shot simulations into durable artifacts: a
:class:`~repro.traceio.writer.TraceWriter` streams everything a
:class:`repro.simulation.trace.TraceRecorder` observes to a versioned JSONL
file, and a :class:`~repro.traceio.reader.TraceReader` replays such a file
back into a fully-populated recorder — same event log, same checkpoint
dependency vectors, same CCP and analysis-cache results as the live run —
without re-executing the simulation.

Entry points:

* ``SimulationConfig(trace_path=...)`` — any single run persists its trace;
* ``run_campaign(spec, trace_dir=...)`` — every executed campaign cell
  persists one trace artifact next to the JSONL store, re-aggregatable via
  :func:`~repro.traceio.reader.campaign_records_from_traces`;
* ``python -m repro trace`` — ``record`` / ``replay`` / ``inspect`` /
  ``diff`` from the shell (see :mod:`repro.traceio.cli`).
"""

from repro.traceio.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    TraceError,
    TraceFormatError,
    TraceTruncatedError,
    TraceVersionError,
    metrics_from_record,
    result_to_record,
)
from repro.traceio.reader import (
    ReplayedTrace,
    TraceReader,
    analysis_table,
    campaign_records_from_traces,
    verify_trace,
)
from repro.traceio.writer import TraceWriter

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ReplayedTrace",
    "TraceError",
    "TraceFormatError",
    "TraceReader",
    "TraceTruncatedError",
    "TraceVersionError",
    "TraceWriter",
    "analysis_table",
    "campaign_records_from_traces",
    "metrics_from_record",
    "result_to_record",
    "verify_trace",
]
