"""The on-disk trace format: constants, record codecs and error types.

A persisted trace is a JSONL file with three kinds of lines:

* **header** (first line, a JSON object): format magic, format version,
  process count, and the full provenance of the run — engine seed, protocol,
  collector (with options), workload description, network parameters, the
  injected failure schedule, plus free-form ``meta`` (campaign cell identity
  when the trace was produced by a campaign sweep);
* **records** (middle lines, JSON arrays): compact tagged tuples, one per
  recorded occurrence, appended and flushed in the exact order the live
  :class:`repro.simulation.trace.TraceRecorder` observed them — which is what
  makes replay deterministic;
* **footer** (last line, a JSON object under the ``"footer"`` key): record
  and event counts (truncation detection), the run's scalar result record and
  derived per-cell metrics, the final volatile dependency vectors, and the
  completion status.

Record tags
-----------

======  ============================================================
tag     payload
======  ============================================================
``s``   ``[sender, receiver, message_id, time]`` — application send
``r``   ``[message_id, time]`` — delivery of a message
``d``   ``[message_id, time]`` — delivery of a *duplicate* copy of an
        already-received message (at-least-once channels; replays as a
        causally-neutral internal event at the receiver)
``c``   ``[pid, index, forced, time, [dv...]]`` — stable checkpoint
        with the dependency vector the middleware stored with it
``i``   ``[pid, time]`` — internal application event
``v``   ``[[faulty...], [line...], [[pid, index]...], [li...]]`` —
        recovery session: faulty set, recovery line, rollback
        directives and the last-interval vector of Algorithm 3
``S``   ``[time, [retained...]]`` — storage occupancy sample
``p``   ``[kind, time, [[pid...]...]]`` — partition transition
        (``kind`` is ``cut`` or ``heal``); provenance only, replay
        collects but does not feed them to the recorder
======  ============================================================

Versioning: :data:`FORMAT_VERSION` is bumped whenever a record's shape
changes incompatibly.  Version 2 added the ``d``/``p`` records and the
fault-model provenance in the header ``network`` object (channel model,
partition schedule, FIFO discipline — absent for the default uniform
transport, so default-config headers are byte-identical to version 1's).
Version-1 traces remain readable (their tag set is a strict subset).
Readers refuse newer versions (:class:`TraceVersionError`) rather than
misinterpreting records, and refuse structurally invalid content
(:class:`TraceFormatError`) rather than replaying a corrupted history.
A file whose footer is missing, or whose footer counts disagree with
the records actually present, raises :class:`TraceTruncatedError`
unless the caller opts into partial replay.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.runner import SimulationConfig, SimulationResult

#: Magic string identifying trace files (header ``format`` key).
FORMAT_NAME = "repro-trace"

#: Current trace format version.  Bump on incompatible record changes.
#: Version 2: duplicate-delivery (``d``) and partition (``p``) records,
#: fault-model provenance in the header ``network`` object.
FORMAT_VERSION = 2

#: Record tags (first element of every record array).
TAG_SEND = "s"
TAG_RECEIVE = "r"
TAG_DUPLICATE = "d"
TAG_CHECKPOINT = "c"
TAG_INTERNAL = "i"
TAG_RECOVERY = "v"
TAG_SAMPLE = "S"
TAG_PARTITION = "p"

#: Tags the current version knows how to replay.
KNOWN_TAGS = frozenset(
    (
        TAG_SEND,
        TAG_RECEIVE,
        TAG_DUPLICATE,
        TAG_CHECKPOINT,
        TAG_INTERNAL,
        TAG_RECOVERY,
        TAG_SAMPLE,
        TAG_PARTITION,
    )
)


class TraceError(Exception):
    """Base class of every trace I/O failure."""


class TraceFormatError(TraceError):
    """The file is not a trace, or contains structurally invalid content."""


class TraceVersionError(TraceFormatError):
    """The trace was written by a newer (unknown) format version."""


class TraceTruncatedError(TraceError):
    """The trace ends before its footer (killed writer, partial copy)."""


# ----------------------------------------------------------------------
# Header
# ----------------------------------------------------------------------
def make_header(
    config: "SimulationConfig", *, meta: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """The header object for a run of ``config``.

    The workload is recorded descriptively (its class name; campaign traces
    carry the full declarative parameters in ``meta``): replay never
    re-generates actions — the recorded events *are* the execution — so the
    header only needs enough to identify the run, not to re-run it.
    """
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "num_processes": config.num_processes,
        "duration": config.duration,
        "seed": config.seed,
        "protocol": config.protocol,
        "collector": config.collector,
        "collector_options": dict(config.collector_options),
        "workload": type(config.workload).__name__,
        # Full fault-model provenance: channel model, partition schedule and
        # FIFO discipline appear as extra keys only when present, so default
        # uniform-transport headers keep their version-1 shape.
        "network": config.network.describe(),
        "failure_schedule": [[crash.time, crash.pid] for crash in config.failures],
        "audit": config.audit,
        "meta": dict(meta or config.trace_meta),
    }


def make_scripted_header(
    num_processes: int,
    *,
    seed: Optional[int] = None,
    workload: str = "scripted",
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """A header for traces captured outside the simulation runner.

    Used by drivers that feed a :class:`TraceRecorder` directly (scripted
    figures, the perf benchmark's random CCP scripts): there is no protocol,
    collector or network — only the recorded pattern itself.
    """
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "num_processes": num_processes,
        "duration": None,
        "seed": seed,
        "protocol": "scripted",
        "collector": "none",
        "collector_options": {},
        "workload": workload,
        "network": None,
        "failure_schedule": [],
        "audit": "off",
        "meta": dict(meta or {}),
    }


def validate_header(header: Any, *, path: str = "<trace>") -> Dict[str, Any]:
    """Check magic, version and required keys; return the header dict."""
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise TraceFormatError(f"{path}: not a {FORMAT_NAME} file")
    version = header.get("version")
    if not isinstance(version, int) or version < 1:
        raise TraceFormatError(f"{path}: malformed trace version {version!r}")
    if version > FORMAT_VERSION:
        raise TraceVersionError(
            f"{path}: trace format version {version} is newer than the "
            f"supported version {FORMAT_VERSION}"
        )
    num_processes = header.get("num_processes")
    if not isinstance(num_processes, int) or num_processes <= 0:
        raise TraceFormatError(f"{path}: invalid num_processes {num_processes!r}")
    return header


# ----------------------------------------------------------------------
# Result records and metrics
# ----------------------------------------------------------------------
def result_to_record(result: "SimulationResult") -> Dict[str, Any]:
    """The scalar result record persisted in the footer.

    Everything a consumer needs to re-derive the per-cell campaign metrics
    without re-simulation, including the sample-derived peak (the samples are
    streamed as ``S`` records, but the peak is stored so metrics survive even
    a trace whose samples were pruned).
    """
    return {
        "protocol": result.protocol,
        "collector": result.collector,
        "duration": result.duration,
        "basic_checkpoints": result.basic_checkpoints,
        "forced_checkpoints": result.forced_checkpoints,
        "messages_sent": result.messages_sent,
        "messages_delivered": result.messages_delivered,
        "messages_dropped": result.messages_dropped,
        "messages_duplicated": result.messages_duplicated,
        "messages_blocked_by_partition": result.messages_blocked_by_partition,
        "control_messages": result.control_messages,
        "total_collected": result.total_collected,
        "retained_final": list(result.retained_final),
        "max_retained_per_process": list(result.max_retained_per_process),
        "total_stored": result.total_stored,
        "peak_total_retained": result.peak_total_retained,
        "collection_ratio": result.collection_ratio,
        "recoveries": len(result.recoveries),
        "audits": len(result.audits),
        "all_audits_safe": result.all_audits_safe,
        "all_audits_optimal": result.all_audits_optimal,
    }


def metrics_from_record(record: Mapping[str, Any]) -> Dict[str, float]:
    """Re-derive the per-cell campaign metrics from a footer result record.

    Mirrors :meth:`repro.simulation.runner.SimulationResult.metrics_dict`
    key for key (a round-trip test pins the two together), which is what
    lets a campaign be re-aggregated from its trace artifacts alone with
    byte-identical output.
    """
    metrics: Dict[str, float] = {
        "checkpoints": record["basic_checkpoints"] + record["forced_checkpoints"],
        "basic": record["basic_checkpoints"],
        "forced": record["forced_checkpoints"],
        "messages": record["messages_sent"],
        "control": record["control_messages"],
        "collected": record["total_collected"],
        "final_retained": sum(record["retained_final"]),
        "max_per_process": (
            max(record["max_retained_per_process"])
            if record["max_retained_per_process"]
            else 0
        ),
        "peak_retained": record["peak_total_retained"],
        "collection_ratio": record["collection_ratio"],
        "recoveries": record["recoveries"],
    }
    # Version-1 result records predate the fault-model counters; mirroring
    # them only when present keeps v1 footers verifying cleanly (their
    # stored metrics lack the keys too) while v2 records always carry them.
    if "messages_duplicated" in record:
        metrics["duplicated"] = record["messages_duplicated"]
    if "messages_blocked_by_partition" in record:
        metrics["partition_blocked"] = record["messages_blocked_by_partition"]
    return metrics


# ----------------------------------------------------------------------
# Footer
# ----------------------------------------------------------------------
def make_footer(
    *,
    records: int,
    events: int,
    status: str,
    result: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, float]] = None,
    final_volatile_dvs: Optional[Sequence[Sequence[int]]] = None,
    error: Optional[str] = None,
) -> Dict[str, Any]:
    """The footer object; ``records``/``events`` enable truncation checks."""
    footer: Dict[str, Any] = {
        "records": records,
        "events": events,
        "status": status,
    }
    if result is not None:
        footer["result"] = result
    if metrics is not None:
        footer["metrics"] = metrics
    if final_volatile_dvs is not None:
        footer["final_volatile_dvs"] = [list(dv) for dv in final_volatile_dvs]
    if error is not None:
        footer["error"] = error
    return {"footer": footer}


def validate_record(record: Any, *, line: int, path: str = "<trace>") -> List[Any]:
    """Check one body record's tag and arity; return it as a list."""
    if not isinstance(record, list) or not record:
        raise TraceFormatError(
            f"{path}:{line}: body records must be non-empty JSON arrays"
        )
    tag = record[0]
    arity = {
        TAG_SEND: 5,
        TAG_RECEIVE: 3,
        TAG_DUPLICATE: 3,
        TAG_CHECKPOINT: 6,
        TAG_INTERNAL: 3,
        TAG_RECOVERY: 5,
        TAG_SAMPLE: 3,
        TAG_PARTITION: 4,
    }.get(tag)
    if arity is None:
        raise TraceFormatError(f"{path}:{line}: unknown record tag {tag!r}")
    if len(record) != arity:
        raise TraceFormatError(
            f"{path}:{line}: {tag!r} record has {len(record)} fields, expected {arity}"
        )
    return record
