"""The on-disk trace format: constants, record codecs and error types.

A persisted trace is a JSONL file with three kinds of lines:

* **header** (first line, a JSON object): format magic, format version,
  process count, and the full provenance of the run — engine seed, protocol,
  collector (with options), workload description, network parameters, the
  injected failure schedule, plus free-form ``meta`` (campaign cell identity
  when the trace was produced by a campaign sweep);
* **records** (middle lines, JSON arrays): compact tagged tuples, one per
  recorded occurrence, appended and flushed in the exact order the live
  :class:`repro.simulation.trace.TraceRecorder` observed them — which is what
  makes replay deterministic;
* **footer** (last line, a JSON object under the ``"footer"`` key): record
  and event counts (truncation detection), the run's scalar result record and
  derived per-cell metrics, the final volatile dependency vectors, and the
  completion status.

Record tags
-----------

======  ============================================================
tag     payload
======  ============================================================
``s``   ``[sender, receiver, message_id, time]`` — application send
``r``   ``[message_id, time]`` — delivery of a message
``d``   ``[message_id, time]`` — delivery of a *duplicate* copy of an
        already-received message (at-least-once channels; replays as a
        causally-neutral internal event at the receiver)
``c``   ``[pid, index, forced, time, [dv...]]`` — stable checkpoint
        with the dependency vector the middleware stored with it
``i``   ``[pid, time]`` — internal application event
``v``   ``[[faulty...], [line...], [[pid, index]...], [li...]]`` —
        recovery session: faulty set, recovery line, rollback
        directives and the last-interval vector of Algorithm 3
``S``   ``[time, [retained...]]`` — storage occupancy sample
``p``   ``[kind, time, [[pid...]...]]`` — partition transition
        (``kind`` is ``cut`` or ``heal``); provenance only, replay
        collects but does not feed them to the recorder
``j``   ``[pid, time]`` — a process joined the membership
``l``   ``[pid, time]`` — a process left the membership permanently
======  ============================================================

Versioning: :data:`FORMAT_VERSION` is bumped whenever a record's shape
changes incompatibly.  Version 2 added the ``d``/``p`` records and the
fault-model provenance in the header ``network`` object (channel model,
partition schedule, FIFO discipline — absent for the default uniform
transport, so default-config headers are byte-identical to version 1's).
Membership records (``j``/``l``) and the header ``membership`` key are a
backward-compatible extension of version 2: traces without membership
events carry neither and parse exactly as before, so the version is not
bumped.  Version-1 traces remain readable (their tag set is a strict
subset).
Readers refuse newer versions (:class:`TraceVersionError`) rather than
misinterpreting records, and refuse structurally invalid content
(:class:`TraceFormatError`) rather than replaying a corrupted history.
A file whose footer is missing, or whose footer counts disagree with
the records actually present, raises :class:`TraceTruncatedError`
unless the caller opts into partial replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.runner import SimulationConfig, SimulationResult

#: Magic string identifying trace files (header ``format`` key).
FORMAT_NAME = "repro-trace"

#: Current trace format version.  Bump on incompatible record changes.
#: Version 2: duplicate-delivery (``d``) and partition (``p``) records,
#: fault-model provenance in the header ``network`` object.
FORMAT_VERSION = 2

#: Record tags (first element of every record array).
TAG_SEND = "s"
TAG_RECEIVE = "r"
TAG_DUPLICATE = "d"
TAG_CHECKPOINT = "c"
TAG_INTERNAL = "i"
TAG_RECOVERY = "v"
TAG_SAMPLE = "S"
TAG_PARTITION = "p"
TAG_JOIN = "j"
TAG_LEAVE = "l"

#: Tags the current version knows how to replay.
KNOWN_TAGS = frozenset(
    (
        TAG_SEND,
        TAG_RECEIVE,
        TAG_DUPLICATE,
        TAG_CHECKPOINT,
        TAG_INTERNAL,
        TAG_RECOVERY,
        TAG_SAMPLE,
        TAG_PARTITION,
        TAG_JOIN,
        TAG_LEAVE,
    )
)


class TraceError(Exception):
    """Base class of every trace I/O failure."""


class TraceFormatError(TraceError):
    """The file is not a trace, or contains structurally invalid content."""


class TraceVersionError(TraceFormatError):
    """The trace was written by a newer (unknown) format version."""


class TraceTruncatedError(TraceError):
    """The trace ends before its footer (killed writer, partial copy)."""


# ----------------------------------------------------------------------
# Run provenance
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunProvenance:
    """The provenance identity a driver attaches to a trace header ``meta``.

    One constructor per driver — campaign sweeps, the schedule-space
    explorer, live (multi-process) runs — and one :meth:`to_meta` encoding,
    so the header shape each driver emits is defined in exactly one place
    instead of being hand-assembled at every call site.  :meth:`from_meta`
    inverts the encoding (a round-trip test pins the two together), which is
    what campaign re-aggregation and ``traceio inspect`` parse.

    The encodings are byte-compatible with the dicts the drivers emitted
    before this helper existed, so pre-existing artifacts parse identically:

    * campaign — ``{"campaign", "cell_id", "params"[, "cell_index"]}``;
    * explore  — ``{"explorer": {"config", "schedule", ...}}``;
    * live     — ``{"live": {...}}`` (coordinator/merge parameters).
    """

    kind: str
    fields: Dict[str, Any]

    KINDS = ("campaign", "explore", "live")

    @classmethod
    def campaign_cell(
        cls,
        *,
        campaign: str,
        cell_id: str,
        params: Mapping[str, Any],
        cell_index: Optional[int] = None,
        worker: Optional[str] = None,
        attempt: Optional[int] = None,
    ) -> "RunProvenance":
        """Identity of one campaign grid cell.

        ``worker``/``attempt`` carry the fabric's shard/lease provenance —
        which claimer executed the cell and on which attempt.  They are
        recorded only when present, so artifacts from unleased (classic
        pool) sweeps are byte-identical to the pre-fabric encoding, and they
        never participate in cell identity: a cell re-run after a lease
        expiry differs from the original artifact only here.
        """
        fields: Dict[str, Any] = {
            "campaign": campaign,
            "cell_id": cell_id,
            "params": dict(params),
        }
        if cell_index is not None:
            fields["cell_index"] = cell_index
        if worker is not None:
            fields["worker"] = worker
        if attempt is not None:
            fields["attempt"] = attempt
        return cls("campaign", fields)

    @classmethod
    def explorer(
        cls,
        *,
        config: Mapping[str, Any],
        schedule: Sequence[Sequence[Any]],
        extra: Optional[Mapping[str, Any]] = None,
    ) -> "RunProvenance":
        """Identity of one explored schedule (configuration + choice list)."""
        fields: Dict[str, Any] = {
            "config": dict(config),
            "schedule": [list(token) for token in schedule],
        }
        if extra:
            fields.update(extra)
        return cls("explore", fields)

    @classmethod
    def live_run(cls, **fields: Any) -> "RunProvenance":
        """Identity of one live multi-process run (coordinator parameters)."""
        return cls("live", dict(fields))

    def to_meta(self) -> Dict[str, Any]:
        """The header ``meta`` dict this provenance encodes to."""
        if self.kind == "campaign":
            return dict(self.fields)
        if self.kind == "explore":
            return {"explorer": dict(self.fields)}
        if self.kind == "live":
            return {"live": dict(self.fields)}
        raise ValueError(f"unknown provenance kind {self.kind!r}")

    @classmethod
    def from_meta(cls, meta: Mapping[str, Any]) -> Optional["RunProvenance"]:
        """Parse a header ``meta`` dict; None if no known driver wrote it."""
        if "explorer" in meta:
            return cls("explore", dict(meta["explorer"]))
        if "live" in meta:
            return cls("live", dict(meta["live"]))
        if "cell_id" in meta and "params" in meta:
            fields = {}
            if "campaign" in meta:
                fields["campaign"] = meta["campaign"]
            fields["cell_id"] = meta["cell_id"]
            fields["params"] = meta["params"]
            if "cell_index" in meta:
                fields["cell_index"] = meta["cell_index"]
            return cls("campaign", fields)
        return None


# ----------------------------------------------------------------------
# Header
# ----------------------------------------------------------------------
def make_header(
    config: "SimulationConfig", *, meta: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """The header object for a run of ``config``.

    The workload is recorded descriptively (its class name; campaign traces
    carry the full declarative parameters in ``meta``): replay never
    re-generates actions — the recorded events *are* the execution — so the
    header only needs enough to identify the run, not to re-run it.

    The execution backend appears as an extra ``backend`` key only for
    non-default (non-``sim``) backends, so every pre-existing simulated
    trace header keeps its exact shape.
    """
    header: Dict[str, Any] = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "num_processes": config.num_processes,
        "duration": config.duration,
        "seed": config.seed,
        "protocol": config.protocol,
        "collector": config.collector,
        "collector_options": dict(config.collector_options),
        "workload": type(config.workload).__name__,
        # Full fault-model provenance: channel model, partition schedule and
        # FIFO discipline appear as extra keys only when present, so default
        # uniform-transport headers keep their version-1 shape.
        "network": config.network.describe(),
        "failure_schedule": [[crash.time, crash.pid] for crash in config.failures],
        "audit": config.audit,
        "meta": dict(meta or config.trace_meta),
    }
    if config.backend != "sim":
        header["backend"] = config.backend
    # Membership provenance only when dynamic: static-membership headers
    # keep their exact pre-membership shape (and byte identity).
    if config.membership:
        header["membership"] = config.membership.describe()
    return header


def make_scripted_header(
    num_processes: int,
    *,
    seed: Optional[int] = None,
    workload: str = "scripted",
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """A header for traces captured outside the simulation runner.

    Used by drivers that feed a :class:`TraceRecorder` directly (scripted
    figures, the perf benchmark's random CCP scripts): there is no protocol,
    collector or network — only the recorded pattern itself.
    """
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "num_processes": num_processes,
        "duration": None,
        "seed": seed,
        "protocol": "scripted",
        "collector": "none",
        "collector_options": {},
        "workload": workload,
        "network": None,
        "failure_schedule": [],
        "audit": "off",
        "meta": dict(meta or {}),
    }


def validate_header(header: Any, *, path: str = "<trace>") -> Dict[str, Any]:
    """Check magic, version and required keys; return the header dict."""
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise TraceFormatError(f"{path}: not a {FORMAT_NAME} file")
    version = header.get("version")
    if not isinstance(version, int) or version < 1:
        raise TraceFormatError(f"{path}: malformed trace version {version!r}")
    if version > FORMAT_VERSION:
        raise TraceVersionError(
            f"{path}: trace format version {version} is newer than the "
            f"supported version {FORMAT_VERSION}"
        )
    num_processes = header.get("num_processes")
    if not isinstance(num_processes, int) or num_processes <= 0:
        raise TraceFormatError(f"{path}: invalid num_processes {num_processes!r}")
    return header


# ----------------------------------------------------------------------
# Result records and metrics
# ----------------------------------------------------------------------
def result_to_record(result: "SimulationResult") -> Dict[str, Any]:
    """The scalar result record persisted in the footer.

    Everything a consumer needs to re-derive the per-cell campaign metrics
    without re-simulation, including the sample-derived peak (the samples are
    streamed as ``S`` records, but the peak is stored so metrics survive even
    a trace whose samples were pruned).
    """
    return {
        "protocol": result.protocol,
        "collector": result.collector,
        "duration": result.duration,
        "basic_checkpoints": result.basic_checkpoints,
        "forced_checkpoints": result.forced_checkpoints,
        "messages_sent": result.messages_sent,
        "messages_delivered": result.messages_delivered,
        "messages_dropped": result.messages_dropped,
        "messages_duplicated": result.messages_duplicated,
        "messages_blocked_by_partition": result.messages_blocked_by_partition,
        "control_messages": result.control_messages,
        "total_collected": result.total_collected,
        "retained_final": list(result.retained_final),
        "max_retained_per_process": list(result.max_retained_per_process),
        "total_stored": result.total_stored,
        "peak_total_retained": result.peak_total_retained,
        "collection_ratio": result.collection_ratio,
        "recoveries": len(result.recoveries),
        "audits": len(result.audits),
        "all_audits_safe": result.all_audits_safe,
        "all_audits_optimal": result.all_audits_optimal,
    }


def metrics_from_record(record: Mapping[str, Any]) -> Dict[str, float]:
    """Re-derive the per-cell campaign metrics from a footer result record.

    Mirrors :meth:`repro.simulation.runner.SimulationResult.metrics_dict`
    key for key (a round-trip test pins the two together), which is what
    lets a campaign be re-aggregated from its trace artifacts alone with
    byte-identical output.
    """
    metrics: Dict[str, float] = {
        "checkpoints": record["basic_checkpoints"] + record["forced_checkpoints"],
        "basic": record["basic_checkpoints"],
        "forced": record["forced_checkpoints"],
        "messages": record["messages_sent"],
        "control": record["control_messages"],
        "collected": record["total_collected"],
        "final_retained": sum(record["retained_final"]),
        "max_per_process": (
            max(record["max_retained_per_process"])
            if record["max_retained_per_process"]
            else 0
        ),
        "peak_retained": record["peak_total_retained"],
        "collection_ratio": record["collection_ratio"],
        "recoveries": record["recoveries"],
    }
    # Version-1 result records predate the fault-model counters; mirroring
    # them only when present keeps v1 footers verifying cleanly (their
    # stored metrics lack the keys too) while v2 records always carry them.
    if "messages_duplicated" in record:
        metrics["duplicated"] = record["messages_duplicated"]
    if "messages_blocked_by_partition" in record:
        metrics["partition_blocked"] = record["messages_blocked_by_partition"]
    return metrics


# ----------------------------------------------------------------------
# Footer
# ----------------------------------------------------------------------
def make_footer(
    *,
    records: int,
    events: int,
    status: str,
    result: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, float]] = None,
    final_volatile_dvs: Optional[Sequence[Sequence[int]]] = None,
    error: Optional[str] = None,
) -> Dict[str, Any]:
    """The footer object; ``records``/``events`` enable truncation checks."""
    footer: Dict[str, Any] = {
        "records": records,
        "events": events,
        "status": status,
    }
    if result is not None:
        footer["result"] = result
    if metrics is not None:
        footer["metrics"] = metrics
    if final_volatile_dvs is not None:
        footer["final_volatile_dvs"] = [list(dv) for dv in final_volatile_dvs]
    if error is not None:
        footer["error"] = error
    return {"footer": footer}


def validate_record(record: Any, *, line: int, path: str = "<trace>") -> List[Any]:
    """Check one body record's tag and arity; return it as a list."""
    if not isinstance(record, list) or not record:
        raise TraceFormatError(
            f"{path}:{line}: body records must be non-empty JSON arrays"
        )
    tag = record[0]
    arity = {
        TAG_SEND: 5,
        TAG_RECEIVE: 3,
        TAG_DUPLICATE: 3,
        TAG_CHECKPOINT: 6,
        TAG_INTERNAL: 3,
        TAG_RECOVERY: 5,
        TAG_SAMPLE: 3,
        TAG_PARTITION: 4,
        TAG_JOIN: 3,
        TAG_LEAVE: 3,
    }.get(tag)
    if arity is None:
        raise TraceFormatError(f"{path}:{line}: unknown record tag {tag!r}")
    if len(record) != arity:
        raise TraceFormatError(
            f"{path}:{line}: {tag!r} record has {len(record)} fields, expected {arity}"
        )
    return record
