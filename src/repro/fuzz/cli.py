"""Command-line front end of the coverage-guided schedule fuzzer.

Fuzz a built-in target with a persistent corpus::

    python -m repro fuzz run --target ring --budget 300 --corpus .fuzz-corpus
    python -m repro fuzz run --target canary-unsafe --expect-violations 1

Replay one persisted corpus entry (rehydrates the trace, re-executes it
live, byte-compares the artifacts)::

    python -m repro fuzz replay .fuzz-corpus/entries/<id>.trace.jsonl

Summarise a corpus directory::

    python -m repro fuzz stats .fuzz-corpus

Counterexamples the fuzzer persists under ``<corpus>/counterexamples/`` are
ordinary explorer artifacts — replay them with
``python -m repro explore replay <path>``.

Exit codes: 0 — clean run (or ``--expect-violations`` satisfied);
1 — violations found (or expectation missed, or replay diverged);
2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.fuzz.corpus import Corpus, replay_corpus_entry
from repro.fuzz.fuzzer import builtin_targets, fuzz


# ----------------------------------------------------------------------
# run — one fuzzing campaign
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    try:
        result = fuzz(
            args.target,
            budget=args.budget,
            seed=args.seed,
            corpus=args.corpus,
            guided=not args.random,
            minimize=not args.no_minimize,
            explorer_seed_executions=args.explorer_seeds,
            stop_after_findings=args.stop_after_findings,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    stats = result.stats
    mode = "random" if args.random else "guided"
    print(
        f"fuzz {result.target.name} ({mode}): {stats.executions} executions "
        f"(+{stats.seed_executions} seeding) in {elapsed:.2f}s — "
        f"{stats.features} coverage features, corpus {len(result.corpus)} "
        f"(+{stats.corpus_added}), {stats.duplicates} duplicates skipped"
    )
    dims = ", ".join(
        f"{tag}={count}" for tag, count in stats.dimension_counts.items()
    )
    if dims:
        print(f"  coverage: {dims}")
    for finding in result.findings:
        violation = finding.violation
        print(f"  VIOLATION [{violation.kind}]: {violation.detail}")
        if finding.shrunk is not None:
            print(
                f"    shrunk to {len(finding.shrunk.schedule)} tokens "
                f"({finding.shrunk.attempts} shrink executions)"
            )
        if finding.artifact is not None:
            print(f"    counterexample trace: {finding.artifact}")
            print(f"    replay with: python -m repro explore replay {finding.artifact}")
    if result.corpus.root is not None:
        print(f"  corpus saved: {result.corpus.root}")
    if args.report:
        os.makedirs(os.path.dirname(args.report) or ".", exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(result.as_document(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"  report: {args.report}")
    found = len(result.findings)
    if args.expect_violations is not None:
        if found != args.expect_violations:
            print(
                f"error: expected exactly {args.expect_violations} distinct "
                f"violation kind(s), found {found}",
                file=sys.stderr,
            )
            return 1
        return 0
    return 0 if found == 0 else 1


# ----------------------------------------------------------------------
# replay — one persisted corpus entry
# ----------------------------------------------------------------------
def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.explore.canaries import canaries_registered

    with canaries_registered():
        replay = replay_corpus_entry(args.path)
    verdict = "yes" if replay.byte_identical else "NO"
    print(
        f"{replay.path}: entry {replay.entry_id}, {replay.trace_events} "
        f"events\n  byte-identical re-execution: {verdict}"
    )
    return 0 if replay.byte_identical else 1


# ----------------------------------------------------------------------
# stats — summarise a corpus directory
# ----------------------------------------------------------------------
def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.explore.canaries import canaries_registered

    # Registered so corpora of canary targets parse (configuration
    # validation resolves collector names).
    with canaries_registered():
        corpus = Corpus.load(args.corpus)
    print(
        f"{args.corpus}: {len(corpus)} entries, "
        f"{len(corpus.coverage)} coverage features over "
        f"{corpus.coverage.observed} observed executions"
    )
    dims = ", ".join(
        f"{tag}={count}"
        for tag, count in corpus.coverage.dimension_counts().items()
    )
    if dims:
        print(f"  coverage: {dims}")
    by_op: dict = {}
    for entry in corpus.ordered():
        by_op[entry.op] = by_op.get(entry.op, 0) + 1
    if by_op:
        ops = ", ".join(f"{op}={count}" for op, count in sorted(by_op.items()))
        print(f"  origins: {ops}")
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    """Run the ``repro fuzz`` command line.

    Args:
        argv: argument list (defaults to ``sys.argv[1:]``).

    Returns:
        The process exit code (see the module docstring).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description=(
            "Coverage-guided fuzzing of delivery schedules and fault "
            "timings against the paper's theorem oracles."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one fuzzing campaign")
    run.add_argument(
        "--target", default="ring",
        help=f"built-in target (one of: {', '.join(sorted(builtin_targets()))})",
    )
    run.add_argument(
        "--budget", type=int, default=300,
        help="candidate executions to spend (default: 300)",
    )
    run.add_argument(
        "--seed", type=int, default=0, help="run seed (default: 0)"
    )
    run.add_argument(
        "--corpus", default=None,
        help="corpus directory (persistent, warm-start capable; "
             "default: in-memory)",
    )
    run.add_argument(
        "--random", action="store_true",
        help="disable coverage guidance (the benchmark's baseline mode)",
    )
    run.add_argument(
        "--no-minimize", action="store_true",
        help="skip shrinking found violations",
    )
    run.add_argument(
        "--explorer-seeds", type=int, default=48,
        help="execution budget of the frontier-seeding explorer walk "
             "(0 disables; default: 48)",
    )
    run.add_argument(
        "--stop-after-findings", type=int, default=None,
        help="stop early after this many distinct violation kinds",
    )
    run.add_argument(
        "--expect-violations", type=int, default=None,
        help="exit 0 only if exactly this many distinct violation kinds "
             "are found (CI conformance mode)",
    )
    run.add_argument(
        "--report", default=None, help="write a JSON run report to this path"
    )
    run.set_defaults(func=_cmd_run)

    replay = commands.add_parser(
        "replay", help="replay one persisted corpus entry byte-for-byte"
    )
    replay.add_argument("path", help="an entries/<id>.trace.jsonl artifact")
    replay.set_defaults(func=_cmd_replay)

    stats = commands.add_parser("stats", help="summarise a corpus directory")
    stats.add_argument("corpus", help="the corpus directory")
    stats.set_defaults(func=_cmd_stats)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli
    sys.exit(main())
