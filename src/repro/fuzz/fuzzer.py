"""The coverage-guided fuzz loop.

Where the explorer *enumerates* the schedule space (complete, but
exponential), the fuzzer *samples* it: start from a handful of seed
schedules, mutate whatever earned its place in the corpus, execute each
candidate under the full PR-5 oracle stack, and keep a candidate exactly
when it exhibits a checkpoint-pattern feature
(:func:`~repro.fuzz.coverage.state_features`) no earlier execution did.
Violations take the explorer's own exit path — greedy shrinking and a
replayable traceio artifact.

Everything is deterministic: one ``random.Random(seed)`` stream drives every
draw, executions replay bit-identically (the executor guarantee), and the
corpus is content-addressed — so the same target, seed and budget produce
the same corpus, the same coverage map and the same findings, which the
determinism tests pin.

Seeding is a cold-start bridge, not an oracle: the *eager* schedule
(deliver right after each send), the *lazy* schedule (deliver everything at
the end), and the deterministic frontier prefix of a tiny budgeted
:func:`~repro.explore.explore` walk — so the fuzzer starts from the exact
point exhaustive exploration gave up, the hand-off the roadmap asked for.
"""

from __future__ import annotations

import contextlib
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.explore.canaries import CANARY_NAMES, canaries_registered
from repro.explore.executor import ScheduleExecutor
from repro.explore.explorer import explore
from repro.explore.oracles import OracleStack
from repro.explore.program import (
    ADVANCE,
    DELIVER,
    Choice,
    ExploreConfig,
    StepKind,
    Violation,
    checkpoint,
    gossip_program,
    ring_program,
    send,
    star_program,
)
from repro.explore.shrink import ShrunkCounterexample, persist_counterexample, shrink
from repro.fuzz.corpus import Corpus, CorpusEntry, entry_id
from repro.fuzz.coverage import CoverageMap, state_features
from repro.fuzz.mutate import MUTATORS, complete, splice


# ----------------------------------------------------------------------
# Targets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzTarget:
    """A named, self-contained thing to fuzz.

    Wraps an :class:`~repro.explore.ExploreConfig` plus the run-scoped
    environment it needs (today: whether the canary collectors must be
    registered for the configuration to resolve).
    """

    name: str
    config: ExploreConfig
    #: Register the test-only canary collectors for the run's duration.
    needs_canaries: bool = False


def _ms_window_program() -> Tuple[Any, ...]:
    """The Manivannan–Singhal unsafety driver (same shape the tests use)."""
    return (
        send(1, 0),
        checkpoint(0),
        send(0, 1),
        send(1, 0),
        checkpoint(0),
        send(0, 1),
        checkpoint(1),
        checkpoint(0),
    )


def builtin_targets() -> Dict[str, FuzzTarget]:
    """The named fuzz targets the CLI accepts.

    Returns:
        Mapping of target name to :class:`FuzzTarget`:

        * ``ring`` — the canonical 2-process, 4-message ring under RDT-LGC
          (expected clean; pure coverage exercise);
        * ``ring-crash`` — the same ring with an injected crash of process 0
          (recovery-line coverage; expected clean);
        * ``ring3-crash`` — 3 processes, 9 messages, a crash: the benchmark
          target, large enough that a budgeted run cannot saturate it;
        * ``star-crash`` — the client-server star topology (hub process 0,
          two clients, a hub crash): the skewed client-server workload
          family's explorable skeleton (expected clean);
        * ``gossip`` — 3-process gossip fan-out rounds (expected clean);
        * ``canary-unsafe`` / ``canary-hoarder`` — the PR-5 conformance
          canaries (a violation *must* be found);
        * ``ms-window`` — Manivannan–Singhal quasi-synchronous collector
          outside its honoured timing window (a safety violation exists).
    """
    targets = {
        "ring": FuzzTarget(
            name="ring",
            config=ExploreConfig(num_processes=2, program=ring_program(2, 4)),
        ),
        "ring-crash": FuzzTarget(
            name="ring-crash",
            config=ExploreConfig(
                num_processes=2,
                program=ring_program(2, 4, crash_pid=0),
            ),
        ),
        "ring3-crash": FuzzTarget(
            name="ring3-crash",
            config=ExploreConfig(
                num_processes=3,
                program=ring_program(3, 9, crash_pid=0),
            ),
        ),
        "star-crash": FuzzTarget(
            name="star-crash",
            config=ExploreConfig(
                num_processes=3,
                program=star_program(3, 4, crash_pid=0),
            ),
        ),
        "gossip": FuzzTarget(
            name="gossip",
            config=ExploreConfig(
                num_processes=3,
                program=gossip_program(3, 3, fanout=2),
            ),
        ),
        "ms-window": FuzzTarget(
            name="ms-window",
            config=ExploreConfig(
                num_processes=2,
                program=_ms_window_program(),
                collector="manivannan-singhal",
                collector_options=(
                    ("checkpoint_period", 2.0),
                    ("max_message_delay", 0.5),
                    ("slack", 0.5),
                ),
            ),
        ),
    }
    # ExploreConfig validates collector names at construction time, so the
    # canary configurations must be built while the canaries are registered;
    # the fuzz run itself re-registers them (needs_canaries).
    with canaries_registered():
        for name in CANARY_NAMES:
            targets[name] = FuzzTarget(
                name=name,
                config=ExploreConfig(
                    num_processes=2, program=ring_program(2, 4), collector=name
                ),
                needs_canaries=True,
            )
    return targets


def resolve_target(target: Union[str, FuzzTarget, ExploreConfig]) -> FuzzTarget:
    """Normalise any accepted target spelling into a :class:`FuzzTarget`.

    Args:
        target: a built-in target name, a ready :class:`FuzzTarget`, or a
            bare :class:`~repro.explore.ExploreConfig`.

    Returns:
        The resolved target.

    Raises:
        ValueError: for an unknown target name.
    """
    if isinstance(target, FuzzTarget):
        return target
    if isinstance(target, ExploreConfig):
        needs_canaries = target.collector in CANARY_NAMES
        return FuzzTarget(
            name="custom", config=target, needs_canaries=needs_canaries
        )
    targets = builtin_targets()
    if target not in targets:
        accepted = ", ".join(sorted(targets))
        raise ValueError(f"unknown fuzz target {target!r} (accepted: {accepted})")
    return targets[target]


@dataclass(frozen=True)
class FuzzSpec:
    """A whole fuzz campaign as data (the :mod:`repro.api` spec kind).

    Bundles the target with the run knobs so a JSON document can describe
    the entire campaign; :func:`repro.api.run` unpacks it into :func:`fuzz`.
    """

    target: FuzzTarget
    budget: int = 300
    seed: int = 0
    #: Corpus directory (``None`` runs in-memory).
    corpus: Optional[str] = None
    guided: bool = True
    minimize: bool = True


# ----------------------------------------------------------------------
# Seeds
# ----------------------------------------------------------------------
def eager_schedule(config: ExploreConfig) -> Tuple[Choice, ...]:
    """The deliver-immediately schedule: each message lands right after its send.

    Args:
        config: the target configuration.

    Returns:
        A complete, well-formed schedule.
    """
    tokens: List[Choice] = []
    ordinal = 0
    for index, step in enumerate(config.program):
        tokens.append((ADVANCE, index))
        if step.kind is StepKind.SEND:
            tokens.append((DELIVER, ordinal))
            ordinal += 1
    return tuple(tokens)


def lazy_schedule(config: ExploreConfig) -> Tuple[Choice, ...]:
    """The deliver-at-the-end schedule: every message stays in flight until
    the whole program ran, then lands in send order.

    Args:
        config: the target configuration.

    Returns:
        A complete, well-formed schedule.
    """
    tokens: List[Choice] = [
        (ADVANCE, index) for index in range(len(config.program))
    ]
    tokens.extend((DELIVER, m) for m in range(config.message_count))
    return tuple(tokens)


@dataclass(frozen=True)
class SeedSet:
    """The cold-start seeds plus what producing them cost."""

    #: Deduplicated ``(origin, schedule)`` pairs.
    seeds: Tuple[Tuple[str, Tuple[Choice, ...]], ...]
    #: Executions the frontier-seeding explorer walk actually spent.
    explorer_executions: int = 0


def seed_schedules(
    config: ExploreConfig,
    *,
    oracles: Optional[OracleStack] = None,
    explorer_executions: int = 48,
) -> SeedSet:
    """The cold-start seed set: two structural extremes + the explorer frontier.

    Args:
        config: the target configuration.
        oracles: optional oracle-stack override for the seeding walk.
        explorer_executions: budget for the tiny :func:`explore` walk whose
            deterministic frontier prefix becomes a seed (0 disables it).

    Returns:
        The :class:`SeedSet`; seed origins are ``seed-eager``, ``seed-lazy``,
        ``seed-frontier`` and ``seed-explorer`` (a violating prefix the
        seeding walk surfaced, handed to the fuzz loop so it takes the
        normal shrink/persist path).
    """
    seeds: List[Tuple[str, Tuple[Choice, ...]]] = [
        ("seed-eager", eager_schedule(config)),
        ("seed-lazy", lazy_schedule(config)),
    ]
    spent = 0
    if explorer_executions > 0:
        walk = explore(
            config,
            oracles=oracles,
            max_executions=explorer_executions,
            max_counterexamples=1,
        )
        spent = walk.stats.executions
        if walk.stats.frontier is not None:
            seeds.append(
                ("seed-frontier", complete(config, walk.stats.frontier))
            )
        for counterexample in walk.counterexamples:
            seeds.append(
                ("seed-explorer", complete(config, counterexample.schedule))
            )
    unique: List[Tuple[str, Tuple[Choice, ...]]] = []
    seen = set()
    for origin, schedule in seeds:
        if schedule not in seen:
            seen.add(schedule)
            unique.append((origin, schedule))
    return SeedSet(seeds=tuple(unique), explorer_executions=spent)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzFinding:
    """One distinct violation the fuzzer found (deduplicated by kind)."""

    violation: Violation
    #: The schedule that first exhibited it (pre-shrink).
    schedule: Tuple[Choice, ...]
    #: The 1-minimal repro, when minimisation ran.
    shrunk: Optional[ShrunkCounterexample] = None
    #: Persisted counterexample artifact, when the corpus is disk-backed.
    artifact: Optional[str] = None

    def as_document(self) -> Dict[str, Any]:
        """JSON-encodable form (CLI report).

        Returns:
            The finding as a plain dict.
        """
        document: Dict[str, Any] = {
            "kind": self.violation.kind,
            "detail": self.violation.detail,
            "step": self.violation.step,
            "schedule": [list(token) for token in self.schedule],
        }
        if self.shrunk is not None:
            document["shrunk_schedule"] = [
                list(token) for token in self.shrunk.schedule
            ]
            document["shrink_attempts"] = self.shrunk.attempts
        if self.artifact is not None:
            document["artifact"] = self.artifact
        return document


@dataclass
class FuzzStats:
    """Bookkeeping of one fuzz run (reported by CLI and benchmark)."""

    executions: int = 0
    #: Executions the explorer-frontier seeding walk spent (not mutations).
    seed_executions: int = 0
    violations: int = 0
    #: Candidates rejected as semantically invalid, not buggy: they tried to
    #: deliver a message a recovery session had already discarded (statically
    #: well-formed, but the custody model forbids it).
    invalid: int = 0
    corpus_added: int = 0
    #: Candidates skipped because their content id was already executed.
    duplicates: int = 0
    #: Mutation draws that produced no applicable candidate.
    mutation_misses: int = 0
    features: int = 0
    dimension_counts: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-encodable form.

        Returns:
            The stats as a plain dict.
        """
        return {
            "executions": self.executions,
            "seed_executions": self.seed_executions,
            "violations": self.violations,
            "invalid": self.invalid,
            "corpus_added": self.corpus_added,
            "duplicates": self.duplicates,
            "mutation_misses": self.mutation_misses,
            "features": self.features,
            "dimension_counts": dict(self.dimension_counts),
        }


@dataclass
class FuzzResult:
    """Everything one fuzz run produced."""

    target: FuzzTarget
    corpus: Corpus
    stats: FuzzStats
    findings: List[FuzzFinding] = field(default_factory=list)
    #: The coverage map novelty was judged against (the corpus's in guided
    #: mode, a run-local one in random mode).
    coverage: CoverageMap = field(default_factory=CoverageMap)

    @property
    def ok(self) -> bool:
        """True when the run found no violation."""
        return not self.findings

    def as_document(self) -> Dict[str, Any]:
        """JSON-encodable run report (CLI ``--report`` output).

        Returns:
            Target, stats, corpus size and findings as a plain dict.
        """
        return {
            "target": self.target.name,
            "config": self.target.config.describe(),
            "stats": self.stats.as_dict(),
            "corpus_size": len(self.corpus),
            "corpus_root": self.corpus.root,
            "findings": [finding.as_document() for finding in self.findings],
        }


# ----------------------------------------------------------------------
# The loop
# ----------------------------------------------------------------------
#: Draws attempted per mutation round before counting a miss.
_DRAWS_PER_ROUND = 8


def fuzz(
    target: Union[str, FuzzTarget, ExploreConfig],
    *,
    budget: int = 300,
    seed: int = 0,
    corpus: Union[Corpus, str, None] = None,
    guided: bool = True,
    minimize: bool = True,
    oracles: Optional[OracleStack] = None,
    explorer_seed_executions: int = 48,
    stop_after_findings: Optional[int] = None,
) -> FuzzResult:
    """Run the coverage-guided fuzz loop against one target.

    Args:
        target: a built-in target name (see :func:`builtin_targets`), a
            :class:`FuzzTarget`, or a bare configuration.
        budget: candidate executions to spend (seeds included, the seeding
            explorer walk excluded — it is bounded separately).
        seed: the run's random seed; same target + seed + budget means the
            same corpus, coverage and findings.
        corpus: a corpus directory path (disk-backed, warm-start capable),
            a ready :class:`Corpus`, or ``None`` for in-memory.
        guided: with ``True`` (the fuzzer) coverage-novel candidates join
            the mutation pool and the corpus; with ``False`` the pool stays
            fixed at the seeds — stacked random mutation with no execution
            feedback, the baseline that isolates exactly what the coverage
            signal buys (the benchmark's comparison).
        minimize: shrink each distinct violation to a 1-minimal repro.
        oracles: optional oracle-stack override.
        explorer_seed_executions: budget of the frontier-seeding walk
            (0 disables explorer seeding).
        stop_after_findings: stop early after this many *distinct* violation
            kinds (``None`` runs the full budget).

    Returns:
        The :class:`FuzzResult`; disk-backed corpora are saved (index +
        artifacts) before returning.

    Raises:
        ValueError: for an unknown target name.
    """
    resolved = resolve_target(target)
    config = resolved.config
    rng = random.Random(seed)
    stats = FuzzStats()

    with contextlib.ExitStack() as stack:
        if resolved.needs_canaries:
            stack.enter_context(canaries_registered())
        if isinstance(corpus, str):
            corpus = Corpus.load(corpus)
        elif corpus is None:
            corpus = Corpus()
        oracle_stack = oracles if oracles is not None else OracleStack.for_config(config)
        executor = ScheduleExecutor(config, oracle_stack)
        coverage = corpus.coverage if guided else CoverageMap()
        result = FuzzResult(
            target=resolved, corpus=corpus, stats=stats, coverage=coverage
        )

        # Mutation pool: warm corpus entries first, then whatever this run
        # admits.  Random mode keeps every executed candidate (capped).
        pool: List[Tuple[Choice, ...]] = [
            entry.schedule for entry in corpus.ordered()
        ]
        executed_ids = {identifier for identifier in corpus.entries}
        seen_kinds: Dict[str, int] = {}

        seed_set = seed_schedules(
            config, oracles=oracle_stack, explorer_executions=explorer_seed_executions
        )
        stats.seed_executions = seed_set.explorer_executions
        pending: List[Tuple[str, Optional[str], Tuple[Choice, ...]]] = [
            (origin, None, schedule) for origin, schedule in seed_set.seeds
        ]

        def next_candidate() -> Optional[Tuple[str, Optional[str], Tuple[Choice, ...]]]:
            if pending:
                return pending.pop(0)
            if not pool:
                return None
            for _ in range(_DRAWS_PER_ROUND):
                parent = rng.randrange(len(pool))
                schedule = pool[parent]
                if len(pool) >= 2 and rng.random() < 0.2:
                    other = rng.randrange(len(pool))
                    candidate = splice(rng, config, schedule, pool[other])
                    op = "splice"
                else:
                    # Stack 1-3 operators (AFL's havoc idea): single-step
                    # mutants of a small pool exhaust quickly, stacked ones
                    # reach schedules no single operator can.
                    stacked = 1 + rng.randrange(3)
                    candidate = tuple(schedule)
                    ops: List[str] = []
                    for _ in range(stacked):
                        op, mutator = MUTATORS[rng.randrange(len(MUTATORS))]
                        mutated = mutator(rng, config, candidate)
                        if mutated is None:
                            continue
                        candidate = mutated
                        ops.append(op)
                    if not ops:
                        continue
                    op = "+".join(ops)
                    if candidate == tuple(schedule):
                        candidate = None
                if candidate is None:
                    continue
                identifier = entry_id(config, candidate)
                if identifier in executed_ids:
                    stats.duplicates += 1
                    continue
                parent_id = entry_id(config, schedule)
                return (op, parent_id, candidate)
            stats.mutation_misses += 1
            return ("miss", None, ())

        consecutive_misses = 0
        while stats.executions < budget:
            drawn = next_candidate()
            if drawn is None:
                break  # nothing left to mutate (empty pool, no seeds)
            op, parent_id, schedule = drawn
            if op == "miss":
                consecutive_misses += 1
                if consecutive_misses >= 50:
                    break  # mutation space saturated for this pool
                continue
            consecutive_misses = 0
            identifier = entry_id(config, schedule)
            if identifier in executed_ids:
                stats.duplicates += 1
                continue
            executed_ids.add(identifier)

            captured: List[Any] = []
            outcome = executor.execute(schedule, state_probe=captured.append)
            stats.executions += 1

            if outcome.violation is not None:
                if _is_invalid_candidate(outcome.violation):
                    # Statically well-formed, semantically impossible: the
                    # schedule delivers a message a recovery session already
                    # discarded.  Not a bug — reject the input.
                    stats.invalid += 1
                    continue
                stats.violations += 1
                kind = outcome.violation.kind
                seen_kinds[kind] = seen_kinds.get(kind, 0) + 1
                if seen_kinds[kind] == 1:
                    result.findings.append(
                        _handle_finding(
                            config,
                            schedule[: outcome.executed] or schedule,
                            outcome.violation,
                            corpus,
                            oracle_stack,
                            minimize,
                        )
                    )
                    if (
                        stop_after_findings is not None
                        and len(result.findings) >= stop_after_findings
                    ):
                        break
                continue

            features = state_features(captured[0])
            new = coverage.observe(features)
            if not guided:
                # Baseline mode: only the seeds are mutation material.
                if parent_id is None:
                    pool.append(tuple(schedule))
                continue
            if new:
                corpus.add(
                    CorpusEntry(
                        entry_id=identifier,
                        config=config,
                        schedule=tuple(schedule),
                        features=tuple(sorted(new, key=repr)),
                        parent=parent_id,
                        op=op,
                    ),
                    oracles=oracle_stack,
                )
                pool.append(tuple(schedule))
                stats.corpus_added += 1

        stats.features = len(coverage)
        stats.dimension_counts = coverage.dimension_counts()
        corpus.save()
    return result


def _is_invalid_candidate(violation: Violation) -> bool:
    """True when a violation marks an impossible input, not a bug.

    Delivering a message a recovery session already discarded raises the
    controller's not-pending :class:`ValueError`; the executor wraps it as
    an ``execution-error`` violation.  For the explorer that cannot happen
    (it only ever picks enabled choices); for the fuzzer it means the
    mutation crossed a crash boundary and the candidate must be rejected.

    Args:
        violation: the violation an execution produced.

    Returns:
        Whether the violation is the custody-model rejection.
    """
    return (
        violation.kind == "execution-error"
        and "is not pending" in violation.detail
    )


def _handle_finding(
    config: ExploreConfig,
    schedule: Sequence[Choice],
    violation: Violation,
    corpus: Corpus,
    oracles: OracleStack,
    minimize: bool,
) -> FuzzFinding:
    """Shrink a fresh violation and persist it under the corpus, if possible."""
    shrunk: Optional[ShrunkCounterexample] = None
    artifact: Optional[str] = None
    if minimize:
        shrunk = shrink(config, schedule, violation, oracles=oracles)
        destination = corpus.counterexamples_dir()
        if destination is not None:
            os.makedirs(destination, exist_ok=True)
            artifact = os.path.join(
                destination, f"{violation.kind}.trace.jsonl"
            )
            persist_counterexample(shrunk, artifact, oracles=oracles)
    return FuzzFinding(
        violation=violation,
        schedule=tuple(schedule),
        shrunk=shrunk,
        artifact=artifact,
    )


__all__ = [
    "FuzzFinding",
    "FuzzResult",
    "FuzzStats",
    "FuzzSpec",
    "FuzzTarget",
    "SeedSet",
    "builtin_targets",
    "eager_schedule",
    "fuzz",
    "lazy_schedule",
    "resolve_target",
    "seed_schedules",
]
