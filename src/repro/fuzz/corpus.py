"""The fuzzer's deduplicating, replayable on-disk corpus.

A corpus is a directory::

    corpus/
      index.json                     # entries + coverage map (one JSON doc)
      entries/<id>.trace.jsonl       # one replayable v2 traceio artifact each
      counterexamples/<name>.trace.jsonl   # shrunk violations (explore format)

Every entry is **content-addressed**: its id is the SHA-256 of the canonical
JSON of (configuration, schedule), so re-adding an input a previous run
already found is a no-op and two runs that discover the same schedule store
byte-identical artifacts under the same name.  Entry artifacts reuse the
v2 traceio format with explorer-style provenance (configuration + schedule
in the header ``meta``), so every corpus item replays through
:mod:`repro.traceio` alone and re-executes live byte-identically —
:func:`replay_corpus_entry` checks both, exactly like
:func:`repro.explore.replay_counterexample` does for violations.

The index also persists the :class:`~repro.fuzz.coverage.CoverageMap`, so a
warm start (nightly CI restores the corpus from cache) resumes novelty
decisions where the previous run stopped.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.explore.executor import ScheduleExecutor
from repro.explore.oracles import OracleStack
from repro.explore.program import Choice, ExploreConfig
from repro.fuzz.coverage import CoverageMap, Feature

#: Name of the index document inside a corpus directory.
INDEX_NAME = "index.json"
#: Subdirectory holding the per-entry trace artifacts.
ENTRIES_DIR = "entries"
#: Subdirectory holding shrunk counterexample artifacts.
COUNTEREXAMPLES_DIR = "counterexamples"


def entry_id(config: ExploreConfig, schedule: Sequence[Choice]) -> str:
    """The content address of one (configuration, schedule) input.

    Args:
        config: the fixed configuration.
        schedule: the schedule tokens.

    Returns:
        The first 16 hex digits of the SHA-256 of the canonical JSON of the
        pair — stable across runs, processes and platforms.
    """
    canonical = json.dumps(
        {
            "config": config.describe(),
            "schedule": [list(token) for token in schedule],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus input: a schedule, its coverage, and its lineage."""

    entry_id: str
    config: ExploreConfig
    schedule: Tuple[Choice, ...]
    #: Features this input newly exhibited when it was added.
    features: Tuple[Feature, ...]
    #: Parent entry id (``None`` for seeds).
    parent: Optional[str] = None
    #: Mutation operator that produced it (``"seed"`` for seeds).
    op: str = "seed"

    def as_document(self) -> Dict[str, Any]:
        """JSON-encodable form (one element of the index's entry list).

        Returns:
            The entry as a plain dict.
        """
        return {
            "id": self.entry_id,
            "config": self.config.describe(),
            "schedule": [list(token) for token in self.schedule],
            "features": [list(feature) for feature in self.features],
            "parent": self.parent,
            "op": self.op,
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "CorpusEntry":
        """Rebuild an entry from its :meth:`as_document` form.

        Args:
            document: the persisted form.

        Returns:
            An equivalent :class:`CorpusEntry`.
        """
        return cls(
            entry_id=str(document["id"]),
            config=ExploreConfig.from_mapping(document["config"]),
            schedule=tuple(
                (str(kind), int(value)) for kind, value in document["schedule"]
            ),
            features=tuple(tuple(feature) for feature in document["features"]),
            parent=document.get("parent"),
            op=str(document.get("op", "seed")),
        )


@dataclass
class Corpus:
    """Ordered, deduplicating collection of corpus entries.

    With ``root`` set the corpus is disk-backed: :meth:`add` persists one
    replayable trace artifact per entry and :meth:`save` writes the index;
    without it the corpus is purely in-memory (the benchmark's mode).
    """

    root: Optional[str] = None
    entries: Dict[str, CorpusEntry] = field(default_factory=dict)
    coverage: CoverageMap = field(default_factory=CoverageMap)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, root: str) -> "Corpus":
        """Open a disk-backed corpus, warm or cold.

        Args:
            root: the corpus directory (created lazily on first save).

        Returns:
            The corpus with any persisted entries and coverage map loaded.
        """
        corpus = cls(root=root)
        index_path = os.path.join(root, INDEX_NAME)
        if os.path.exists(index_path):
            with open(index_path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            for entry_doc in document.get("entries", []):
                entry = CorpusEntry.from_document(entry_doc)
                corpus.entries[entry.entry_id] = entry
            corpus.coverage = CoverageMap.from_document(
                document.get("coverage", {})
            )
        return corpus

    def save(self) -> None:
        """Write the index document (no-op for in-memory corpora)."""
        if self.root is None:
            return
        os.makedirs(self.root, exist_ok=True)
        document = {
            "version": 1,
            "entries": [entry.as_document() for entry in self.entries.values()],
            "coverage": self.coverage.as_document(),
        }
        index_path = os.path.join(self.root, INDEX_NAME)
        scratch = index_path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(scratch, index_path)

    def entry_path(self, entry: CorpusEntry) -> Optional[str]:
        """The trace-artifact path of an entry (``None`` when in-memory).

        Args:
            entry: the corpus entry.

        Returns:
            The artifact path under ``entries/``, or ``None``.
        """
        if self.root is None:
            return None
        return os.path.join(
            self.root, ENTRIES_DIR, f"{entry.entry_id}.trace.jsonl"
        )

    # ------------------------------------------------------------------
    # Mutation-facing API
    # ------------------------------------------------------------------
    def __contains__(self, identifier: str) -> bool:
        """True when an entry with this id is present."""
        return identifier in self.entries

    def __len__(self) -> int:
        """Number of entries."""
        return len(self.entries)

    def ordered(self) -> List[CorpusEntry]:
        """The entries in insertion order (the fuzzer's mutation pool).

        Returns:
            The entry list, oldest first.
        """
        return list(self.entries.values())

    def add(
        self,
        entry: CorpusEntry,
        *,
        oracles: Optional[OracleStack] = None,
        persist: bool = True,
    ) -> Optional[str]:
        """Insert an entry; persist its replayable artifact when disk-backed.

        The artifact is produced by re-executing the schedule with a trace
        writer attached (the same mechanism explorer counterexamples use),
        so its bytes are a pure function of (configuration, schedule,
        provenance) — the determinism and round-trip tests pin this.

        Args:
            entry: the entry to insert (no-op if its id is present).
            oracles: optional oracle-stack override for the persistence
                re-execution.
            persist: set False to skip artifact writing (index-only add).

        Returns:
            The persisted artifact path, or ``None`` (in-memory, duplicate,
            or ``persist=False``).

        Raises:
            RuntimeError: when the persistence re-execution unexpectedly
                violates an oracle (corpus entries are violation-free by
                construction).
        """
        if entry.entry_id in self.entries:
            return None
        self.entries[entry.entry_id] = entry
        path = self.entry_path(entry)
        if path is None or not persist:
            return None
        os.makedirs(os.path.dirname(path), exist_ok=True)
        outcome = ScheduleExecutor(entry.config, oracles).execute(
            entry.schedule,
            trace_path=path,
            trace_meta={"fuzz": {"entry": entry.entry_id, "op": entry.op,
                                 "parent": entry.parent}},
        )
        if outcome.violation is not None:
            raise RuntimeError(
                f"corpus entry {entry.entry_id} violated while persisting: "
                f"{outcome.violation}"
            )
        return path

    def counterexamples_dir(self) -> Optional[str]:
        """The counterexample directory path (``None`` when in-memory).

        Returns:
            ``<root>/counterexamples`` (not created yet), or ``None``.
        """
        if self.root is None:
            return None
        return os.path.join(self.root, COUNTEREXAMPLES_DIR)


@dataclass
class CorpusEntryReplay:
    """Outcome of replaying one persisted corpus entry."""

    path: str
    entry_id: str
    byte_identical: bool
    trace_events: int


def replay_corpus_entry(
    path: str, *, oracles: Optional[OracleStack] = None
) -> CorpusEntryReplay:
    """Replay a persisted corpus entry and verify it byte for byte.

    Mirrors :func:`repro.explore.replay_counterexample` for violation-free
    entries: the artifact must (1) rehydrate through :mod:`repro.traceio`,
    (2) re-execute live without any violation, and (3) the live re-execution
    must write byte-identical artifact bytes.

    Args:
        path: the ``entries/<id>.trace.jsonl`` artifact.
        oracles: optional oracle-stack override for the re-execution.

    Returns:
        The replay outcome (byte-compare verdict included).

    Raises:
        ValueError: when the artifact carries no explorer/fuzz provenance.
        RuntimeError: when the re-execution violates an oracle.
    """
    import tempfile

    from repro.traceio.reader import TraceReader

    replayed = TraceReader(path).replay()
    meta = (replayed.header.get("meta") or {}).get("explorer")
    if not meta:
        raise ValueError(
            f"{path}: trace carries no explorer provenance in its header meta "
            f"— was it written by repro.fuzz?"
        )
    config = ExploreConfig.from_mapping(meta["config"])
    schedule: Tuple[Choice, ...] = tuple(
        (str(kind), int(value)) for kind, value in meta["schedule"]
    )
    extra = {
        key: value
        for key, value in meta.items()
        if key not in ("config", "schedule")
    }
    with tempfile.TemporaryDirectory() as scratch:
        fresh_path = os.path.join(scratch, os.path.basename(path))
        outcome = ScheduleExecutor(config, oracles).execute(
            schedule, trace_path=fresh_path, trace_meta=extra
        )
        if outcome.violation is not None:
            raise RuntimeError(
                f"{path}: re-executing the corpus entry violated an oracle: "
                f"{outcome.violation}"
            )
        with open(path, "rb") as original, open(fresh_path, "rb") as fresh:
            byte_identical = original.read() == fresh.read()
    identifier = (meta.get("fuzz") or {}).get("entry") or entry_id(config, schedule)
    return CorpusEntryReplay(
        path=path,
        entry_id=str(identifier),
        byte_identical=byte_identical,
        trace_events=replayed.recorder.log.total_events(),
    )


__all__ = [
    "COUNTEREXAMPLES_DIR",
    "Corpus",
    "CorpusEntry",
    "CorpusEntryReplay",
    "ENTRIES_DIR",
    "INDEX_NAME",
    "entry_id",
    "replay_corpus_entry",
]
