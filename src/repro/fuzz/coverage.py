"""Domain coverage signals that guide the schedule fuzzer.

Classic fuzzers count branch edges; this one counts *checkpoint-pattern
structure*.  Every violation-free execution is abstracted into a small set
of **features** — hashable tuples naming a structural phenomenon the
execution exhibited — and an input is *interesting* (kept in the corpus,
mutated further) exactly when it exhibits a feature no earlier execution
did.  The dimensions, all computed from the analyses the oracle stack
already builds (so observation is nearly free):

* ``zz`` — zigzag-path shapes: one feature per zigzag pair, abstracted to
  (source pid, target pid, bucketed index delta) so a *shape* is novel, not
  every concrete pair;
* ``scc`` — the R-graph's cyclic structure: how many non-trivial strongly
  connected components exist and how large the biggest one is;
* ``useless`` — how many checkpoints lie on zigzag cycles (Netzer–Xu
  useless checkpoints), bucketed;
* ``ret`` — retained-set sizes: the Theorem-1 and Theorem-2 retained-set
  cardinalities, bucketed, plus what the collector actually kept;
* ``rl`` — recovery-line depth per recovery session: how many processes
  rolled back and how many general checkpoints were lost;
* ``pend`` — messages still in flight at the end (drop/delay mutations
  reach states exhaustive exploration orders differently).

Buckets deliberately coarsen counts (exact 0/1/2/3, then ranges) so the
feature space stays small enough that novelty means *structure*, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ccp.rollback_graph import RollbackDependencyGraph
    from repro.simulation.runner import SimulationRunner

#: One coverage feature: a dimension tag followed by small integers.
Feature = Tuple[object, ...]


def bucket(count: int) -> int:
    """Coarsen a non-negative count into a small stable bucket id.

    Exact for 0-3, then 4-5 -> 4, 6-8 -> 5, 9-13 -> 6, 14+ -> 7.

    Args:
        count: the non-negative count to coarsen.

    Returns:
        A bucket id in ``range(8)``.
    """
    if count <= 3:
        return count
    if count <= 5:
        return 4
    if count <= 8:
        return 5
    if count <= 13:
        return 6
    return 7


def _scc_sizes(graph: "RollbackDependencyGraph", nodes: Iterable) -> List[int]:
    """Sizes of the graph's strongly connected components (iterative Tarjan).

    Args:
        graph: the R-graph to condense.
        nodes: every node to consider (its general checkpoints).

    Returns:
        The component sizes, unordered.
    """
    index: Dict[object, int] = {}
    low: Dict[object, int] = {}
    on_stack: Set[object] = set()
    stack: List[object] = []
    sizes: List[int] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        # Iterative DFS: (node, iterator over successors).
        work = [(root, iter(sorted(graph.successors(root), key=str)))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.successors(succ), key=str))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                size = 0
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    size += 1
                    if member is node:
                        break
                sizes.append(size)
    return sizes


def state_features(runner: "SimulationRunner") -> FrozenSet[Feature]:
    """Extract the coverage features of one final execution state.

    Args:
        runner: the runner of a completed, violation-free execution (the
            ``state_probe`` argument of
            :meth:`repro.explore.ScheduleExecutor.execute` supplies it).

    Returns:
        The frozen feature set of the execution (see the module docstring
        for the dimensions).
    """
    ccp = runner.current_ccp()
    analyses = ccp.analyses
    features: Set[Feature] = set()

    # Zigzag-path shapes.
    for source, target in analyses.zigzag.zigzag_pairs():
        delta = target.index - source.index
        clamped = max(-3, min(3, delta))
        features.add(("zz", source.pid, target.pid, clamped))
    if not analyses.zigzag.zigzag_pairs():
        features.add(("zz", "none"))

    # R-graph SCC signature.
    nodes = [cid for pid in ccp.processes for cid in ccp.general_ids(pid)]
    sizes = _scc_sizes(analyses.rollback_graph, nodes)
    nontrivial = [size for size in sizes if size > 1]
    features.add(
        ("scc", bucket(len(nontrivial)), bucket(max(nontrivial, default=0)))
    )

    # Useless (zigzag-cycle) checkpoints.
    features.add(("useless", bucket(len(analyses.useless_checkpoints))))

    # Retained-set sizes: the theorems' characterisations and what the
    # collector actually kept on stable storage.
    kept = sum(len(node.storage.retained_indices()) for node in runner.nodes)
    features.add(
        (
            "ret",
            bucket(len(analyses.theorem1_retained)),
            bucket(len(analyses.theorem2_retained)),
            bucket(kept),
        )
    )

    # Recovery-line depths, one feature per recovery session.
    for record in runner.recoveries:
        features.add(
            (
                "rl",
                bucket(record.rolled_back_processes),
                bucket(record.lost_general_checkpoints),
            )
        )

    # Messages still in flight at the end (never-delivered ones included) —
    # drop/delay mutations reach states ordering alone cannot.
    stats = runner.network.stats
    pending = (
        stats.app_sent
        - stats.app_delivered
        - stats.app_dropped
        - stats.app_discarded_by_recovery
    )
    features.add(("pend", bucket(max(pending, 0))))
    return frozenset(features)


@dataclass
class CoverageMap:
    """The deduplicating set of every feature observed so far.

    Observation order matters only for bookkeeping (`first_seen` indices are
    reported, not used for decisions), so a map rebuilt from a persisted
    corpus index reaches the same novelty verdicts as the live run that
    wrote it.
    """

    #: feature -> execution ordinal (0-based) that first exhibited it.
    first_seen: Dict[Feature, int] = field(default_factory=dict)
    #: Executions observed (including non-novel ones).
    observed: int = 0

    def observe(self, features: FrozenSet[Feature]) -> FrozenSet[Feature]:
        """Fold one execution's features in; return the newly seen ones.

        Args:
            features: the feature set of one execution.

        Returns:
            The subset of ``features`` never seen before (empty when the
            execution added no coverage).
        """
        new = frozenset(f for f in features if f not in self.first_seen)
        for feature in new:
            self.first_seen[feature] = self.observed
        self.observed += 1
        return new

    def __len__(self) -> int:
        """Number of distinct features seen."""
        return len(self.first_seen)

    def dimension_counts(self) -> Dict[str, int]:
        """Distinct-feature count per dimension tag (stats reporting).

        Returns:
            A mapping of dimension tag (``zz``, ``scc``, ...) to the number
            of distinct features observed in that dimension.
        """
        counts: Dict[str, int] = {}
        for feature in self.first_seen:
            tag = str(feature[0])
            counts[tag] = counts.get(tag, 0) + 1
        return dict(sorted(counts.items()))

    def as_document(self) -> Dict[str, object]:
        """JSON-encodable form (persisted in the corpus index).

        Returns:
            A dict with the serialised feature list and observation count.
        """
        return {
            "observed": self.observed,
            "features": sorted(
                ([list(feature), seen] for feature, seen in self.first_seen.items()),
                key=lambda item: (str(item[0]), item[1]),
            ),
        }

    @classmethod
    def from_document(cls, document: Dict[str, object]) -> "CoverageMap":
        """Rebuild a map persisted by :meth:`as_document`.

        Args:
            document: the persisted form.

        Returns:
            An equivalent :class:`CoverageMap`.
        """
        coverage = cls(observed=int(document.get("observed", 0)))  # type: ignore[arg-type]
        for encoded, seen in document.get("features", []):  # type: ignore[union-attr]
            coverage.first_seen[tuple(encoded)] = int(seen)
        return coverage


__all__ = ["CoverageMap", "Feature", "bucket", "state_features"]
