"""Coverage-guided schedule fuzzing of the checkpointing middleware.

The schedule-space **explorer** (:mod:`repro.explore`) enumerates small
configurations exhaustively; this package picks up exactly where it stops.
A :func:`fuzz` run seeds from structural extremes and the explorer's
deterministic budget frontier, mutates schedules and fault timings with
domain operators (:mod:`repro.fuzz.mutate`), executes every candidate under
the full oracle stack, and keeps the ones that exhibit novel
checkpoint-pattern structure (:mod:`repro.fuzz.coverage`) in a
content-addressed, replayable corpus (:mod:`repro.fuzz.corpus`).  Found
violations are shrunk and persisted with the explorer's own machinery.

Entry points: :func:`fuzz` (library), ``python -m repro fuzz`` (CLI).
"""

from repro.fuzz.corpus import (
    Corpus,
    CorpusEntry,
    CorpusEntryReplay,
    entry_id,
    replay_corpus_entry,
)
from repro.fuzz.coverage import CoverageMap, Feature, state_features
from repro.fuzz.fuzzer import (
    FuzzFinding,
    FuzzSpec,
    FuzzResult,
    FuzzStats,
    FuzzTarget,
    SeedSet,
    builtin_targets,
    eager_schedule,
    fuzz,
    lazy_schedule,
    resolve_target,
    seed_schedules,
)
from repro.fuzz.mutate import MUTATORS, complete, is_wellformed, splice

__all__ = [
    "MUTATORS",
    "Corpus",
    "CorpusEntry",
    "CorpusEntryReplay",
    "CoverageMap",
    "Feature",
    "FuzzFinding",
    "FuzzResult",
    "FuzzSpec",
    "FuzzStats",
    "FuzzTarget",
    "SeedSet",
    "builtin_targets",
    "complete",
    "eager_schedule",
    "entry_id",
    "fuzz",
    "is_wellformed",
    "lazy_schedule",
    "replay_corpus_entry",
    "resolve_target",
    "seed_schedules",
    "splice",
    "state_features",
]
