"""Schedule mutations: the fuzzer's search moves.

Every operator takes a *well-formed* schedule of one fixed
:class:`~repro.explore.ExploreConfig` and produces another well-formed,
**complete** schedule (every program step appears; deliveries are optional —
an undelivered message simply stays in flight, the legal execution the
explorer's ``drop_in_flight`` custody model already defines).  Operators
return ``None`` when inapplicable so the fuzzer can fall through to another
draw without wasting an execution.

The operator set mirrors the phenomena the coverage dimensions measure:

* :func:`swap_adjacent` — commute two neighbouring tokens (the minimal
  reordering; changes which causal edges exist);
* :func:`delay_delivery` / :func:`hasten_delivery` — move one delivery
  later/earlier across program steps (stale-message and overtaking shapes);
* :func:`drop_delivery` — never deliver one message (in-flight forever);
* :func:`reinstate_delivery` — re-deliver a message a previous mutation
  dropped (keeps drop from being an absorbing state);
* :func:`shift_crash` — move a crash step across neighbouring deliveries
  (the crash/recovery *instant* relative to in-flight traffic);
* :func:`splice` — prefix of one corpus schedule continued with the token
  choices of another (crossover).

Determinism: every operator draws only from the ``random.Random`` instance
it is given, so a fuzz run's entire trajectory is a function of its seed.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.explore.program import (
    ADVANCE,
    DELIVER,
    Choice,
    ExploreConfig,
    StepKind,
    validate_schedule,
)

#: A unary mutation operator (splice is handled separately).
Mutator = Callable[[random.Random, ExploreConfig, Sequence[Choice]], Optional[Tuple[Choice, ...]]]


def is_wellformed(config: ExploreConfig, schedule: Sequence[Choice]) -> bool:
    """True when ``schedule`` is a legal token sequence for ``config``.

    Args:
        config: the fixed configuration.
        schedule: the candidate token sequence.

    Returns:
        Whether :func:`repro.explore.validate_schedule` accepts it.
    """
    try:
        validate_schedule(config, schedule)
    except ValueError:
        return False
    return True


def complete(config: ExploreConfig, schedule: Sequence[Choice]) -> Tuple[Choice, ...]:
    """Append the program steps a schedule is missing, in order.

    Args:
        config: the fixed configuration.
        schedule: a well-formed (possibly partial) token sequence.

    Returns:
        The schedule extended with every not-yet-consumed ``("a", i)`` token
        so the whole program runs; deliveries are left as they are.
    """
    consumed = sum(1 for token in schedule if token[0] == ADVANCE)
    tail = tuple((ADVANCE, i) for i in range(consumed, len(config.program)))
    return tuple(schedule) + tail


def _finish(
    config: ExploreConfig,
    original: Sequence[Choice],
    candidate: Sequence[Choice],
) -> Optional[Tuple[Choice, ...]]:
    """Complete and validate a mutation result; ``None`` if it is a no-op."""
    completed = complete(config, candidate)
    if completed == tuple(original) or not is_wellformed(config, completed):
        return None
    return completed


def swap_adjacent(
    rng: random.Random, config: ExploreConfig, schedule: Sequence[Choice]
) -> Optional[Tuple[Choice, ...]]:
    """Swap one random pair of neighbouring tokens.

    Args:
        rng: the run's random stream.
        config: the fixed configuration.
        schedule: the schedule to mutate.

    Returns:
        The mutated schedule, or ``None`` when no legal swap exists at the
        drawn position.
    """
    if len(schedule) < 2:
        return None
    position = rng.randrange(len(schedule) - 1)
    tokens = list(schedule)
    tokens[position], tokens[position + 1] = tokens[position + 1], tokens[position]
    return _finish(config, schedule, tokens)


def _delivery_positions(schedule: Sequence[Choice]) -> List[int]:
    return [i for i, token in enumerate(schedule) if token[0] == DELIVER]


def _move_delivery(
    rng: random.Random,
    config: ExploreConfig,
    schedule: Sequence[Choice],
    *,
    later: bool,
) -> Optional[Tuple[Choice, ...]]:
    positions = _delivery_positions(schedule)
    if not positions:
        return None
    position = rng.choice(positions)
    token = schedule[position]
    rest = list(schedule[:position]) + list(schedule[position + 1:])
    if later:
        choices = range(position, len(rest) + 1)
    else:
        choices = range(0, position + 1)
    if not choices:
        return None
    target = rng.choice(list(choices))
    rest.insert(target, token)
    return _finish(config, schedule, rest)


def delay_delivery(
    rng: random.Random, config: ExploreConfig, schedule: Sequence[Choice]
) -> Optional[Tuple[Choice, ...]]:
    """Move one delivery token to a later position.

    Args:
        rng: the run's random stream.
        config: the fixed configuration.
        schedule: the schedule to mutate.

    Returns:
        The mutated schedule, or ``None`` when the move is illegal or a
        no-op.
    """
    return _move_delivery(rng, config, schedule, later=True)


def hasten_delivery(
    rng: random.Random, config: ExploreConfig, schedule: Sequence[Choice]
) -> Optional[Tuple[Choice, ...]]:
    """Move one delivery token to an earlier position.

    Args:
        rng: the run's random stream.
        config: the fixed configuration.
        schedule: the schedule to mutate.

    Returns:
        The mutated schedule, or ``None`` when the move is illegal or a
        no-op (e.g. it would precede the message's send).
    """
    return _move_delivery(rng, config, schedule, later=False)


def drop_delivery(
    rng: random.Random, config: ExploreConfig, schedule: Sequence[Choice]
) -> Optional[Tuple[Choice, ...]]:
    """Remove one delivery token: the message stays in flight forever.

    Args:
        rng: the run's random stream.
        config: the fixed configuration.
        schedule: the schedule to mutate.

    Returns:
        The mutated schedule, or ``None`` when no delivery exists.
    """
    positions = _delivery_positions(schedule)
    if not positions:
        return None
    position = rng.choice(positions)
    tokens = list(schedule[:position]) + list(schedule[position + 1:])
    return _finish(config, schedule, tokens)


def reinstate_delivery(
    rng: random.Random, config: ExploreConfig, schedule: Sequence[Choice]
) -> Optional[Tuple[Choice, ...]]:
    """Deliver a message the schedule currently never delivers.

    Args:
        rng: the run's random stream.
        config: the fixed configuration.
        schedule: the schedule to mutate.

    Returns:
        The mutated schedule with one ``("d", m)`` token inserted at a legal
        position, or ``None`` when every sent message is already delivered.
    """
    delivered = {token[1] for token in schedule if token[0] == DELIVER}
    undelivered = [
        m for m in range(config.message_count) if m not in delivered
    ]
    if not undelivered:
        return None
    message = rng.choice(undelivered)
    # Legal positions start after the send's advance token.
    send_step = next(
        i
        for i, step in enumerate(config.program)
        if step.kind is StepKind.SEND and config.send_ordinal(i) == message
    )
    earliest = None
    for position, token in enumerate(schedule):
        if token[0] == ADVANCE and token[1] == send_step:
            earliest = position + 1
            break
    if earliest is None:
        return None
    target = rng.randrange(earliest, len(schedule) + 1)
    tokens = list(schedule)
    tokens.insert(target, (DELIVER, message))
    return _finish(config, schedule, tokens)


def shift_crash(
    rng: random.Random, config: ExploreConfig, schedule: Sequence[Choice]
) -> Optional[Tuple[Choice, ...]]:
    """Move a crash step across the deliveries around it.

    Program steps are consumed strictly in order, so a crash token can only
    move between its neighbouring ``("a", ...)`` tokens — which is exactly
    the interesting axis: whether in-flight messages land before or after
    the recovery session.

    Args:
        rng: the run's random stream.
        config: the fixed configuration.
        schedule: the schedule to mutate.

    Returns:
        The mutated schedule, or ``None`` when the program has no crash or
        the crash has no room to move.
    """
    crash_positions = [
        i
        for i, token in enumerate(schedule)
        if token[0] == ADVANCE
        and config.program[token[1]].kind is StepKind.CRASH
    ]
    if not crash_positions:
        return None
    position = rng.choice(crash_positions)
    lower = 0
    for i in range(position - 1, -1, -1):
        if schedule[i][0] == ADVANCE:
            lower = i + 1
            break
    upper = len(schedule)
    for i in range(position + 1, len(schedule)):
        if schedule[i][0] == ADVANCE:
            upper = i
            break
    slots = [slot for slot in range(lower, upper) if slot != position]
    if not slots:
        return None
    target = rng.choice(slots)
    tokens = list(schedule)
    token = tokens.pop(position)
    tokens.insert(target, token)
    return _finish(config, schedule, tokens)


def splice(
    rng: random.Random,
    config: ExploreConfig,
    first: Sequence[Choice],
    second: Sequence[Choice],
) -> Optional[Tuple[Choice, ...]]:
    """Continue a prefix of ``first`` with the token choices of ``second``.

    The crossover walks ``second``'s tokens and keeps each one that is legal
    in the spliced state (program steps in order, deliveries after their
    send and at most once), then completes the program.

    Args:
        rng: the run's random stream.
        config: the fixed configuration.
        first: the schedule providing the prefix.
        second: the schedule providing the continuation.

    Returns:
        The spliced schedule, or ``None`` when it degenerates to ``first``.
    """
    cut = rng.randrange(len(first) + 1)
    tokens: List[Choice] = list(first[:cut])
    next_step = sum(1 for token in tokens if token[0] == ADVANCE)
    sent = sum(
        1
        for token in tokens
        if token[0] == ADVANCE and config.program[token[1]].kind is StepKind.SEND
    )
    delivered = {token[1] for token in tokens if token[0] == DELIVER}
    for kind, value in second:
        if kind == ADVANCE:
            if value == next_step and next_step < len(config.program):
                tokens.append((ADVANCE, value))
                if config.program[value].kind is StepKind.SEND:
                    sent += 1
                next_step += 1
        elif value < sent and value not in delivered:
            tokens.append((DELIVER, value))
            delivered.add(value)
    return _finish(config, first, tokens)


#: The unary operator registry, in the order the fuzzer draws from.
MUTATORS: Tuple[Tuple[str, Mutator], ...] = (
    ("swap", swap_adjacent),
    ("delay", delay_delivery),
    ("hasten", hasten_delivery),
    ("drop", drop_delivery),
    ("reinstate", reinstate_delivery),
    ("shift-crash", shift_crash),
)


__all__ = [
    "MUTATORS",
    "Mutator",
    "complete",
    "delay_delivery",
    "drop_delivery",
    "hasten_delivery",
    "is_wellformed",
    "reinstate_delivery",
    "shift_crash",
    "splice",
    "swap_adjacent",
]
