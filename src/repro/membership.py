"""Dynamic membership: join/leave as first-class events.

The paper's model fixes the process set for the whole execution.  This
module relaxes that: a run is provisioned with a *capacity* of
``num_processes`` slots, and a :class:`MembershipSchedule` says which pids
are present from the start, which join mid-run (taking their first
checkpoint ``s_i^0`` at join time), and which leave permanently.

Semantics, pinned here and documented in ``docs/membership.md``:

* **Join** — a dormant slot becomes a live process.  Until its join time a
  pid sends nothing, receives nothing and has no checkpoints, so it is
  invisible to every analysis (its dependency-vector column stays at the
  initial value).
* **Leave** — permanent retirement.  A departed process never crashes, is
  never part of a faulty set, and is excluded from every recovery line
  (its component is pinned to its volatile index, so recovery never rolls
  it back).  By the paper's own obsolescence theory its checkpoints can
  never pin any future recovery line, so *all* of them become garbage at
  departure — the garbage-of-departed invariant the collectors enforce.
* Messages still in flight to or from a leaver at departure are lost
  (the channel model already permits loss, so this adds no new behaviour).

:class:`MembershipError` is the loud replacement for the IndexErrors that
fixed ``num_processes × num_processes`` structures used to raise when an
out-of-range pid appeared.  :class:`MembershipSpec` is the declarative
campaign-axis form, mirroring :class:`repro.simulation.failures.FailureModelSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)


class MembershipError(ValueError):
    """A pid outside the current membership (or capacity) was referenced."""


@dataclass(frozen=True, order=True)
class MembershipEvent:
    """One membership transition: a pid joining or leaving at a time."""

    time: float
    pid: int
    kind: str  # "join" | "leave"

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave"):
            raise ValueError(f"unknown membership event kind {self.kind!r}")
        if self.pid < 0:
            raise ValueError("membership events need a non-negative pid")
        if self.time < 0:
            raise ValueError("membership events need a non-negative time")


@dataclass(frozen=True)
class MembershipSchedule:
    """The ordered join/leave events of one run.

    ``num_processes`` is the run's *capacity*; pids without a join event
    are members from time 0.  Each pid may join at most once and leave at
    most once, and a joiner's leave must come strictly after its join.
    """

    events: Tuple[MembershipEvent, ...] = ()

    @classmethod
    def static(cls) -> "MembershipSchedule":
        """The fixed-membership schedule every pre-existing run uses."""
        return cls(())

    @classmethod
    def of(
        cls,
        *,
        joins: Iterable[Tuple[float, int]] = (),
        leaves: Iterable[Tuple[float, int]] = (),
    ) -> "MembershipSchedule":
        """Build a schedule from ``(time, pid)`` pairs, validating edges."""
        events = [MembershipEvent(time, pid, "join") for time, pid in joins]
        events.extend(MembershipEvent(time, pid, "leave") for time, pid in leaves)
        schedule = cls(tuple(sorted(events)))
        schedule._validate()
        return schedule

    def _validate(self) -> None:
        join_at: Dict[int, float] = {}
        leave_at: Dict[int, float] = {}
        for event in self.events:
            table = join_at if event.kind == "join" else leave_at
            if event.pid in table:
                raise MembershipError(
                    f"process {event.pid} has more than one {event.kind} event"
                )
            table[event.pid] = event.time
        for pid, leave_time in leave_at.items():
            if pid in join_at and leave_time <= join_at[pid]:
                raise MembershipError(
                    f"process {pid} leaves at {leave_time} but only joins "
                    f"at {join_at[pid]}"
                )

    @property
    def joins(self) -> Tuple[MembershipEvent, ...]:
        """The join events, in time order."""
        return tuple(e for e in self.events if e.kind == "join")

    @property
    def leaves(self) -> Tuple[MembershipEvent, ...]:
        """The leave events, in time order."""
        return tuple(e for e in self.events if e.kind == "leave")

    @property
    def joining_pids(self) -> FrozenSet[int]:
        """Pids that are dormant at time 0 and join mid-run."""
        return frozenset(e.pid for e in self.events if e.kind == "join")

    def initial_members(self, num_processes: int) -> FrozenSet[int]:
        """The pids live at time 0 for a run of the given capacity."""
        return frozenset(range(num_processes)) - self.joining_pids

    def required_capacity(self) -> int:
        """The smallest ``num_processes`` that covers every referenced pid."""
        return max((e.pid + 1 for e in self.events), default=0)

    def validate_for(self, num_processes: int) -> None:
        """Reject schedules referencing pids beyond the run's capacity."""
        for event in self.events:
            if event.pid >= num_processes:
                raise MembershipError(
                    f"membership schedule names process {event.pid} but the "
                    f"run has only {num_processes} processes "
                    f"(expected pid < {num_processes})"
                )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def describe(self) -> List[List[Any]]:
        """Compact JSON form for trace headers: ``[[kind, pid, time], ...]``."""
        return [[e.kind, e.pid, e.time] for e in self.events]

    @classmethod
    def from_description(
        cls, description: Sequence[Sequence[Any]]
    ) -> "MembershipSchedule":
        """Rebuild a schedule from its :meth:`describe` form."""
        return cls.of(
            joins=[
                (float(time), int(pid))
                for kind, pid, time in description
                if kind == "join"
            ],
            leaves=[
                (float(time), int(pid))
                for kind, pid, time in description
                if kind == "leave"
            ],
        )


@dataclass
class MembershipView:
    """The mutable membership state a recorder (or runner) threads along.

    Tracks three disjoint pid classes over a growable capacity: *members*
    (live), *dormant* (provisioned, not yet joined) and *departed*
    (permanently retired).
    """

    num_processes: int
    initial_members: Optional[FrozenSet[int]] = None
    _members: Set[int] = field(init=False)
    _departed: Set[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_processes < 0:
            raise ValueError("capacity must be non-negative")
        if self.initial_members is None:
            members: Set[int] = set(range(self.num_processes))
        else:
            members = set(self.initial_members)
            for pid in members:
                self._check_capacity(pid)
        self._members = members
        self._departed = set()

    def _check_capacity(self, pid: int) -> None:
        if not 0 <= pid < self.num_processes:
            raise MembershipError(
                f"process {pid} is outside the run's capacity of "
                f"{self.num_processes} processes (expected pid < "
                f"{self.num_processes})"
            )

    @property
    def members(self) -> FrozenSet[int]:
        """The live pids."""
        return frozenset(self._members)

    @property
    def departed(self) -> FrozenSet[int]:
        """The permanently retired pids."""
        return frozenset(self._departed)

    @property
    def dormant(self) -> FrozenSet[int]:
        """Provisioned pids that have not joined yet."""
        return (
            frozenset(range(self.num_processes)) - self._members - self._departed
        )

    def is_member(self, pid: int) -> bool:
        """Whether ``pid`` is currently live."""
        return pid in self._members

    def join(self, pid: int) -> None:
        """A dormant pid becomes a member (grows capacity if needed)."""
        if pid in self._members:
            raise MembershipError(f"process {pid} is already a member")
        if pid in self._departed:
            raise MembershipError(
                f"process {pid} departed and cannot rejoin (leaves are "
                f"permanent)"
            )
        if pid < 0:
            raise MembershipError(f"process pid must be non-negative, got {pid}")
        if pid >= self.num_processes:
            self.num_processes = pid + 1
        self._members.add(pid)

    def leave(self, pid: int) -> None:
        """A member retires permanently."""
        if pid in self._departed:
            raise MembershipError(f"process {pid} already departed")
        if pid not in self._members:
            self._check_capacity(pid)
            raise MembershipError(
                f"process {pid} cannot leave: it never joined"
            )
        self._members.discard(pid)
        self._departed.add(pid)


# ----------------------------------------------------------------------
# Declarative membership models (campaign grid axes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MembershipSpec:
    """A membership schedule in declarative, hashable form.

    Mirrors :class:`repro.simulation.failures.FailureModelSpec`: campaign
    cells carry one of these (frozen, tuple-based) and hash its
    :meth:`label` into the cell identity — but only when it is non-static,
    so every pre-existing cell id is preserved.
    """

    joins: Tuple[Tuple[float, int], ...] = ()
    leaves: Tuple[Tuple[float, int], ...] = ()

    @classmethod
    def static(cls) -> "MembershipSpec":
        """The default: fixed membership for the whole run."""
        return cls()

    @classmethod
    def of(
        cls,
        *,
        joins: Iterable[Tuple[float, int]] = (),
        leaves: Iterable[Tuple[float, int]] = (),
    ) -> "MembershipSpec":
        """Build and validate a spec (bad schedules fail fast, not per cell)."""
        spec = cls(
            joins=tuple(sorted((float(t), int(p)) for t, p in joins)),
            leaves=tuple(sorted((float(t), int(p)) for t, p in leaves)),
        )
        spec.schedule()  # validates join/leave pairing via MembershipSchedule.of
        return spec

    @classmethod
    def from_mapping(cls, document: Mapping[str, Any]) -> "MembershipSpec":
        """Build a spec from ``{"joins": [[t, pid], ...], "leaves": ...}``."""
        known = {"joins", "leaves"}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ValueError(
                f"unknown membership keys: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls.of(
            joins=[(t, p) for t, p in document.get("joins", ())],
            leaves=[(t, p) for t, p in document.get("leaves", ())],
        )

    def is_static(self) -> bool:
        """True when the spec has no events (the compatible default)."""
        return not self.joins and not self.leaves

    def label(self) -> str:
        """Canonical compact form, e.g. ``membership(join=1@20.0,leave=2@60.0)``.

        Deterministic (events sorted by time then pid) because it is hashed
        into campaign cell identities.
        """
        parts = [f"join={pid}@{time!r}" for time, pid in self.joins]
        parts.extend(f"leave={pid}@{time!r}" for time, pid in self.leaves)
        return f"membership({','.join(parts)})"

    def schedule(self) -> MembershipSchedule:
        """Materialise the spec into a concrete :class:`MembershipSchedule`."""
        return MembershipSchedule.of(joins=self.joins, leaves=self.leaves)
