"""Checkpoint-Before-Receive (CBR).

The most eager RDT protocol in the library: a forced checkpoint is taken
before delivering a message whenever the current checkpoint interval already
contains any event.  As a consequence every interval contains at most one
receive and that receive is the interval's first event, so every zigzag
hand-off (a send following a receive in the same or a later interval) is in
fact causal — all zigzag paths are causal paths and RDT holds trivially.

CBR takes many more forced checkpoints than FDI or FDAS; it is included as the
upper end of the protocol spectrum for the evaluation benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.protocols.base import CheckpointingProtocol


class CheckpointBeforeReceiveProtocol(CheckpointingProtocol):
    """Force a checkpoint before any receive that is not the first event of its interval."""

    name = "cbr"
    ensures_rdt = True

    def __init__(self, pid: int, num_processes: int) -> None:
        super().__init__(pid, num_processes)
        self._interval_has_activity = False

    def notify_send(self) -> None:
        self._interval_has_activity = True

    def notify_receive(self) -> None:
        self._interval_has_activity = True

    def notify_checkpoint(self) -> None:
        self._interval_has_activity = False

    def should_force_checkpoint(
        self, current_dv: Sequence[int], piggybacked: Sequence[int]
    ) -> bool:
        """Force whenever the interval already has a send or a receive."""
        return self._interval_has_activity
