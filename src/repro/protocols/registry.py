"""Registry of checkpointing protocols, keyed by name.

The registry lets benchmarks and examples sweep over protocols by name
(``for proto in available_protocols(): ...``) without importing each class.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.protocols.base import CheckpointingProtocol
from repro.protocols.cbr import CheckpointBeforeReceiveProtocol
from repro.protocols.fdas import FixedDependencyAfterSendProtocol
from repro.protocols.fdi import FixedDependencyIntervalProtocol
from repro.protocols.uncoordinated import UncoordinatedProtocol

_PROTOCOLS: Dict[str, Type[CheckpointingProtocol]] = {
    cls.name: cls
    for cls in (
        UncoordinatedProtocol,
        CheckpointBeforeReceiveProtocol,
        FixedDependencyIntervalProtocol,
        FixedDependencyAfterSendProtocol,
    )
}


def available_protocols(*, rdt_only: bool = False) -> List[str]:
    """Names of all registered protocols (optionally only the RDT ones)."""
    return [
        name
        for name, cls in sorted(_PROTOCOLS.items())
        if not rdt_only or cls.ensures_rdt
    ]


def protocol_class(name: str) -> Type[CheckpointingProtocol]:
    """The protocol class registered under ``name``."""
    try:
        return _PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(sorted(_PROTOCOLS))}"
        ) from None


def make_protocol(name: str, pid: int, num_processes: int) -> CheckpointingProtocol:
    """Instantiate the protocol registered under ``name`` for one process."""
    return protocol_class(name)(pid, num_processes)


def register_protocol(cls: Type[CheckpointingProtocol]) -> Type[CheckpointingProtocol]:
    """Register a custom protocol class (usable as a decorator)."""
    if not issubclass(cls, CheckpointingProtocol):
        raise TypeError("protocols must subclass CheckpointingProtocol")
    _PROTOCOLS[cls.name] = cls
    return cls


def unregister_protocol(name: str) -> None:
    """Remove a previously registered custom protocol (no-op if absent)."""
    _PROTOCOLS.pop(name, None)
