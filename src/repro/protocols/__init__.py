"""Communication-induced checkpointing protocols.

The paper assumes the application runs an *RDT checkpointing protocol*: a
communication-induced protocol that piggybacks dependency vectors and takes
forced checkpoints so that every checkpoint and communication pattern is
RD-trackable.  This subpackage provides several such protocols (plus the
purely uncoordinated baseline that is *not* RDT and exhibits the domino
effect), expressed as *policies*: given the process's current dependency
vector and the vector piggybacked on an arriving message, should a forced
checkpoint be taken before the message is delivered?

Protocols, from most to least eager:

* :class:`CheckpointBeforeReceiveProtocol` (CBR) — a receive is always the
  first event of its interval;
* :class:`FixedDependencyIntervalProtocol` (FDI) — the dependency vector may
  only change at interval boundaries;
* :class:`FixedDependencyAfterSendProtocol` (FDAS, Wang 1997) — the dependency
  vector may not change after the first send of an interval;
* :class:`UncoordinatedProtocol` — never forces a checkpoint (not RDT).

The separation protocol-as-policy / node-as-mechanism lets any protocol be
paired with any garbage collector in the simulator; Algorithm 4's merged
FDAS + RDT-LGC implementation lives in :mod:`repro.core.merged_fdas`.
"""

from repro.protocols.base import CheckpointingProtocol
from repro.protocols.cbr import CheckpointBeforeReceiveProtocol
from repro.protocols.fdas import FixedDependencyAfterSendProtocol
from repro.protocols.fdi import FixedDependencyIntervalProtocol
from repro.protocols.registry import available_protocols, make_protocol
from repro.protocols.uncoordinated import UncoordinatedProtocol

__all__ = [
    "CheckpointBeforeReceiveProtocol",
    "CheckpointingProtocol",
    "FixedDependencyAfterSendProtocol",
    "FixedDependencyIntervalProtocol",
    "UncoordinatedProtocol",
    "available_protocols",
    "make_protocol",
]
