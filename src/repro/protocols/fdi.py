"""Fixed-Dependency-Interval (FDI).

The dependency vector of a process is only allowed to change at checkpoint
interval boundaries: if an arriving message carries new causal information and
the current interval has already recorded any activity since its opening
checkpoint, a forced checkpoint is taken first, so the update happens at the
very beginning of a fresh interval.  FDI is strictly more eager than FDAS and
also ensures RDT (Wang 1997); it serves as the middle point of the protocol
spectrum in the evaluation benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.protocols.base import CheckpointingProtocol


class FixedDependencyIntervalProtocol(CheckpointingProtocol):
    """Force a checkpoint before any dependency-changing receive in a non-fresh interval."""

    name = "fdi"
    ensures_rdt = True

    def __init__(self, pid: int, num_processes: int) -> None:
        super().__init__(pid, num_processes)
        self._interval_has_activity = False

    def notify_send(self) -> None:
        self._interval_has_activity = True

    def notify_receive(self) -> None:
        self._interval_has_activity = True

    def notify_checkpoint(self) -> None:
        self._interval_has_activity = False

    def should_force_checkpoint(
        self, current_dv: Sequence[int], piggybacked: Sequence[int]
    ) -> bool:
        """Force iff the message brings new causal information into a used interval."""
        return self._interval_has_activity and self.brings_new_information(
            current_dv, piggybacked
        )
