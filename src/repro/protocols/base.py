"""Base interface for communication-induced checkpointing protocols.

A protocol instance belongs to one process.  It never touches stable storage
or the network itself; it only observes the local event stream (sends,
receives, checkpoints) and answers a single question: *must a forced
checkpoint be taken before this incoming message is delivered?*  The
surrounding middleware (:class:`repro.simulation.node.SimulationNode`) owns
the dependency vector, performs the piggybacking and applies the decision.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Sequence


class CheckpointingProtocol(abc.ABC):
    """Forced-checkpoint policy of one process."""

    #: Short protocol name used in reports and the registry.
    name: ClassVar[str] = "abstract"
    #: Whether the protocol guarantees rollback-dependency trackability.
    ensures_rdt: ClassVar[bool] = False

    def __init__(self, pid: int, num_processes: int) -> None:
        if not 0 <= pid < num_processes:
            raise ValueError(f"pid {pid} out of range for {num_processes} processes")
        self._pid = pid
        self._num_processes = num_processes

    @property
    def pid(self) -> int:
        """The owning process id."""
        return self._pid

    @property
    def num_processes(self) -> int:
        """Number of processes in the system."""
        return self._num_processes

    # ------------------------------------------------------------------
    # Event notifications
    # ------------------------------------------------------------------
    def notify_send(self) -> None:
        """Called right before an application message is sent."""

    def notify_receive(self) -> None:
        """Called right after an application message has been delivered."""

    def notify_checkpoint(self) -> None:
        """Called right after a checkpoint (basic or forced) has been taken."""

    def reset_after_rollback(self) -> None:
        """Called when the process restarts from a checkpoint after a failure."""
        self.notify_checkpoint()

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def should_force_checkpoint(
        self, current_dv: Sequence[int], piggybacked: Sequence[int]
    ) -> bool:
        """Decide whether to force a checkpoint before delivering a message.

        ``current_dv`` is the process's dependency vector at the moment the
        message arrives; ``piggybacked`` is the vector carried by the message.
        """

    # ------------------------------------------------------------------
    # Helpers shared by concrete protocols
    # ------------------------------------------------------------------
    @staticmethod
    def brings_new_information(
        current_dv: Sequence[int], piggybacked: Sequence[int]
    ) -> bool:
        """True if delivering the message would update some ``DV`` entry."""
        return any(value > current_dv[j] for j, value in enumerate(piggybacked))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(pid={self._pid})"
