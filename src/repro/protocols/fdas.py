"""Fixed-Dependency-After-Send (FDAS, Wang 1997).

After a process sends its first message in a checkpoint interval, its
dependency vector must stay fixed for the remainder of the interval.  A
message that arrives carrying new causal information after such a send
triggers a forced checkpoint before it is delivered.  FDAS is the protocol
the paper merges with RDT-LGC in Algorithm 4 (see
:mod:`repro.core.merged_fdas` for that merged implementation); this class is
the stand-alone policy used when pairing FDAS with other garbage collectors.
"""

from __future__ import annotations

from typing import Sequence

from repro.protocols.base import CheckpointingProtocol


class FixedDependencyAfterSendProtocol(CheckpointingProtocol):
    """Force a checkpoint before any dependency-changing receive that follows a send."""

    name = "fdas"
    ensures_rdt = True

    def __init__(self, pid: int, num_processes: int) -> None:
        super().__init__(pid, num_processes)
        self._sent_in_interval = False

    @property
    def sent_in_current_interval(self) -> bool:
        """The FDAS ``sent`` flag."""
        return self._sent_in_interval

    def notify_send(self) -> None:
        self._sent_in_interval = True

    def notify_checkpoint(self) -> None:
        self._sent_in_interval = False

    def should_force_checkpoint(
        self, current_dv: Sequence[int], piggybacked: Sequence[int]
    ) -> bool:
        """Force iff the message brings new causal information after a send."""
        return self._sent_in_interval and self.brings_new_information(
            current_dv, piggybacked
        )
