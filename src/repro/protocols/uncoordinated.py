"""The purely uncoordinated protocol (no forced checkpoints).

Processes take only basic checkpoints, whenever their local policy decides.
Dependency vectors are still piggybacked (so the pattern can be analysed), but
nothing prevents non-causal zigzag paths: checkpoints can become useless and a
failure can trigger the domino effect (Figure 2 of the paper).  This protocol
exists as the negative baseline for the RDT property tests and for the
domino-effect benchmark.
"""

from __future__ import annotations

from typing import Sequence

from repro.protocols.base import CheckpointingProtocol


class UncoordinatedProtocol(CheckpointingProtocol):
    """Never forces a checkpoint."""

    name = "uncoordinated"
    ensures_rdt = False

    def should_force_checkpoint(
        self, current_dv: Sequence[int], piggybacked: Sequence[int]
    ) -> bool:
        """Uncoordinated checkpointing never forces a checkpoint."""
        return False
