"""The unified ``python -m repro`` command-line façade.

One entry point over every driver grown across the project's subsystems::

    python -m repro campaign ...   # expand/execute/aggregate experiment grids
    python -m repro trace ...      # record/replay/inspect/diff trace artifacts
    python -m repro explore ...    # schedule-space exploration + counterexamples
    python -m repro fuzz ...       # coverage-guided schedule fuzzing + corpus
    python -m repro live ...       # one experiment on real OS processes
    python -m repro query ...      # canned analytics over a SQL result store

Shared flag conventions (every subcommand that takes the concept spells it
the same way):

``--seed``    one integer seed (drivers of single runs);
``--store``   a result store path — ``.jsonl`` is the legacy line store,
              ``.sqlite``/``.sqlite3``/``.db`` the canonical SQL store;
``--traces``  a directory of per-cell v2 trace artifacts;
``--json``    machine-readable JSON on stdout instead of rendered tables.

Exit-code semantics, uniform across subcommands:

* ``0`` — success;
* ``1`` — a *domain* finding: failed cells, an oracle violation, an unsafe
  audit, a truncated trace, an incomplete store;
* ``2`` — usage or input errors (unknown flags, malformed specs).

The historical spellings (``python -m repro.campaign``, ``repro.traceio``,
``repro.explore``, ``repro.live``) remain as thin deprecated aliases that
print a one-line pointer here and keep working.
"""

from __future__ import annotations

import sys
from typing import Callable, List, Optional, Tuple

#: subcommand -> (one-line help, resolver returning its ``main``).  Lazy
#: imports keep ``python -m repro query --help`` from paying the simulator's
#: import bill.
_SUBCOMMANDS: "dict[str, Tuple[str, Callable[[], Callable[[Optional[List[str]]], int]]]]" = {
    "campaign": (
        "expand, execute and aggregate an experiment campaign "
        "(serial, pooled, or as a claim/lease fabric worker)",
        lambda: __import__(
            "repro.scenarios.campaign.cli", fromlist=["main"]
        ).main,
    ),
    "trace": (
        "record, replay, inspect and diff persisted simulation traces",
        lambda: __import__("repro.traceio.cli", fromlist=["main"]).main,
    ),
    "explore": (
        "systematically explore message-delivery schedules against the "
        "theorem oracles",
        lambda: __import__("repro.explore.cli", fromlist=["main"]).main,
    ),
    "fuzz": (
        "coverage-guided fuzzing of delivery schedules and fault timings "
        "with a persistent, replayable corpus",
        lambda: __import__("repro.fuzz.cli", fromlist=["main"]).main,
    ),
    "live": (
        "run one experiment on real OS processes over UDP",
        lambda: __import__("repro.live.cli", fromlist=["main"]).main,
    ),
    "query": (
        "canned analytical queries over a campaign result store",
        lambda: __import__("repro.query_cli", fromlist=["main"]).main,
    ),
}


def _usage(stream) -> None:
    print("usage: python -m repro <command> [options]", file=stream)
    print(file=stream)
    print("commands:", file=stream)
    for name, (help_text, _) in _SUBCOMMANDS.items():
        print(f"  {name:<10} {help_text}", file=stream)
    print(file=stream)
    print(
        "shared flags: --seed (run seed), --store (result store; .jsonl or\n"
        ".sqlite), --traces (trace-artifact directory), --json (JSON stdout).\n"
        "exit codes: 0 success; 1 domain finding (failed cell, violation,\n"
        "unsafe audit, incomplete store); 2 usage or input error.",
        file=stream,
    )
    print(file=stream)
    print("run `python -m repro <command> --help` for the full flags.", file=stream)


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch to one subcommand; see the module docstring for semantics."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments or arguments[0] in ("-h", "--help"):
        _usage(sys.stdout)
        return 0 if not arguments or arguments[0] in ("-h", "--help") else 2
    command = arguments[0]
    if command not in _SUBCOMMANDS:
        print(f"error: unknown command {command!r}", file=sys.stderr)
        _usage(sys.stderr)
        return 2
    entry = _SUBCOMMANDS[command][1]()
    try:
        return entry(arguments[1:])
    except BrokenPipeError:
        # Downstream consumer closed early (`repro query ... | head`).
        # Point stdout at devnull so the interpreter's exit-time flush
        # doesn't raise a second time, and report success like any
        # well-behaved filter.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
