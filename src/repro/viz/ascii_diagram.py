"""ASCII space-time diagrams.

The paper communicates its ideas through space-time diagrams (Figures 1-5).
These helpers render a recorded :class:`repro.ccp.CCP` in the same spirit —
one row per process, one column per global event position — so that the
figure-reproduction benchmarks and the examples can show *what happened* next
to the numbers they print.

Symbols: ``[k]`` a stable checkpoint with index ``k``; ``s>`` the send and
``>r`` the receive of a message (annotated with the message id); ``.``
nothing.  The rendering is intentionally simple; it is a debugging and
reporting aid, not a drawing library.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.causality.events import EventKind
from repro.ccp.pattern import CCP


def render_ccp(ccp: CCP, *, max_width: int = 120) -> str:
    """Render the event structure of a CCP as an ASCII diagram."""
    log = ccp.log
    events = sorted(log.events(), key=lambda e: (e.time, e.pid, e.seq))
    columns: List[Tuple[int, str]] = []
    for event in events:
        if event.kind is EventKind.CHECKPOINT:
            token = f"[{event.checkpoint_index}]"
        elif event.kind is EventKind.SEND:
            token = f"s{event.message_id}>"
        elif event.kind is EventKind.RECEIVE:
            token = f">r{event.message_id}"
        else:
            token = "·"
        columns.append((event.pid, token))
    width = max((len(token) for _, token in columns), default=1)
    lines: List[str] = []
    for pid in log.processes:
        cells = []
        for owner, token in columns:
            cells.append(token.center(width) if owner == pid else "-" * width)
        row = f"p{pid}: " + "-".join(cells)
        if len(row) > max_width:
            row = row[: max_width - 3] + "..."
        lines.append(row)
    return "\n".join(lines)


def render_gc_trace(
    steps: Sequence[Tuple[str, Sequence[int], Sequence[Optional[int]]]],
) -> str:
    """Render a sequence of ``(event description, DV, UC)`` steps.

    This mirrors the annotations of Figure 4: for each event of interest the
    dependency vector is shown above the ``UC`` table (``*`` marks ``Null``).
    """
    lines: List[str] = []
    for description, dv, uc in steps:
        uc_text = ", ".join("*" if entry is None else str(entry) for entry in uc)
        lines.append(f"{description:<28} DV=({', '.join(str(v) for v in dv)})  UC=({uc_text})")
    return "\n".join(lines)
