"""Visualisation helpers (ASCII space-time diagrams of CCPs)."""

from repro.viz.ascii_diagram import render_ccp, render_gc_trace

__all__ = ["render_ccp", "render_gc_trace"]
