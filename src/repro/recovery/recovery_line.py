"""Recovery-line determination.

Definition 5: given a CCP and a set ``F`` of faulty processes, the recovery
line ``R_F`` is the consistent global checkpoint that excludes the volatile
checkpoints of faulty processes and minimizes the number of general
checkpoints rolled back.

Lemma 1 (for RD-trackable CCPs) characterises it in closed form: for every
process ``p_i``, take the *last* general checkpoint not causally preceded by
the last stable checkpoint of any faulty process::

    R_F = U_i { c_i^k,  k = max(gamma | for all p_f in F:  s_f^last -/-> c_i^gamma) }

:func:`recovery_line` implements Lemma 1 directly.  :func:`recovery_line_brute_force`
implements Definition 5 by exhaustive search (exponential; used only in tests
to validate the lemma and on the figure-sized examples).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.consistency import (
    GlobalCheckpoint,
    all_consistent_global_checkpoints,
    is_consistent_global_checkpoint,
)
from repro.ccp.pattern import CCP


def _validate_faulty(ccp: CCP, faulty: Iterable[int]) -> Set[int]:
    faulty_set = set(faulty)
    for pid in faulty_set:
        if pid not in ccp.processes:
            raise ValueError(f"faulty process {pid} is not part of the CCP")
        if pid in ccp.departed:
            raise ValueError(
                f"faulty process {pid} departed the membership; departed "
                f"processes hold no state and cannot fail"
            )
        if ccp.last_stable(pid) < 0:
            raise ValueError(
                f"faulty process {pid} has no stable checkpoint; recovery is impossible"
            )
    return faulty_set


def recovery_line(ccp: CCP, faulty: Iterable[int]) -> GlobalCheckpoint:
    """The recovery line ``R_F`` per Lemma 1.

    With an empty faulty set the line is simply every process's volatile
    checkpoint (nothing needs to be rolled back).  Lines are memoised per
    faulty set in the pattern's shared analysis cache, so repeated queries
    (e.g. the Definition-7 needlessness oracle, which asks for the line of
    every faulty set) pay for each one only once.
    """
    faulty_set = _validate_faulty(ccp, faulty)
    return ccp.analyses.recovery_line(faulty_set)


def _recovery_line_lemma1(ccp: CCP, faulty_set: Set[int]) -> GlobalCheckpoint:
    """Lemma 1 by full recompute over checkpoint-level precedence queries.

    Uncached; called via the analysis cache.  This is the *reference* path:
    recorders running with ``incremental_analyses="on"`` serve recovery lines
    from their maintained knowledge state instead, and ``"check"`` mode
    compares that answer against this one.
    """
    indices: List[int] = []
    for pid in ccp.processes:
        if pid in ccp.departed:
            # A departed process holds no state to roll back: its component
            # is pinned to the volatile index so recovery never touches it.
            indices.append(ccp.volatile_index(pid))
            continue
        chosen = ccp.base_interval(pid)
        for gamma in range(ccp.base_interval(pid), ccp.volatile_index(pid) + 1):
            candidate = CheckpointId(pid, gamma)
            preceded = any(
                ccp.causally_precedes(ccp.last_stable_id(f), candidate)
                for f in faulty_set
            )
            if not preceded:
                chosen = gamma
        indices.append(chosen)
    return GlobalCheckpoint(tuple(indices))


def recovery_line_brute_force(ccp: CCP, faulty: Iterable[int]) -> GlobalCheckpoint:
    """Definition 5 by exhaustive search over all consistent global checkpoints.

    Exponential in the number of checkpoints; intended for tests and the small
    hand-built patterns of the paper's figures.  Ties on the number of rolled
    back checkpoints are broken by preferring the componentwise largest line,
    which for RD-trackable patterns never actually occurs because the line is
    unique (the uniqueness is asserted by tests, not here).
    """
    faulty_set = _validate_faulty(ccp, faulty)
    best: Optional[GlobalCheckpoint] = None
    best_rolled_back: Optional[int] = None
    for candidate in all_consistent_global_checkpoints(ccp):
        excluded = False
        for pid in faulty_set:
            if candidate.indices[pid] >= ccp.volatile_index(pid):
                excluded = True
                break
        if excluded:
            continue
        rolled_back = candidate.rolled_back_count(ccp)
        if best_rolled_back is None or rolled_back < best_rolled_back:
            best, best_rolled_back = candidate, rolled_back
        elif rolled_back == best_rolled_back and best is not None:
            if candidate.indices > best.indices:
                best = candidate
    if best is None:
        raise ValueError("no consistent global checkpoint avoids the faulty volatile states")
    return best


def rolled_back_checkpoints(ccp: CCP, line: GlobalCheckpoint) -> List[CheckpointId]:
    """The general checkpoints discarded when the system restarts from ``line``."""
    rolled: List[CheckpointId] = []
    for pid in ccp.processes:
        for gamma in range(line.indices[pid] + 1, ccp.volatile_index(pid) + 1):
            rolled.append(CheckpointId(pid, gamma))
    return rolled


def is_valid_recovery_line(
    ccp: CCP, line: GlobalCheckpoint, faulty: Iterable[int]
) -> bool:
    """Check that ``line`` is consistent and excludes faulty volatile states."""
    faulty_set = set(faulty)
    for pid in faulty_set:
        if line.indices[pid] >= ccp.volatile_index(pid):
            return False
    return is_consistent_global_checkpoint(ccp, line)
