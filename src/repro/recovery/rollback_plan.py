"""Rollback directives propagated by the recovery manager.

Algorithm 3 of the paper runs at every process that must roll back and takes
two inputs:

* ``RI`` — the index of the checkpoint the process must roll back to (its own
  component of the recovery line);
* ``LI`` — the *last interval vector*: ``LI[j] = last_s(j) + 1`` in the CCP
  defined by the recovery line, i.e. the index of the checkpoint interval each
  process will be executing right after the recovery session.

A process whose recovery-line component is its volatile checkpoint does not
roll back and does not run Algorithm 3; it only releases the ``UC`` entries
allowed by ``LI`` (see :meth:`repro.core.RdtLgc.on_peer_rollback`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ccp.consistency import GlobalCheckpoint


@dataclass(frozen=True)
class ProcessRollback:
    """The rollback directive for a single process."""

    pid: int
    rollback_index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"p{self.pid} -> s{self.pid}^{self.rollback_index}"


@dataclass(frozen=True)
class RollbackPlan:
    """The complete outcome of recovery-line calculation.

    Attributes
    ----------
    faulty:
        The failed processes that triggered the recovery session.
    recovery_line:
        The computed recovery line ``R_F`` (general checkpoint indices).
    rollbacks:
        One :class:`ProcessRollback` per process whose component in the line is
        a stable checkpoint (i.e. every process that loses work).
    last_interval_vector:
        The ``LI`` vector of Algorithm 3.
    """

    faulty: Tuple[int, ...]
    recovery_line: GlobalCheckpoint
    rollbacks: Tuple[ProcessRollback, ...]
    last_interval_vector: Tuple[int, ...]

    def rollback_for(self, pid: int) -> Optional[ProcessRollback]:
        """The rollback directive of ``pid``, or None if it keeps its volatile state."""
        for rollback in self.rollbacks:
            if rollback.pid == pid:
                return rollback
        return None

    def must_roll_back(self, pid: int) -> bool:
        """True if ``pid`` has to restart from a stable checkpoint."""
        return self.rollback_for(pid) is not None

    def rolled_back_processes(self) -> List[int]:
        """Process ids that must roll back."""
        return [r.pid for r in self.rollbacks]

    def as_dict(self) -> Dict[int, int]:
        """Mapping pid -> rollback index for processes that roll back."""
        return {r.pid: r.rollback_index for r in self.rollbacks}
