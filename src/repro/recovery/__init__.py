"""Rollback-recovery substrate.

The paper assumes "a centralized recovery manager which stops the execution of
non-faulty processes, takes their volatile state, calculates and propagates the
recovery line" (Section 2.4).  This subpackage provides:

* :mod:`recovery_line` — recovery-line determination: the closed-form
  characterisation of Lemma 1 for RD-trackable patterns and an exhaustive
  oracle used to validate it;
* :mod:`rollback_plan` — the per-process directives (rollback index ``RI`` and
  last-interval vector ``LI``) propagated by the manager, exactly the inputs of
  Algorithm 3;
* :mod:`manager` — the centralized recovery manager used by the simulator's
  failure injector.
"""

from repro.recovery.manager import RecoveryManager, RecoveryOutcome
from repro.recovery.recovery_line import (
    recovery_line,
    recovery_line_brute_force,
    rolled_back_checkpoints,
)
from repro.recovery.rollback_plan import ProcessRollback, RollbackPlan

__all__ = [
    "ProcessRollback",
    "RecoveryManager",
    "RecoveryOutcome",
    "RollbackPlan",
    "recovery_line",
    "recovery_line_brute_force",
    "rolled_back_checkpoints",
]
