"""Centralized recovery manager (Section 2.4).

The manager embodies the paper's recovery assumption: when failures occur, it
stops the execution of non-faulty processes, observes the global CCP, computes
the recovery line and propagates, to every process, its rollback index and the
last-interval vector ``LI`` consumed by Algorithm 3.

The manager is a pure function of the observed CCP; applying the plan to live
simulated processes is the job of :mod:`repro.simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.consistency import GlobalCheckpoint
from repro.ccp.pattern import CCP
from repro.recovery.recovery_line import recovery_line, rolled_back_checkpoints
from repro.recovery.rollback_plan import ProcessRollback, RollbackPlan


@dataclass(frozen=True)
class RecoveryOutcome:
    """Summary of one recovery session (used by metrics and benchmarks)."""

    plan: RollbackPlan
    rolled_back: Tuple[CheckpointId, ...]
    lost_general_checkpoints: int
    rolled_back_processes: int

    @property
    def recovery_line(self) -> GlobalCheckpoint:
        """The recovery line restored by this session."""
        return self.plan.recovery_line


class RecoveryManager:
    """Computes rollback plans from a global view of the execution."""

    def plan(self, ccp: CCP, faulty: Iterable[int]) -> RollbackPlan:
        """Compute the recovery line ``R_F`` and the per-process directives."""
        faulty_tuple = tuple(sorted(set(faulty)))
        line = recovery_line(ccp, faulty_tuple)
        rollbacks: List[ProcessRollback] = []
        last_interval: List[int] = []
        for pid in ccp.processes:
            component = line.indices[pid]
            if component <= ccp.last_stable(pid):
                # The component is a stable checkpoint: the process rolls back
                # to it, and its next interval is component + 1.
                rollbacks.append(ProcessRollback(pid=pid, rollback_index=component))
                last_interval.append(component + 1)
            else:
                # The component is the volatile checkpoint: no rollback, the
                # process keeps executing interval last_s + 1 == component.
                last_interval.append(component)
        return RollbackPlan(
            faulty=faulty_tuple,
            recovery_line=line,
            rollbacks=tuple(rollbacks),
            last_interval_vector=tuple(last_interval),
        )

    def outcome(self, ccp: CCP, faulty: Iterable[int]) -> RecoveryOutcome:
        """Compute the plan together with lost-work accounting."""
        plan = self.plan(ccp, faulty)
        rolled = tuple(rolled_back_checkpoints(ccp, plan.recovery_line))
        return RecoveryOutcome(
            plan=plan,
            rolled_back=rolled,
            lost_general_checkpoints=len(rolled),
            rolled_back_processes=len(plan.rollbacks),
        )
