"""The oracle stack every explored execution is checked against.

Four layers, each an executable statement of one of the paper's claims:

* **Theorem 4 — safety**: every checkpoint the Theorem-1 characterisation
  still requires is retained (checked for *every* collector);
* **Theorem 5 — optimality**: every checkpoint Theorem 2 identifies as
  obsolete has been eliminated (checked only for collectors that
  :attr:`~repro.gc.base.GarbageCollector.claims_optimality`, and only under
  protocols that guarantee RDT executions — the theorem's hypothesis);
* **RDT preservation**: protocols whose class declares ``ensures_rdt`` must
  produce RD-trackable patterns at every explored state (Definition 4);
* **kernel cross-check**: the bitset analysis kernel's Theorem-1/2 retained
  sets and useless-checkpoint set agree with independent brute-force
  references (the literal per-checkpoint transcriptions in
  :mod:`repro.core.obsolete` and :class:`repro.ccp.BruteForceZigzagAnalysis`)
  — this mutation-tests the kernel itself along every explored interleaving.

Recovery sessions get a dedicated check
(:meth:`OracleStack.check_recovery`): the line the manager restored must be
a valid recovery line of the pre-crash pattern *and* must match the
Definition-5 brute-force line (exhaustive search over consistent global
checkpoints), which pins Lemma 1 along explored interleavings too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.ccp.consistency import GlobalCheckpoint
from repro.ccp.pattern import CCP
from repro.ccp.rdt import check_rdt as run_rdt_check
from repro.ccp.zigzag import BruteForceZigzagAnalysis
from repro.core.obsolete import _is_retained_theorem1, _is_retained_theorem2
from repro.core.optimality import audit_garbage_collection
from repro.explore.program import ExploreConfig, Violation
from repro.gc.registry import collector_class
from repro.protocols.registry import protocol_class
from repro.recovery.recovery_line import (
    is_valid_recovery_line,
    recovery_line_brute_force,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.runner import RecoveryRecord, SimulationRunner


@dataclass(frozen=True)
class OracleStack:
    """Which checks run, derived from the configuration unless overridden."""

    check_safety: bool = True
    check_optimality: bool = False
    check_rdt: bool = False
    #: Cross-check the analysis kernel against brute-force references.  Runs
    #: at terminal states only (it is the expensive layer); the per-state
    #: audits above already consume the kernel's answers everywhere.
    cross_check_kernel: bool = True
    #: Cross-check every k-th terminal state (1 == every one).  Terminal
    #: patterns of neighbouring schedules differ only in event order, so a
    #: deterministic sample still covers the interleaving diversity the
    #: cross-check exists for, at a fraction of the sweep cost.
    kernel_cross_check_period: int = 7
    #: Validate every recovery line against the Definition-5 brute force
    #: (exponential in stable checkpoints — explorer-sized patterns only).
    cross_check_recovery: bool = True

    @classmethod
    def for_config(cls, config: ExploreConfig, **overrides: bool) -> "OracleStack":
        """The default stack for a configuration.

        Optimality is audited only when the collector claims it *and* the
        protocol guarantees the RDT hypothesis; the RDT-preservation oracle
        follows the protocol class.

        Args:
            config: the explore configuration whose collector/protocol pair
                determines the default oracle set.
            **overrides: keyword overrides for any :class:`OracleStack`
                field (e.g. ``check_optimality=False``); they win over the
                derived defaults.

        Returns:
            A frozen :class:`OracleStack` instance.
        """
        collector = collector_class(config.collector)
        protocol = protocol_class(config.protocol)
        defaults = {
            "check_optimality": collector.claims_optimality and protocol.ensures_rdt,
            "check_rdt": protocol.ensures_rdt,
        }
        defaults.update(overrides)
        return cls(**defaults)

    # ------------------------------------------------------------------
    # Per-state checks
    # ------------------------------------------------------------------
    def check_state(
        self,
        runner: "SimulationRunner",
        step: int,
        *,
        final: bool = False,
        cross_check: bool = True,
    ) -> Optional[Violation]:
        """Audit the runner's current state; return the first violation.

        Args:
            runner: the live simulation runner whose current CCP and
                per-process retained sets are audited in place.
            step: the schedule step this state was reached at — stamped
                into any returned :class:`Violation`.
            final: whether this is a terminal state; the RDT-preservation
                check and the kernel cross-check run only at terminal
                states (intermediate states are consistent cuts of them).
            cross_check: lets the executor sample the kernel cross-check
                over terminal states (see :attr:`kernel_cross_check_period`).

        Returns:
            The first :class:`Violation` found, or ``None`` when every
            enabled oracle passes.
        """
        ccp = runner.current_ccp()
        retained = {
            node.pid: node.storage.retained_indices() for node in runner.nodes
        }
        audit = audit_garbage_collection(
            ccp, retained, require_optimality=self.check_optimality
        )
        if self.check_safety and not audit.is_safe:
            return Violation(
                kind="safety",
                detail=(
                    "Theorem-1-required checkpoints were eliminated: "
                    + ", ".join(str(cid) for cid in audit.safety_violations)
                ),
                step=step,
            )
        if self.check_optimality and not audit.is_optimal:
            return Violation(
                kind="optimality",
                detail=(
                    "Theorem-2-obsolete checkpoints are still retained: "
                    + ", ".join(str(cid) for cid in audit.optimality_violations)
                ),
                step=step,
            )
        if final and self.check_rdt:
            # Terminal states suffice: every executed prefix is a consistent
            # cut of its terminal execution (per-process prefixes, deliveries
            # only of sent messages), and RD-trackability of a CCP carries
            # over to all its consistent cuts (see repro.ccp.rdt.check_rdt).
            report = run_rdt_check(ccp, collect_witnesses=False)
            if not report.is_rdt:
                pair = report.violations[0]
                return Violation(
                    kind="rdt",
                    detail=f"the pattern lost RD-trackability: {pair}",
                    step=step,
                )
        if final and self.cross_check_kernel and cross_check:
            return self._cross_check_kernel(ccp, step)
        return None

    def _cross_check_kernel(self, ccp: CCP, step: int) -> Optional[Violation]:
        """Kernel answers vs the literal transcriptions and the message BFS."""
        analyses = ccp.analyses
        all_stable = {
            cid for pid in ccp.processes for cid in ccp.stable_ids(pid)
        }
        for theorem, kernel_retained, literal in (
            (1, analyses.theorem1_retained, _is_retained_theorem1),
            (2, analyses.theorem2_retained, _is_retained_theorem2),
        ):
            reference = {cid for cid in all_stable if literal(ccp, cid)}
            if set(kernel_retained) != reference:
                return Violation(
                    kind="kernel-mismatch",
                    detail=(
                        f"Theorem-{theorem} retained sets disagree: kernel "
                        f"{sorted(kernel_retained)} vs literal {sorted(reference)}"
                    ),
                    step=step,
                )
        brute_useless = set(BruteForceZigzagAnalysis(ccp).useless_checkpoints())
        if set(analyses.useless_checkpoints) != brute_useless:
            return Violation(
                kind="kernel-mismatch",
                detail=(
                    f"useless-checkpoint sets disagree: kernel "
                    f"{sorted(analyses.useless_checkpoints)} vs brute force "
                    f"{sorted(brute_useless)}"
                ),
                step=step,
            )
        return None

    # ------------------------------------------------------------------
    # Recovery-session checks
    # ------------------------------------------------------------------
    def check_recovery(
        self, pre_crash_ccp: CCP, record: "RecoveryRecord", step: int
    ) -> Optional[Violation]:
        """Validate one recovery session against the pre-crash pattern.

        Args:
            pre_crash_ccp: the checkpoint-and-communication pattern as of
                the crash (the pattern the recovery line must be valid in).
            record: the recovery session's outcome — faulty set and the
                restored line.
            step: the schedule step of the crash, stamped into any
                returned :class:`Violation`.

        Returns:
            A ``recovery-line`` :class:`Violation` when the restored line
            is invalid (or, with :attr:`cross_check_recovery`, differs from
            the Definition-5 brute-force line), else ``None``.
        """
        line = GlobalCheckpoint(tuple(record.recovery_line))
        if not is_valid_recovery_line(pre_crash_ccp, line, record.faulty):
            return Violation(
                kind="recovery-line",
                detail=(
                    f"recovery line {line.indices} for faulty {set(record.faulty)} "
                    f"is inconsistent or includes a faulty volatile state"
                ),
                step=step,
            )
        if self.cross_check_recovery:
            reference = recovery_line_brute_force(pre_crash_ccp, record.faulty)
            if line != reference:
                return Violation(
                    kind="recovery-line",
                    detail=(
                        f"Lemma-1 line {line.indices} differs from the "
                        f"Definition-5 brute-force line {reference.indices}"
                    ),
                    step=step,
                )
        return None


__all__ = ["OracleStack"]
