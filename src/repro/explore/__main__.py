"""``python -m repro.explore`` entry point."""

from repro.explore.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
