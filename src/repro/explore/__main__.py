"""``python -m repro.explore`` — deprecated alias of ``python -m repro explore``."""

from repro.explore.cli import main

if __name__ == "__main__":
    import sys

    print(
        "deprecated: `python -m repro.explore` is now `python -m repro "
        "explore` (this alias keeps working)",
        file=sys.stderr,
    )
    raise SystemExit(main())
