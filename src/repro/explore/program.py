"""Explorable configurations: a fixed program plus its schedule alphabet.

The explorer separates *what the application does* from *when the network
delivers*.  An :class:`ExploreConfig` fixes the former completely — a small
deterministic :class:`ExploreProgram` of sends, basic checkpoints and
injected crashes, executed in program order — and leaves the latter as the
explored axis: a **schedule** interleaves the program's steps with delivery
choices for the messages the program put in flight.

Schedule tokens
---------------

A schedule is a sequence of tokens:

* ``("a", i)`` — execute program step ``i`` (steps are consumed strictly in
  order, so ``i`` is always the number of ``"a"`` tokens before this one);
* ``("d", m)`` — deliver message ``m`` (messages are numbered ``0, 1, ...``
  in send order, which is exactly the network's ``message_id`` assignment
  for loss-free, duplication-free channels — the only channels the explorer
  drives).

A token sequence is *well-formed* if every ``("d", m)`` appears after the
send step that produced message ``m`` and at most once.  Tokens are plain
tuples so schedules embed directly in trace-header provenance and compare
bytewise across runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.gc.registry import collector_class
from repro.protocols.registry import protocol_class

#: One schedule token (see the module docstring).
Choice = Tuple[str, int]

#: Token kinds.
ADVANCE = "a"
DELIVER = "d"


class StepKind(enum.Enum):
    """What one fixed program step does."""

    SEND = "send"
    CHECKPOINT = "checkpoint"
    CRASH = "crash"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ProgramStep:
    """One fixed application step of an explorable configuration."""

    kind: StepKind
    pid: int
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is StepKind.SEND and self.target is None:
            raise ValueError("SEND steps need a target process")
        if self.kind is not StepKind.SEND and self.target is not None:
            raise ValueError(f"{self.kind.value} steps take no target")

    def describe(self) -> List[Any]:
        """Compact JSON form (trace provenance)."""
        if self.kind is StepKind.SEND:
            return [self.kind.value, self.pid, self.target]
        return [self.kind.value, self.pid]

    @classmethod
    def from_description(cls, description: Sequence[Any]) -> "ProgramStep":
        kind = StepKind(description[0])
        target = description[2] if kind is StepKind.SEND else None
        return cls(kind, int(description[1]), target)


def send(pid: int, target: int) -> ProgramStep:
    """Shorthand for a send step."""
    return ProgramStep(StepKind.SEND, pid, target)


def checkpoint(pid: int) -> ProgramStep:
    """Shorthand for a basic-checkpoint step."""
    return ProgramStep(StepKind.CHECKPOINT, pid)


def crash(pid: int) -> ProgramStep:
    """Shorthand for an injected-crash step (triggers a full recovery session)."""
    return ProgramStep(StepKind.CRASH, pid)


@dataclass(frozen=True)
class ExploreConfig:
    """Everything that is *fixed* about one explored configuration.

    ``collector_options`` is stored as sorted ``(key, value)`` pairs (the
    campaign layer's convention) so configurations stay hashable.
    """

    num_processes: int
    program: Tuple[ProgramStep, ...]
    protocol: str = "fdas"
    collector: str = "rdt-lgc"
    collector_options: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    #: Simulated time between consecutive program steps.  Delivery choices
    #: execute at the current clock, so the gap only spaces the fixed steps
    #: (and with it any timer-based collector's notion of age).
    step_gap: float = 1.0

    def __post_init__(self) -> None:
        if self.num_processes <= 0:
            raise ValueError("an explorable configuration needs at least one process")
        if self.step_gap <= 0:
            raise ValueError("the step gap must be positive")
        for step in self.program:
            for pid in (step.pid, step.target):
                if pid is not None and not 0 <= pid < self.num_processes:
                    raise ValueError(
                        f"program step {step} references process {pid} but the "
                        f"configuration has {self.num_processes} processes"
                    )
        protocol_class(self.protocol)  # fail fast on unknown names
        collector_class(self.collector)

    @property
    def message_count(self) -> int:
        """Number of messages the program sends (== delivery choices)."""
        return sum(1 for step in self.program if step.kind is StepKind.SEND)

    @property
    def duration(self) -> float:
        """Simulated duration covering every program step plus a flush margin."""
        return (len(self.program) + 2) * self.step_gap

    def send_ordinal(self, step_index: int) -> int:
        """The message number produced by send step ``step_index``."""
        step = self.program[step_index]
        if step.kind is not StepKind.SEND:
            raise ValueError(f"program step {step_index} is not a send")
        return sum(
            1 for other in self.program[:step_index] if other.kind is StepKind.SEND
        )

    def collector_options_dict(self) -> Dict[str, Any]:
        """The collector options as a plain dict."""
        return dict(self.collector_options)

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON form (persisted in counterexample trace headers)."""
        return {
            "num_processes": self.num_processes,
            "program": [step.describe() for step in self.program],
            "protocol": self.protocol,
            "collector": self.collector,
            "collector_options": self.collector_options_dict(),
            "seed": self.seed,
            "step_gap": self.step_gap,
        }

    @classmethod
    def from_mapping(cls, document: Mapping[str, Any]) -> "ExploreConfig":
        """Rebuild a configuration from its :meth:`describe` mapping."""
        return cls(
            num_processes=int(document["num_processes"]),
            program=tuple(
                ProgramStep.from_description(step) for step in document["program"]
            ),
            protocol=str(document["protocol"]),
            collector=str(document["collector"]),
            collector_options=tuple(
                sorted(dict(document.get("collector_options") or {}).items())
            ),
            seed=int(document.get("seed", 0)),
            step_gap=float(document.get("step_gap", 1.0)),
        )


def validate_schedule(config: ExploreConfig, schedule: Sequence[Choice]) -> None:
    """Reject malformed schedules loudly (unknown tokens, deliveries before
    their send or repeated, program steps out of order or out of range)."""
    next_step = 0
    sent = 0
    delivered = set()
    for position, token in enumerate(schedule):
        kind, value = token[0], token[1]
        if kind == ADVANCE:
            if value != next_step:
                raise ValueError(
                    f"schedule token {position}: expected program step {next_step}, "
                    f"got {value} (steps are consumed in order)"
                )
            if next_step >= len(config.program):
                raise ValueError(
                    f"schedule token {position}: program has only "
                    f"{len(config.program)} steps"
                )
            if config.program[next_step].kind is StepKind.SEND:
                sent += 1
            next_step += 1
        elif kind == DELIVER:
            if value in delivered:
                raise ValueError(
                    f"schedule token {position}: message {value} delivered twice"
                )
            if value >= sent:
                raise ValueError(
                    f"schedule token {position}: message {value} has not been "
                    f"sent yet"
                )
            delivered.add(value)
        else:
            raise ValueError(f"schedule token {position}: unknown kind {kind!r}")


# ----------------------------------------------------------------------
# Canonical configurations
# ----------------------------------------------------------------------
def ring_program(
    num_processes: int,
    messages: int,
    *,
    checkpoint_every: int = 0,
    crash_pid: Optional[int] = None,
) -> Tuple[ProgramStep, ...]:
    """The canonical explorable program: a message ring with checkpoint rounds.

    Message ``m`` is sent by process ``m % n`` to its ring successor; after
    every ``checkpoint_every`` sends (default: one round, ``n`` sends) every
    process takes a basic checkpoint, and a final checkpoint round closes the
    program.  With ``crash_pid`` set, that process crashes just before the
    final round, so every schedule exercises a full recovery session.
    """
    if messages < 0:
        raise ValueError("the message budget must be non-negative")
    period = checkpoint_every or num_processes
    steps: List[ProgramStep] = []
    for m in range(messages):
        sender = m % num_processes
        steps.append(send(sender, (sender + 1) % num_processes))
        if (m + 1) % period == 0:
            steps.extend(checkpoint(pid) for pid in range(num_processes))
    if crash_pid is not None:
        steps.append(crash(crash_pid))
    if messages % period != 0 or crash_pid is not None or messages == 0:
        steps.extend(checkpoint(pid) for pid in range(num_processes))
    return tuple(steps)


def star_program(
    num_processes: int,
    messages: int,
    *,
    crash_pid: Optional[int] = None,
) -> Tuple[ProgramStep, ...]:
    """A client-server star: the explorable skeleton of the skewed
    client-server workload family (:mod:`repro.simulation.workloads`).

    Process 0 is the hub.  Request ``m`` is sent by client
    ``1 + m % (n - 1)`` to the hub, which answers with a reply; after every
    full client round all processes take a basic checkpoint.  With
    ``crash_pid`` set, that process crashes before the final checkpoint
    round, so every schedule exercises a recovery session on the star.
    """
    if num_processes < 2:
        raise ValueError("a star program needs a hub and at least one client")
    if messages < 0:
        raise ValueError("the message budget must be non-negative")
    clients = num_processes - 1
    steps: List[ProgramStep] = []
    for m in range(messages):
        client = 1 + m % clients
        steps.append(send(client, 0))
        steps.append(send(0, client))
        if (m + 1) % clients == 0:
            steps.extend(checkpoint(pid) for pid in range(num_processes))
    if crash_pid is not None:
        steps.append(crash(crash_pid))
    if messages % clients != 0 or crash_pid is not None or messages == 0:
        steps.extend(checkpoint(pid) for pid in range(num_processes))
    return tuple(steps)


def gossip_program(
    num_processes: int,
    rounds: int,
    *,
    fanout: int = 2,
    crash_pid: Optional[int] = None,
) -> Tuple[ProgramStep, ...]:
    """A gossip fan-out: the explorable skeleton of the gossip workload
    family (:mod:`repro.simulation.workloads`).

    In round ``r`` the origin ``r % n`` pushes to its ``fanout`` ring
    successors (the deterministic stand-in for the workload's random peer
    sample), then every process takes a basic checkpoint.  With
    ``crash_pid`` set, that process crashes before the final round.
    """
    if rounds < 0:
        raise ValueError("the round budget must be non-negative")
    if not 1 <= fanout < num_processes:
        raise ValueError("fanout must be between 1 and num_processes - 1")
    steps: List[ProgramStep] = []
    for r in range(rounds):
        origin = r % num_processes
        for hop in range(1, fanout + 1):
            steps.append(send(origin, (origin + hop) % num_processes))
        steps.extend(checkpoint(pid) for pid in range(num_processes))
    if crash_pid is not None:
        steps.append(crash(crash_pid))
    if crash_pid is not None or rounds == 0:
        steps.extend(checkpoint(pid) for pid in range(num_processes))
    return tuple(steps)


@dataclass
class ScheduleStats:
    """Bookkeeping of one exploration (reported by CLI and benchmark)."""

    executions: int = 0
    schedules: int = 0
    violations: int = 0
    sleep_pruned: int = 0
    deepest: int = 0
    complete: bool = True
    #: Populated when the execution budget ran out: the deterministic
    #: schedule prefix at which the search stopped (resume provenance).
    frontier: Optional[Tuple[Choice, ...]] = None

    def as_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "executions": self.executions,
            "schedules": self.schedules,
            "violations": self.violations,
            "sleep_pruned": self.sleep_pruned,
            "deepest": self.deepest,
            "complete": self.complete,
        }
        if self.frontier is not None:
            document["frontier"] = [list(token) for token in self.frontier]
        return document


@dataclass(frozen=True)
class Violation:
    """One oracle violation, pinned to the schedule position that exposed it."""

    kind: str
    detail: str
    #: Number of schedule tokens executed when the violation surfaced
    #: (0 == the initial state, before any token).
    step: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind} @ step {self.step}] {self.detail}"


@dataclass
class ExecutionOutcome:
    """What one (prefix) execution observed."""

    #: Choices enabled in the state reached after the executed prefix.
    enabled: Tuple[Choice, ...]
    #: First violation observed, if any (execution stops there).
    violation: Optional[Violation]
    #: Number of schedule tokens actually executed (< len(schedule) when a
    #: violation cut the run short).
    executed: int
    #: True when the prefix ran to quiescence with the program exhausted.
    terminal: bool = False
    #: Events in the recorder when execution stopped (counterexample sizing).
    trace_events: int = 0
    #: Affected-process metadata per enabled choice (sleep-set independence):
    #: maps a choice to the pid it touches, or None for global effects.
    affected: Dict[Choice, Optional[int]] = field(default_factory=dict)
