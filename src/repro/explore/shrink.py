"""Counterexample shrinking and one-command repro artifacts.

A raw counterexample is a (configuration, schedule) pair whose execution
violates an oracle.  Shrinking minimises it greedily while preserving the
violation *kind*:

1. **Truncation** — the schedule is cut at the violating token (the executor
   already stops there), so no counterexample carries a tail.
2. **Delivery deletion** — each ``("d", m)`` token is dropped in turn (the
   message stays in flight forever, which is always a legal execution); the
   deletion is kept if the violation kind survives.
3. **Step deletion** — each program step is dropped in turn *together with*
   its schedule token and, for sends, the matching delivery token; later
   message ordinals are renumbered (message ids are send ordinals).  The
   result is a strictly smaller configuration that still violates.

The passes repeat until a fixpoint: no single deletion preserves the
violation.  That is the shrinking invariant — every persisted
counterexample is *1-minimal* (removing any one delivery or program step
makes the violation disappear), and shrinking never changes the violation
kind it set out to preserve.

The shrunk counterexample is persisted as a v2 :mod:`repro.traceio`
artifact: the trace body is the violating execution itself (replayable into
an identical recorder by the traceio layer alone) and the header ``meta``
carries the full explorer provenance — configuration, schedule and
violation — so :func:`replay_counterexample` can re-execute it live and
byte-compare the two artifacts.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.explore.executor import ScheduleExecutor
from repro.explore.oracles import OracleStack
from repro.explore.program import (
    ADVANCE,
    DELIVER,
    Choice,
    ExploreConfig,
    StepKind,
    Violation,
    validate_schedule,
)


@dataclass(frozen=True)
class ShrunkCounterexample:
    """A 1-minimal repro: configuration, schedule and the violation it shows."""

    config: ExploreConfig
    schedule: Tuple[Choice, ...]
    violation: Violation
    #: Events in the recorder when the violation surfaced (artifact size).
    trace_events: int
    #: Executions spent shrinking (reported by the CLI and benchmark).
    attempts: int

    def provenance(self) -> Dict[str, Any]:
        """The explorer header-meta payload of the persisted artifact."""
        return {
            "violation": {
                "kind": self.violation.kind,
                "detail": self.violation.detail,
                "step": self.violation.step,
            },
            "trace_events": self.trace_events,
        }


def _still_violates(
    config: ExploreConfig,
    schedule: Sequence[Choice],
    kind: str,
    oracles: Optional[OracleStack],
) -> Optional[Tuple[Violation, int]]:
    """Execute a candidate; return (violation, trace_events) if ``kind`` recurs."""
    try:
        validate_schedule(config, schedule)
    except ValueError:
        return None
    outcome = ScheduleExecutor(config, oracles).execute(schedule)
    if outcome.violation is not None and outcome.violation.kind == kind:
        return outcome.violation, outcome.trace_events
    return None


def _drop_delivery(
    schedule: Sequence[Choice], position: int
) -> Tuple[Choice, ...]:
    return tuple(schedule[:position]) + tuple(schedule[position + 1:])


def _drop_program_step(
    config: ExploreConfig, schedule: Sequence[Choice], step_index: int
) -> Tuple[ExploreConfig, Tuple[Choice, ...]]:
    """Remove program step ``step_index`` and re-number everything after it."""
    step = config.program[step_index]
    removed_ordinal: Optional[int] = None
    if step.kind is StepKind.SEND:
        removed_ordinal = config.send_ordinal(step_index)
    program = config.program[:step_index] + config.program[step_index + 1:]
    new_config = ExploreConfig(
        num_processes=config.num_processes,
        program=program,
        protocol=config.protocol,
        collector=config.collector,
        collector_options=config.collector_options,
        seed=config.seed,
        step_gap=config.step_gap,
    )
    tokens: List[Choice] = []
    for kind, value in schedule:
        if kind == ADVANCE:
            if value == step_index:
                continue
            tokens.append((ADVANCE, value - 1 if value > step_index else value))
        else:
            if removed_ordinal is not None:
                if value == removed_ordinal:
                    continue
                if value > removed_ordinal:
                    value -= 1
            tokens.append((DELIVER, value))
    return new_config, tuple(tokens)


def shrink(
    config: ExploreConfig,
    schedule: Sequence[Choice],
    violation: Violation,
    *,
    oracles: Optional[OracleStack] = None,
    max_attempts: int = 2000,
) -> ShrunkCounterexample:
    """Greedily minimise a counterexample while preserving its violation kind."""
    kind = violation.kind
    attempts = 0
    # Re-establish the baseline (also truncates: the executor stops at the
    # violation, so anything after `violation.step` is dead weight).
    baseline = _still_violates(config, schedule, kind, oracles)
    if baseline is None:
        raise ValueError(
            f"the given schedule does not reproduce a {kind!r} violation"
        )
    current_violation, trace_events = baseline
    schedule = tuple(schedule[: current_violation.step])
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        # Pass 1: drop deliveries, last first (later tokens are likelier to
        # be past the violation's cause).
        for position in range(len(schedule) - 1, -1, -1):
            # An accepted deletion (or its truncation) may have shortened the
            # schedule below positions this pass still has queued.
            if position >= len(schedule) or schedule[position][0] != DELIVER:
                continue
            candidate = _drop_delivery(schedule, position)
            attempts += 1
            outcome = _still_violates(config, candidate, kind, oracles)
            if outcome is not None:
                current_violation, trace_events = outcome
                schedule = tuple(candidate[: current_violation.step])
                changed = True
        # Pass 2: drop whole program steps (with their tokens), last first.
        for step_index in range(len(config.program) - 1, -1, -1):
            if step_index >= len(config.program) or attempts >= max_attempts:
                continue
            new_config, candidate = _drop_program_step(config, schedule, step_index)
            attempts += 1
            outcome = _still_violates(new_config, candidate, kind, oracles)
            if outcome is not None:
                current_violation, trace_events = outcome
                config, schedule = new_config, tuple(candidate[: current_violation.step])
                changed = True
    return ShrunkCounterexample(
        config=config,
        schedule=schedule,
        violation=current_violation,
        trace_events=trace_events,
        attempts=attempts,
    )


# ----------------------------------------------------------------------
# Persistence and replay
# ----------------------------------------------------------------------
def persist_counterexample(
    shrunk: ShrunkCounterexample,
    path: str,
    *,
    oracles: Optional[OracleStack] = None,
) -> Violation:
    """Write the shrunk counterexample as a replayable traceio artifact.

    Re-executes the shrunk schedule with a trace writer attached; the
    violation must recur (it is re-checked) and is embedded in the header
    provenance and the ``aborted`` footer.  Returns the recurred violation.
    """
    outcome = ScheduleExecutor(shrunk.config, oracles).execute(
        shrunk.schedule, trace_path=path, trace_meta=shrunk.provenance()
    )
    if outcome.violation is None or outcome.violation.kind != shrunk.violation.kind:
        raise RuntimeError(
            f"persisting {path}: the shrunk schedule no longer reproduces the "
            f"{shrunk.violation.kind!r} violation (got {outcome.violation})"
        )
    return outcome.violation


@dataclass
class CounterexampleReplay:
    """Outcome of replaying a persisted counterexample artifact."""

    path: str
    config: ExploreConfig
    schedule: Tuple[Choice, ...]
    recorded_violation: Dict[str, Any]
    replayed_violation: Violation
    byte_identical: bool
    trace_events: int


def replay_counterexample(
    path: str, *, oracles: Optional[OracleStack] = None
) -> CounterexampleReplay:
    """Replay a persisted counterexample and verify it byte for byte.

    Three layers of checking:

    1. the artifact replays through :mod:`repro.traceio` (rehydrating the
       recorded execution — this is what proves the trace itself is sound);
    2. the provenance in the header re-executes live and must reproduce a
       violation of the recorded kind at the recorded step;
    3. the live re-execution's trace artifact is byte-compared against the
       persisted one.
    """
    from repro.traceio.reader import TraceReader

    replayed = TraceReader(path).replay()
    meta = (replayed.header.get("meta") or {}).get("explorer")
    if not meta:
        raise ValueError(
            f"{path}: trace carries no explorer provenance in its header meta "
            f"— was it written by repro.explore?"
        )
    config = ExploreConfig.from_mapping(meta["config"])
    schedule: Tuple[Choice, ...] = tuple(
        (str(kind), int(value)) for kind, value in meta["schedule"]
    )
    recorded = dict(meta.get("violation") or {})
    with tempfile.TemporaryDirectory() as scratch:
        fresh_path = os.path.join(scratch, os.path.basename(path))
        outcome = ScheduleExecutor(config, oracles).execute(
            schedule,
            trace_path=fresh_path,
            trace_meta={
                "violation": recorded,
                "trace_events": meta.get("trace_events"),
            },
        )
        if outcome.violation is None:
            raise RuntimeError(
                f"{path}: re-executing the persisted schedule produced no "
                f"violation (expected {recorded.get('kind')!r})"
            )
        with open(path, "rb") as original, open(fresh_path, "rb") as fresh:
            byte_identical = original.read() == fresh.read()
    return CounterexampleReplay(
        path=path,
        config=config,
        schedule=schedule,
        recorded_violation=recorded,
        replayed_violation=outcome.violation,
        byte_identical=byte_identical,
        trace_events=replayed.recorder.log.total_events(),
    )


def counterexample_summary(replay: CounterexampleReplay) -> str:
    """One-paragraph human rendering (CLI output)."""
    recorded = replay.recorded_violation
    return (
        f"{replay.path}: {replay.config.protocol} / {replay.config.collector} "
        f"({replay.config.num_processes} processes, "
        f"{len(replay.schedule)} schedule tokens, {replay.trace_events} events)\n"
        f"  recorded:  [{recorded.get('kind')} @ step {recorded.get('step')}] "
        f"{recorded.get('detail')}\n"
        f"  replayed:  {replay.replayed_violation}\n"
        f"  byte-identical re-execution: {'yes' if replay.byte_identical else 'NO'}"
    )


def schedule_to_json(schedule: Sequence[Choice]) -> str:
    """Compact JSON rendering of a schedule (diagnostics, tests)."""
    return json.dumps([list(token) for token in schedule], separators=(",", ":"))
