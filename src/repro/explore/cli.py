"""Command-line front end of the schedule-space explorer.

Exhaustively explore the canonical 2-process configuration for one
collector, or sweep the whole protocol × collector grid::

    python -m repro explore run --collector rdt-lgc
    python -m repro explore sweep --processes 2 --messages 6
    python -m repro explore sweep --smoke            # the CI gate sweep
    python -m repro explore sweep --canaries --traces counterexamples/

Budget and reduction knobs::

    python -m repro explore sweep --processes 3 --messages 6 \\
        --max-executions 20000 --no-reduction

Replay a shrunk counterexample artifact (re-executes it live and
byte-compares the fresh trace against the persisted one)::

    python -m repro explore replay counterexamples/canary-unsafe.trace.jsonl
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.explore.canaries import canaries_registered
from repro.explore.explorer import SweepEntry, explore
from repro.explore.program import ExploreConfig, ring_program
from repro.explore.shrink import (
    counterexample_summary,
    persist_counterexample,
    replay_counterexample,
    schedule_to_json,
    shrink,
)
from repro.scenarios.experiments import explore_sweep_configs


def _config_from_args(args: argparse.Namespace) -> ExploreConfig:
    return ExploreConfig(
        num_processes=args.processes,
        program=ring_program(
            args.processes,
            args.messages,
            crash_pid=0 if args.crash else None,
        ),
        protocol=args.protocol,
        collector=args.collector,
    )


def _report_entry(entry: SweepEntry, *, traces: Optional[str], quiet: bool) -> bool:
    """Print one sweep cell; persist its first counterexample.  True == clean."""
    result = entry.result
    stats = result.stats
    status = "ok" if result.ok else "VIOLATION"
    if not stats.complete:
        status += " (budget exhausted)"
    if not quiet or not result.ok:
        print(
            f"{entry.protocol:>14} / {entry.collector:<20} "
            f"{stats.executions:>7} executions  {stats.schedules:>6} schedules  "
            f"{stats.sleep_pruned:>6} pruned  {status}"
        )
    counterexample = result.first
    if counterexample is None:
        return True
    shrunk = shrink(
        counterexample.config, counterexample.schedule, counterexample.violation
    )
    print(f"  violation: {shrunk.violation}")
    print(
        f"  shrunk to {len(shrunk.schedule)} schedule tokens / "
        f"{shrunk.trace_events} trace events "
        f"({shrunk.attempts} shrink executions)"
    )
    print(f"  schedule: {schedule_to_json(shrunk.schedule)}")
    if traces:
        os.makedirs(traces, exist_ok=True)
        path = os.path.join(
            traces, f"{entry.protocol}-{entry.collector}.trace.jsonl"
        )
        persist_counterexample(shrunk, path)
        print(f"  counterexample trace: {path}")
        print(f"  replay with: python -m repro explore replay {path}")
    return False


# ----------------------------------------------------------------------
# run — one configuration
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    started = time.perf_counter()
    result = explore(
        config,
        max_executions=args.max_executions,
        reduction=not args.no_reduction,
    )
    elapsed = time.perf_counter() - started
    entry = SweepEntry(config.protocol, config.collector, result)
    clean = _report_entry(entry, traces=args.traces, quiet=False)
    stats = result.stats
    rate = stats.executions / elapsed if elapsed > 0 else float("inf")
    print(
        f"explored {stats.executions} prefixes ({stats.schedules} complete "
        f"schedules, deepest {stats.deepest}) in {elapsed:.2f}s — {rate:.0f}/s"
    )
    if not stats.complete:
        print("budget exhausted; re-run with a larger --max-executions to extend")
    return 0 if clean else 1


# ----------------------------------------------------------------------
# sweep — the protocol × collector grid
# ----------------------------------------------------------------------
def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.smoke:
        args.processes, args.messages = 2, 4
        if args.max_executions is None:
            args.max_executions = 30000
    protocols = args.protocols.split(",") if args.protocols else None
    collectors = None
    if args.collectors:
        collectors = tuple((name, {}) for name in args.collectors.split(","))

    def run_and_report() -> tuple[List[SweepEntry], int]:
        configs = explore_sweep_configs(
            num_processes=args.processes,
            messages=args.messages,
            protocols=protocols,
            collectors=collectors,
            with_crash=args.crash,
        )
        entries: List[SweepEntry] = []
        dirty = 0
        # One cell at a time so progress streams; reporting also shrinks and
        # persists counterexamples, which re-executes their configurations —
        # canaries must still be registered here.
        for config in configs:
            result = explore(
                config,
                max_executions=args.max_executions,
                reduction=not args.no_reduction,
            )
            entry = SweepEntry(config.protocol, config.collector, result)
            entries.append(entry)
            if not _report_entry(entry, traces=args.traces, quiet=args.quiet):
                dirty += 1
        return entries, dirty

    started = time.perf_counter()
    if args.canaries:
        with canaries_registered():
            entries, dirty = run_and_report()
    else:
        entries, dirty = run_and_report()
    elapsed = time.perf_counter() - started
    executions = sum(entry.result.stats.executions for entry in entries)
    print(
        f"{len(entries)} configurations, {executions} executions in "
        f"{elapsed:.2f}s; {dirty} with violations"
    )
    if args.expect_violations is not None and dirty != args.expect_violations:
        print(
            f"error: expected exactly {args.expect_violations} violating "
            f"configuration(s), found {dirty}",
            file=sys.stderr,
        )
        return 1
    return 0 if dirty == 0 or args.expect_violations is not None else 1


# ----------------------------------------------------------------------
# replay — a persisted counterexample
# ----------------------------------------------------------------------
def _cmd_replay(args: argparse.Namespace) -> int:
    with canaries_registered():
        replay = replay_counterexample(args.path)
    print(counterexample_summary(replay))
    return 0 if replay.byte_identical else 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def _add_exploration_knobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--processes", type=int, default=2, help="process count (default: 2)"
    )
    parser.add_argument(
        "--messages", type=int, default=6, help="message budget (default: 6)"
    )
    parser.add_argument(
        "--crash", action="store_true",
        help="inject a process-0 crash before the final checkpoint round",
    )
    parser.add_argument(
        "--max-executions", type=int, default=None,
        help="execution budget (default: none — exhaustive)",
    )
    parser.add_argument(
        "--no-reduction", action="store_true",
        help="disable the sleep-set reduction (literally every interleaving)",
    )
    parser.add_argument(
        "--traces", default=None,
        help="directory for shrunk counterexample trace artifacts",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro explore",
        description=(
            "Systematically explore message-delivery interleavings of small "
            "configurations against the paper's theorem oracles."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="explore one configuration")
    _add_exploration_knobs(run)
    run.add_argument("--protocol", default="fdas", help="protocol name")
    run.add_argument("--collector", default="rdt-lgc", help="collector name")
    run.set_defaults(func=_cmd_run)

    sweep_cmd = commands.add_parser(
        "sweep", help="explore the protocol x collector grid"
    )
    _add_exploration_knobs(sweep_cmd)
    sweep_cmd.add_argument(
        "--protocols", default=None,
        help="comma-separated protocol names (default: all registered)",
    )
    sweep_cmd.add_argument(
        "--collectors", default=None,
        help="comma-separated collector names (default: all registered)",
    )
    sweep_cmd.add_argument(
        "--canaries", action="store_true",
        help="also sweep the deliberately broken canary collectors",
    )
    sweep_cmd.add_argument(
        "--expect-violations", type=int, default=None,
        help="exit 0 only if exactly this many configurations violate "
             "(CI conformance mode)",
    )
    sweep_cmd.add_argument(
        "--smoke", action="store_true",
        help="the CI gate shape: exhaustive 2-process / 4-message grid",
    )
    sweep_cmd.add_argument(
        "--quiet", action="store_true", help="only print violating cells"
    )
    sweep_cmd.set_defaults(func=_cmd_sweep)

    replay = commands.add_parser(
        "replay", help="replay a persisted counterexample byte for byte"
    )
    replay.add_argument("path", help="a counterexample .trace.jsonl artifact")
    replay.set_defaults(func=_cmd_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
