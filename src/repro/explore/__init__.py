"""Schedule-space exploration with theorem oracles (the verification subsystem).

Random seeds sample *one* delivery order per run; an interleaving-dependent
collector bug that needs a specific order can survive every seed drawn.
``repro.explore`` closes that axis: it enumerates message-delivery
interleavings of small, fixed configurations — exhaustively at the smallest
sizes, under a sleep-set reduction and a deterministic budgeted frontier for
larger ones — and checks every explored state against an oracle stack built
from the paper's own characterisations (Theorems 1/2 retention with
brute-force cross-checks, Theorem-4/5 safety + optimality audits per
collector, RDT preservation per protocol, recovery-line validity after
injected crashes).  Violations are shrunk to 1-minimal counterexamples and
persisted as replayable :mod:`repro.traceio` artifacts, so every failure is
a one-command repro::

    from repro.explore import ExploreConfig, explore, ring_program

    config = ExploreConfig(
        num_processes=2, program=ring_program(2, 6), collector="rdt-lgc"
    )
    result = explore(config)          # exhaustive at this size
    assert result.ok

CLI: ``python -m repro explore {run,sweep,replay}``.
"""

from repro.explore.canaries import (
    CANARY_NAMES,
    HoarderCanaryCollector,
    UnsafeCanaryCollector,
    canaries_registered,
    register_canaries,
    unregister_canaries,
)
from repro.explore.controller import PendingDeliveries
from repro.explore.executor import ScheduleExecutor
from repro.explore.explorer import (
    Counterexample,
    ExplorationResult,
    SweepEntry,
    explore,
    sweep,
)
from repro.explore.oracles import OracleStack
from repro.explore.program import (
    ADVANCE,
    DELIVER,
    Choice,
    ExecutionOutcome,
    ExploreConfig,
    ProgramStep,
    ScheduleStats,
    StepKind,
    Violation,
    checkpoint,
    crash,
    gossip_program,
    ring_program,
    send,
    star_program,
    validate_schedule,
)
from repro.explore.shrink import (
    CounterexampleReplay,
    ShrunkCounterexample,
    counterexample_summary,
    persist_counterexample,
    replay_counterexample,
    shrink,
)

__all__ = [
    "ADVANCE",
    "CANARY_NAMES",
    "Choice",
    "Counterexample",
    "CounterexampleReplay",
    "DELIVER",
    "ExecutionOutcome",
    "ExplorationResult",
    "ExploreConfig",
    "HoarderCanaryCollector",
    "OracleStack",
    "PendingDeliveries",
    "ProgramStep",
    "ScheduleExecutor",
    "ScheduleStats",
    "ShrunkCounterexample",
    "StepKind",
    "SweepEntry",
    "UnsafeCanaryCollector",
    "Violation",
    "canaries_registered",
    "checkpoint",
    "counterexample_summary",
    "crash",
    "explore",
    "gossip_program",
    "persist_counterexample",
    "register_canaries",
    "replay_counterexample",
    "ring_program",
    "send",
    "shrink",
    "star_program",
    "sweep",
    "unregister_canaries",
    "validate_schedule",
]
