"""Controlled execution of one schedule over one configuration.

A :class:`ScheduleExecutor` builds the regular simulation stack — engine,
network, nodes, recorder, recovery manager — through
:class:`~repro.simulation.runner.SimulationRunner`, attaches a
:class:`~repro.explore.controller.PendingDeliveries` controller so no message
is delivered until the schedule says so, and then executes schedule tokens
one by one:

* ``("a", i)`` advances the engine clock to program step ``i``'s slot
  (running any control messages or collector timers due before it — those
  stay engine-driven and deterministic) and executes the step on its node;
* ``("d", m)`` delivers pending message ``m`` at the current clock.

After every token the oracle stack audits the reached state; the first
violation stops the execution.  An exception escaping the simulation (the
way an unsafe collector breaks a recovery session) is itself a violation of
kind ``execution-error``.  Determinism: the executed prefix fully determines
the reached state, so re-executing a prefix reproduces it exactly — the
property both the stateless DFS and counterexample replay rely on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.explore.controller import PendingDeliveries
from repro.explore.oracles import OracleStack
from repro.explore.program import (
    ADVANCE,
    DELIVER,
    Choice,
    ExecutionOutcome,
    ExploreConfig,
    StepKind,
    Violation,
)
from repro.simulation.runner import SimulationConfig, SimulationRunner
from repro.simulation.workloads import ScriptedWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    #: Observer of the final simulation state of one execution (the
    #: fuzzer's coverage probe).  Called only on violation-free executions.
    StateProbe = Callable[[SimulationRunner], None]


class ScheduleExecutor:
    """Executes schedules of one configuration, one fresh run per call."""

    def __init__(
        self,
        config: ExploreConfig,
        oracles: Optional[OracleStack] = None,
    ) -> None:
        self._config = config
        self._oracles = oracles if oracles is not None else OracleStack.for_config(config)
        # Terminal-state counter across this executor's executions; drives
        # the deterministic kernel-cross-check sampling.
        self._terminals_seen = 0

    @property
    def config(self) -> ExploreConfig:
        """The executed configuration."""
        return self._config

    @property
    def oracles(self) -> OracleStack:
        """The oracle stack applied to every executed state."""
        return self._oracles

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        schedule: Sequence[Choice],
        *,
        check_from: int = 0,
        trace_path: Optional[str] = None,
        trace_meta: Optional[Dict[str, object]] = None,
        state_probe: Optional["StateProbe"] = None,
    ) -> ExecutionOutcome:
        """Run ``schedule`` from a fresh initial state.

        ``check_from`` skips the per-state oracle audits of the first that
        many tokens — the DFS passes the parent prefix's length, whose
        states it already audited on the way down, so each search node pays
        for exactly one new audit (re-execution of a clean prefix is
        deterministic, so re-auditing it cannot find anything new).

        With ``trace_path`` the execution streams a replayable v2 traceio
        artifact (header: scripted-style with the configuration, schedule
        and ``trace_meta`` as provenance); a violating execution seals it
        with an ``aborted`` footer carrying the violation, so the artifact
        is a self-describing counterexample.

        ``state_probe`` observes the final :class:`SimulationRunner` state of
        a violation-free execution (after every token ran and, for terminal
        schedules, after the trailing engine flush) — the hook the fuzzer's
        coverage extraction uses.  It must not mutate the runner.
        """
        config = self._config
        runner = SimulationRunner(
            SimulationConfig(
                num_processes=config.num_processes,
                duration=config.duration,
                workload=ScriptedWorkload([]),
                protocol=config.protocol,
                collector=config.collector,
                collector_options=config.collector_options_dict(),
                seed=config.seed,
            )
        )
        controller = PendingDeliveries(runner.network)
        writer = None
        if trace_path is not None:
            from repro.traceio.format import RunProvenance
            from repro.traceio.writer import TraceWriter

            meta = RunProvenance.explorer(
                config=config.describe(),
                schedule=schedule,
                extra=trace_meta,
            ).to_meta()
            writer = TraceWriter.scripted(
                trace_path,
                config.num_processes,
                seed=config.seed,
                workload="explore",
                meta=meta,
            )
            runner.trace.attach_sink(writer)
        try:
            outcome = self._drive(runner, controller, schedule, check_from)
            if state_probe is not None and outcome.violation is None:
                state_probe(runner)
        except BaseException:
            if writer is not None and not writer.closed:
                writer.abort("executor crashed")
            raise
        if writer is not None:
            if outcome.violation is not None:
                writer.abort(f"violation: {outcome.violation}")
            else:
                writer.seal()
        return outcome

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drive(
        self,
        runner: SimulationRunner,
        controller: PendingDeliveries,
        schedule: Sequence[Choice],
        check_from: int,
    ) -> ExecutionOutcome:
        config = self._config
        for node in runner.nodes:
            node.start()  # the model's initial stable checkpoints s_i^0
        next_step = 0
        violation = (
            self._oracles.check_state(runner, 0) if check_from == 0 else None
        )
        executed = 0
        if violation is None:
            for token in schedule:
                kind, value = token[0], token[1]
                audited = executed >= check_from
                eliminated_before = sum(
                    node.storage.total_eliminated() for node in runner.nodes
                )
                is_send = (
                    kind == ADVANCE
                    and config.program[value].kind is StepKind.SEND
                )
                try:
                    if kind == ADVANCE:
                        if value != next_step:
                            raise ValueError(
                                f"schedule expects program step {next_step}, "
                                f"token says {value}"
                            )
                        violation = self._advance(
                            runner, next_step, executed + 1, audited
                        )
                        next_step += 1
                    elif kind == DELIVER:
                        controller.deliver(value)
                    else:
                        raise ValueError(f"unknown schedule token kind {kind!r}")
                except Exception as exc:
                    violation = Violation(
                        kind="execution-error",
                        detail=f"{type(exc).__name__}: {exc}",
                        step=executed + 1,
                    )
                executed += 1
                if violation is None and audited:
                    # A send mutates neither stable storage nor the
                    # Theorem-1/2 characterisations (it adds no incoming
                    # causal edge and absorbs nothing), so unless a timer
                    # fired and eliminated something en route the verdict
                    # equals the parent state's, which was already clean.
                    eliminated_after = sum(
                        node.storage.total_eliminated() for node in runner.nodes
                    )
                    if not (is_send and eliminated_after == eliminated_before):
                        violation = self._oracles.check_state(runner, executed)
                if violation is not None:
                    break
        enabled: Tuple[Choice, ...] = ()
        affected: Dict[Choice, Optional[int]] = {}
        terminal = False
        if violation is None:
            choices: List[Choice] = []
            if next_step < len(config.program):
                step = config.program[next_step]
                choice: Choice = (ADVANCE, next_step)
                choices.append(choice)
                affected[choice] = None if step.kind is StepKind.CRASH else step.pid
            for message_id in controller.pending_message_ids():
                choice = (DELIVER, message_id)
                choices.append(choice)
                affected[choice] = controller.receiver(message_id)
            enabled = tuple(choices)
            if not enabled:
                terminal = True
                # Flush trailing engine work (collector timers, late control
                # messages) up to the nominal duration, then run the final,
                # full-stack audit including the (sampled) kernel cross-check.
                period = max(self._oracles.kernel_cross_check_period, 1)
                cross_check = self._terminals_seen % period == 0
                self._terminals_seen += 1
                try:
                    runner.engine.run(until=config.duration)
                    violation = self._oracles.check_state(
                        runner, executed, final=True, cross_check=cross_check
                    )
                except Exception as exc:
                    violation = Violation(
                        kind="execution-error",
                        detail=f"{type(exc).__name__}: {exc}",
                        step=executed,
                    )
        return ExecutionOutcome(
            enabled=enabled,
            violation=violation,
            executed=executed,
            terminal=terminal,
            trace_events=runner.trace.log.total_events(),
            affected=affected,
        )

    def _advance(
        self,
        runner: SimulationRunner,
        step_index: int,
        position: int,
        audited: bool,
    ) -> Optional[Violation]:
        """Execute program step ``step_index`` at its time slot.

        ``position`` is the 1-based schedule position, used to stamp any
        recovery-oracle violation; with ``audited`` False the recovery check
        is skipped (the prefix was already audited by a previous execution).
        """
        config = self._config
        step = config.program[step_index]
        slot = (step_index + 1) * config.step_gap
        # Run engine-scheduled work due before the slot (collector timers and
        # control-message deliveries — deterministic, not explored choices).
        runner.engine.run(until=slot)
        node = runner.nodes[step.pid]
        if step.kind is StepKind.SEND:
            assert step.target is not None
            node.send_message(step.target)
            return None
        if step.kind is StepKind.CHECKPOINT:
            node.take_checkpoint(forced=False)
            return None
        assert step.kind is StepKind.CRASH
        if not audited:
            runner.inject_crash(step.pid)
            return None
        # Recovery validity is checked against the pattern at the crash
        # instant; current_ccp() is memoised, so the manager reuses it.
        pre_crash_ccp = runner.current_ccp()
        runner.inject_crash(step.pid)
        return self._oracles.check_recovery(
            pre_crash_ccp, runner.recoveries[-1], position
        )
