"""Bounded enumeration of delivery schedules with sleep-set reduction.

The search tree: a node is the state reached by a schedule prefix, its
outgoing edges are the enabled choices there (the next program step, plus
one delivery per pending message).  The explorer walks this tree depth-first
in a canonical order — program step first, then deliveries by message
ordinal — re-executing each prefix from scratch (state re-construction is
cheap at explorer sizes and keeps the search trivially correct).

**Exhaustiveness and the frontier.**  Without a budget the walk is
exhaustive: every schedule of the configuration (up to the reduction's
equivalence, below) is executed and checked.  With ``max_executions`` set,
the walk stops after that many executions; because the order is canonical,
the portion explored is a *deterministic schedule-prefix frontier* — the
same budget always explores exactly the same prefixes, and the stats record
the prefix at which the search stopped, so a larger budget strictly extends
a smaller one.

**Sleep-set reduction.**  After fully exploring choice ``c`` from a state,
``c`` is put to sleep in the siblings explored next: any execution that
takes an *independent* choice first and ``c`` later is Mazurkiewicz-
equivalent to one already explored through ``c``.  A sleeping choice wakes
up (is dropped from the sleep set) as soon as a dependent choice executes.
Two choices are independent only when they touch disjoint processes and
nothing global can couple them:

* two deliveries are independent iff their receivers differ and the
  collector exchanges no control messages (a control broadcast triggered by
  one delivery would race the other's effects);
* a program step is independent of a delivery iff the collector is
  asynchronous (Definition 8 — no control plane, no timers, so advancing
  the clock cannot couple them), the step is a send or checkpoint, and its
  process differs from the delivery's receiver;
* crash steps are dependent on everything (a recovery session is global).

Soundness, precisely: independent choices commute at the level of
per-process histories and collector/storage state, so the reduction
preserves every reachable *terminal* state and every per-process local
state.  The oracle verdicts of intermediate states are checked along every
*explored* execution; an intermediate global state unique to a pruned
interleaving of independent choices differs from an explored one only by
the order of operations that do not affect each other's processes — see
DESIGN.md ("Schedule-space exploration") for the full argument and for the
``reduction=False`` escape hatch that makes the walk literally exhaustive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.explore.executor import ScheduleExecutor
from repro.explore.oracles import OracleStack
from repro.explore.program import (
    ADVANCE,
    Choice,
    ExploreConfig,
    ScheduleStats,
    StepKind,
    Violation,
)
from repro.gc.registry import collector_class


@dataclass(frozen=True)
class Counterexample:
    """A schedule that violates the oracle stack, before shrinking."""

    config: ExploreConfig
    schedule: Tuple[Choice, ...]
    violation: Violation


@dataclass
class ExplorationResult:
    """Everything one exploration produced."""

    config: ExploreConfig
    stats: ScheduleStats
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the explored space contained no violation."""
        return not self.counterexamples

    @property
    def first(self) -> Optional[Counterexample]:
        """The first counterexample found (deterministic), if any."""
        return self.counterexamples[0] if self.counterexamples else None


class _Independence:
    """Choice-independence predicate for one configuration (see module doc)."""

    def __init__(self, config: ExploreConfig) -> None:
        collector = collector_class(config.collector)
        self._config = config
        self._asynchronous = collector.asynchronous
        self._control_free = not collector.uses_control_messages

    def independent(
        self,
        a: Choice,
        b: Choice,
        affected: Dict[Choice, Optional[int]],
    ) -> bool:
        pid_a = self._affected(a, affected)
        pid_b = self._affected(b, affected)
        if pid_a is None or pid_b is None or pid_a == pid_b:
            return False
        if a[0] == ADVANCE or b[0] == ADVANCE:
            # Program step vs delivery: needs a fully asynchronous collector
            # (time advance or control traffic could couple the two).
            return self._asynchronous
        # Delivery vs delivery at the same instant.
        return self._control_free

    def _affected(
        self, choice: Choice, affected: Dict[Choice, Optional[int]]
    ) -> Optional[int]:
        if choice in affected:
            return affected[choice]
        # A choice carried over in a sleep set may not be enabled in the
        # current state's metadata; derive its process from the config.
        if choice[0] == ADVANCE:
            step = self._config.program[choice[1]]
            return None if step.kind is StepKind.CRASH else step.pid
        return None  # delivery metadata lost (cannot happen for live choices)


def explore(
    config: ExploreConfig,
    *,
    oracles: Optional[OracleStack] = None,
    max_executions: Optional[int] = None,
    reduction: bool = True,
    max_counterexamples: int = 1,
) -> ExplorationResult:
    """Walk the schedule space of ``config`` and check every state reached.

    Stops after ``max_counterexamples`` violations (a violating prefix is
    never extended — its continuations would re-observe the same broken
    state), or when the ``max_executions`` budget runs out, whichever comes
    first; without a budget the walk is exhaustive.
    """
    executor = ScheduleExecutor(config, oracles)
    independence = _Independence(config)
    stats = ScheduleStats()
    result = ExplorationResult(config=config, stats=stats)
    # Delivery choices of pruned-sleep siblings need receiver metadata from
    # the state where they were enabled; merge every observed mapping (a
    # message ordinal's receiver never changes).
    seen_affected: Dict[Choice, Optional[int]] = {}

    def budget_left() -> bool:
        return max_executions is None or stats.executions < max_executions

    def dfs(prefix: Tuple[Choice, ...], sleep: FrozenSet[Choice]) -> bool:
        """Returns False when the walk must stop (budget or enough findings)."""
        if not budget_left():
            stats.complete = False
            stats.frontier = prefix
            return False
        # Only the state the last token produced is new — every proper
        # prefix was audited by the parent executions on the way down.
        outcome = executor.execute(prefix, check_from=max(len(prefix) - 1, 0))
        stats.executions += 1
        stats.deepest = max(stats.deepest, len(prefix))
        seen_affected.update(outcome.affected)
        if outcome.violation is not None:
            stats.violations += 1
            result.counterexamples.append(
                Counterexample(config, prefix[: outcome.executed], outcome.violation)
            )
            return len(result.counterexamples) < max_counterexamples
        if outcome.terminal:
            stats.schedules += 1
            return True
        explored: List[Choice] = []
        for choice in outcome.enabled:
            if choice in sleep:
                stats.sleep_pruned += 1
                continue
            if reduction:
                child_sleep = frozenset(
                    other
                    for other in sleep.union(explored)
                    if independence.independent(other, choice, seen_affected)
                )
            else:
                child_sleep = frozenset()
            if not dfs(prefix + (choice,), child_sleep):
                return False
            explored.append(choice)
        return True

    dfs((), frozenset())
    return result


@dataclass
class SweepEntry:
    """One (protocol, collector) cell of an exploration sweep."""

    protocol: str
    collector: str
    result: ExplorationResult


def sweep(
    configs: Sequence[ExploreConfig],
    *,
    max_executions: Optional[int] = None,
    reduction: bool = True,
) -> List[SweepEntry]:
    """Explore several configurations (typically a protocol × collector grid)."""
    entries: List[SweepEntry] = []
    for config in configs:
        entries.append(
            SweepEntry(
                protocol=config.protocol,
                collector=config.collector,
                result=explore(
                    config,
                    max_executions=max_executions,
                    reduction=reduction,
                ),
            )
        )
    return entries
