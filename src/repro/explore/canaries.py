"""Deliberately broken collectors that mutation-test the oracle stack.

An explorer whose oracles never fire proves nothing.  The two canaries here
are RDT-LGC variants with one seeded, interleaving-flavoured bug each:

* :class:`UnsafeCanaryCollector` treats a **stale** message — one whose
  piggyback updates no dependency-vector entry, which only happens when
  deliveries are reordered so that newer information overtook it — as
  evidence that every checkpoint the ``UC`` table protects on behalf of a
  peer is obsolete, and releases those references.  Under delivery orders
  where the released checkpoint is still Theorem-1-required this *discards a
  required checkpoint*: a safety (Theorem 4) violation, and with a
  subsequent crash a broken recovery.
* :class:`HoarderCanaryCollector` vetoes every other elimination the ``UC``
  bookkeeping decides on, so a Theorem-2-obsolete checkpoint stays
  *retained*: an optimality (Theorem 5) violation while remaining perfectly
  safe.

Neither is registered by default — they exist to be caught.  Tests and the
CLI opt in via :func:`register_canaries` / :func:`canaries_registered`; the
conformance suite asserts the explorer finds both within a fixed budget
while RDT-LGC sweeps the same space clean.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Sequence, Tuple

from repro.core.uncollected import UncollectedTable
from repro.gc.rdt_lgc_collector import RdtLgcCollector
from repro.gc.registry import register_collector, unregister_collector
from repro.storage.stable import StableStorage


class UnsafeCanaryCollector(RdtLgcCollector):
    """RDT-LGC with a reordering-triggered unsafe release (test-only).

    The bug: a delivery that updates no DV entry is taken as proof that the
    sender-side knowledge protecting peer-referenced checkpoints is stale,
    and every non-self ``UC`` entry is released.  Plausible-looking — the
    message indeed carried nothing new — but Theorem 2 retains those
    checkpoints precisely *because* no newer causal knowledge has arrived.
    """

    name = "canary-unsafe"
    claims_optimality = False

    def on_receive(
        self,
        piggybacked: Sequence[int],
        updated_entries: Sequence[int],
        dv: Sequence[int],
    ) -> None:
        if updated_entries:
            super().on_receive(piggybacked, updated_entries, dv)
            return
        # BUG: stale message => drop every peer-held retention reference.
        for entry in range(self._num_processes):
            if entry != self._pid:
                self._uc.release(entry)


class HoarderCanaryCollector(RdtLgcCollector):
    """RDT-LGC that vetoes every other elimination (test-only).

    The ``UC`` bookkeeping is untouched — references are released exactly as
    Algorithm 2 dictates — but when the table decides a checkpoint is
    collectible, every second decision is silently ignored and the
    checkpoint stays on stable storage.  Safe (retaining more never violates
    Theorem 4) but non-optimal: the survivor is Theorem-2-obsolete the
    moment RDT-LGC would have eliminated it.
    """

    name = "canary-hoarder"
    claims_optimality = True

    def __init__(self, pid: int, num_processes: int, storage: StableStorage) -> None:
        super().__init__(pid, num_processes, storage)
        self._eliminations = 0
        self._hoarded: List[int] = []
        # The UC table inherited from RdtLgcCollector already routes through
        # self._eliminate, which the veto below overrides; the bookkeeping
        # itself stays exactly Algorithm 1/2.
        self._uc = UncollectedTable(num_processes, on_eliminate=self._eliminate)

    @property
    def hoarded_indices(self) -> Tuple[int, ...]:
        """Checkpoint indices the veto kept alive (diagnostics)."""
        return tuple(self._hoarded)

    def _eliminate(self, index: int) -> None:
        self._eliminations += 1
        if self._eliminations % 2 == 0:
            # BUG: every second collectible checkpoint is hoarded.
            self._hoarded.append(index)
            return
        super()._eliminate(index)


#: The canary classes, in registration order.
CANARY_COLLECTORS = (UnsafeCanaryCollector, HoarderCanaryCollector)

#: Their registry names.
CANARY_NAMES = tuple(cls.name for cls in CANARY_COLLECTORS)


def register_canaries() -> None:
    """Register both canaries with the collector registry (idempotent)."""
    for cls in CANARY_COLLECTORS:
        register_collector(cls)


def unregister_canaries() -> None:
    """Remove both canaries from the collector registry (idempotent)."""
    for cls in CANARY_COLLECTORS:
        unregister_collector(cls.name)


@contextlib.contextmanager
def canaries_registered() -> Iterator[Tuple[str, ...]]:
    """Scoped registration for tests and CLI sweeps."""
    register_canaries()
    try:
        yield CANARY_NAMES
    finally:
        unregister_canaries()
