"""The explorer's concrete :class:`repro.simulation.network.ScheduleController`.

Parks every application message copy the network hands over and exposes the
pending set as delivery choices.  The explorer only drives loss-free,
duplication-free channels (one copy per message, ``message_id`` assignment is
the send ordinal), which :meth:`PendingDeliveries.on_copy_in_flight` enforces
— a configuration whose channel drops or duplicates would silently shrink or
alias the schedule alphabet, so it is rejected loudly instead.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.network import AppMessage, Network


class PendingDeliveries:
    """Custody of in-flight message copies, keyed by message ordinal."""

    def __init__(self, network: Network) -> None:
        self._network = network
        #: message_id -> (delivery_id, receiver)
        self._pending: Dict[int, tuple[int, int]] = {}
        self._discarded: List[int] = []
        network.attach_controller(self)

    # ------------------------------------------------------------------
    # ScheduleController protocol
    # ------------------------------------------------------------------
    def on_copy_in_flight(
        self, delivery_id: int, message: AppMessage, sampled_delivery_time: float
    ) -> None:
        if message.message_id in self._pending:
            raise RuntimeError(
                f"message {message.message_id} produced a second in-flight copy; "
                f"the explorer only drives duplication-free channels"
            )
        self._pending[message.message_id] = (delivery_id, message.receiver)

    def on_copies_discarded(self, delivery_ids: List[int]) -> None:
        dropped = set(delivery_ids)
        for message_id, (delivery_id, _) in list(self._pending.items()):
            if delivery_id in dropped:
                del self._pending[message_id]
                self._discarded.append(message_id)

    # ------------------------------------------------------------------
    # Explorer-facing API
    # ------------------------------------------------------------------
    def pending_message_ids(self) -> List[int]:
        """Message ordinals currently awaiting a delivery choice, ascending."""
        return sorted(self._pending)

    def receiver(self, message_id: int) -> int:
        """The receiver of a pending message."""
        return self._pending[message_id][1]

    def discarded_message_ids(self) -> List[int]:
        """Messages whose copies a recovery session discarded, in drop order."""
        return list(self._discarded)

    def deliver(self, message_id: int) -> None:
        """Deliver a pending message now (current engine time)."""
        try:
            delivery_id, _ = self._pending.pop(message_id)
        except KeyError:
            raise ValueError(
                f"message {message_id} is not pending (already delivered, "
                f"discarded by recovery, or never sent)"
            ) from None
        self._network.release_delivery(delivery_id)
