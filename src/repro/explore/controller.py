"""The explorer's concrete :class:`repro.simulation.network.ScheduleController`.

Parks every application message copy the network hands over and exposes the
pending set as delivery choices.  The explorer only drives loss-free,
duplication-free channels (one copy per message, ``message_id`` assignment is
the send ordinal), which :meth:`PendingDeliveries.on_copy_in_flight` enforces
— a configuration whose channel drops or duplicates would silently shrink or
alias the schedule alphabet, so it is rejected loudly instead.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.network import AppMessage, Network


class PendingDeliveries:
    """Custody of in-flight message copies, keyed by message ordinal."""

    def __init__(self, network: Network) -> None:
        """Attach to ``network`` and start intercepting app-message copies.

        Args:
            network: the simulation network whose application-message
                deliveries this controller takes custody of (via
                ``network.attach_controller``); control messages, timers
                and partition transitions stay engine-driven.
        """
        self._network = network
        #: message_id -> (delivery_id, receiver)
        self._pending: Dict[int, tuple[int, int]] = {}
        self._discarded: List[int] = []
        network.attach_controller(self)

    # ------------------------------------------------------------------
    # ScheduleController protocol
    # ------------------------------------------------------------------
    def on_copy_in_flight(
        self, delivery_id: int, message: AppMessage, sampled_delivery_time: float
    ) -> None:
        """Take custody of one in-flight copy the network hands over.

        Args:
            delivery_id: the network's handle for this copy, later passed
                back to ``release_delivery``.
            message: the application message; its ``message_id`` (the send
                ordinal) becomes the schedule-alphabet key.
            sampled_delivery_time: the latency the channel model drew —
                kept only as provenance, delivery happens at release time.

        Raises:
            RuntimeError: if the message already has a pending copy — the
                explorer only drives duplication-free channels, so a second
                copy means the configuration is out of scope.
        """
        if message.message_id in self._pending:
            raise RuntimeError(
                f"message {message.message_id} produced a second in-flight copy; "
                f"the explorer only drives duplication-free channels"
            )
        self._pending[message.message_id] = (delivery_id, message.receiver)

    def on_copies_discarded(self, delivery_ids: List[int]) -> None:
        """Drop custody of copies a recovery session reclaimed.

        Args:
            delivery_ids: the network handles of the discarded copies;
                their message ordinals leave the pending set and are
                appended to :meth:`discarded_message_ids` in drop order.
        """
        dropped = set(delivery_ids)
        for message_id, (delivery_id, _) in list(self._pending.items()):
            if delivery_id in dropped:
                del self._pending[message_id]
                self._discarded.append(message_id)

    # ------------------------------------------------------------------
    # Explorer-facing API
    # ------------------------------------------------------------------
    def pending_message_ids(self) -> List[int]:
        """Message ordinals currently awaiting a delivery choice, ascending."""
        return sorted(self._pending)

    def receiver(self, message_id: int) -> int:
        """The receiver process of a pending message.

        Args:
            message_id: a send ordinal currently in the pending set.

        Raises:
            KeyError: if the message is not pending.
        """
        return self._pending[message_id][1]

    def discarded_message_ids(self) -> List[int]:
        """Messages whose copies a recovery session discarded, in drop order."""
        return list(self._discarded)

    def deliver(self, message_id: int) -> None:
        """Deliver a pending message now (current engine time).

        Args:
            message_id: the send ordinal of the copy to release.

        Raises:
            ValueError: if the message is not pending — already delivered,
                discarded by a recovery session, or never sent.  This is the
                error the fuzzer's invalid-candidate filter keys on.
        """
        try:
            delivery_id, _ = self._pending.pop(message_id)
        except KeyError:
            raise ValueError(
                f"message {message_id} is not pending (already delivered, "
                f"discarded by recovery, or never sent)"
            ) from None
        self._network.release_delivery(delivery_id)
