"""Causality substrate: events, happened-before, vector clocks, dependency vectors.

This subpackage provides the ground-truth causal machinery that the rest of the
library is built on.  It is deliberately independent from checkpointing: it
only knows about processes, events, messages and Lamport's happened-before
relation.

Modules
-------
``events``
    Event and message records plus the :class:`EventLog` container that stores
    a full distributed execution.
``happens_before``
    The :class:`CausalOrder` oracle, which answers ``e -> e'`` queries over an
    :class:`EventLog` using per-event vector timestamps.
``vector_clock``
    A classic vector-clock implementation (used by the ground-truth oracle and
    by tests).
``dependency_vector``
    The transitive dependency vector of Strom & Yemini as used by RDT
    checkpointing protocols (Section 4.2 of the paper), including the
    checkpoint-level causal-precedence test of Equation (2).
``cuts``
    Cuts and consistent cuts of an :class:`EventLog` (Definition 2).
"""

from repro.causality.dependency_vector import DependencyVector
from repro.causality.events import (
    Event,
    EventId,
    EventKind,
    EventLog,
    Message,
    ProcessHistory,
)
from repro.causality.happens_before import CausalOrder
from repro.causality.cuts import Cut
from repro.causality.vector_clock import VectorClock

__all__ = [
    "CausalOrder",
    "Cut",
    "DependencyVector",
    "Event",
    "EventId",
    "EventKind",
    "EventLog",
    "Message",
    "ProcessHistory",
    "VectorClock",
]
