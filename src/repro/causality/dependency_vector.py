"""Transitive dependency vectors (Strom & Yemini) as used by RDT protocols.

Section 4.2 of the paper describes the mechanism precisely:

* every process ``p_i`` maintains a size-``n`` vector ``DV``, initially all
  zeros;
* ``DV[i]`` is the index of the *current checkpoint interval* of ``p_i`` and is
  incremented immediately after a new checkpoint is taken;
* every other entry ``DV[j]`` is the highest interval index of ``p_j`` upon
  which ``p_i`` depends, updated on message receipt by componentwise maximum;
* the vector is piggybacked on every application message and stored together
  with each checkpoint.

Two facts derived from the propagation mechanism are used throughout the
paper and the library:

* **Equation (2)** — ``c_a^alpha -> c_b^beta  iff  alpha < DV(c_b^beta)[a]``;
* **Equation (3)** — ``last_k_i(j) = DV(v_i)[j] - 1`` (the last stable
  checkpoint of ``p_j`` causally known by ``p_i``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple


class DependencyVector:
    """The dependency vector of one process (or stored with one checkpoint)."""

    __slots__ = ("_entries", "_owner")

    def __init__(self, entries: Iterable[int], owner: int) -> None:
        self._entries: List[int] = list(entries)
        if not 0 <= owner < len(self._entries):
            raise ValueError(
                f"owner {owner} out of range for a {len(self._entries)}-entry vector"
            )
        if any(v < 0 for v in self._entries):
            raise ValueError("dependency vector entries must be non-negative")
        self._owner = owner

    @classmethod
    def initial(cls, num_processes: int, owner: int) -> "DependencyVector":
        """The all-zeros vector a process starts with (Section 4.2)."""
        return cls([0] * num_processes, owner)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def owner(self) -> int:
        """The process that maintains (or took the checkpoint storing) this DV."""
        return self._owner

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> int:
        return self._entries[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    def as_tuple(self) -> Tuple[int, ...]:
        """The entries as an immutable tuple."""
        return tuple(self._entries)

    def copy(self) -> "DependencyVector":
        """An independent snapshot of this vector (e.g. to store with a checkpoint)."""
        return DependencyVector(self._entries, self._owner)

    def snapshot(self) -> Tuple[int, ...]:
        """Alias of :meth:`as_tuple`, emphasising checkpoint-time snapshots."""
        return self.as_tuple()

    # ------------------------------------------------------------------
    # Protocol operations
    # ------------------------------------------------------------------
    def current_interval(self) -> int:
        """The index of the owner's current checkpoint interval (``DV[i]``)."""
        return self._entries[self._owner]

    def piggyback(self) -> Tuple[int, ...]:
        """The value to attach to an outgoing application message."""
        return self.as_tuple()

    def absorb(self, piggybacked: Sequence[int]) -> List[int]:
        """Apply the receive rule and return the indices that increased.

        This is the ``for j: if m.DV[j] > DV[j]`` loop of Algorithm 2.  The
        returned list contains every process id ``j`` for which new causal
        information was learned; RDT-LGC uses exactly this set to re-link the
        ``UC`` entries.
        """
        if len(piggybacked) != len(self._entries):
            raise ValueError("piggybacked vector has the wrong size")
        updated: List[int] = []
        for j, value in enumerate(piggybacked):
            if value > self._entries[j]:
                self._entries[j] = value
                updated.append(j)
        return updated

    def advance_after_checkpoint(self) -> int:
        """Increment the owner entry after a checkpoint; return the new interval."""
        self._entries[self._owner] += 1
        return self._entries[self._owner]

    def last_known_checkpoint(self, pid: int) -> int:
        """``last_k_i(pid)`` per Equation (3): ``DV[pid] - 1`` (may be ``-1``)."""
        return self._entries[pid] - 1

    # ------------------------------------------------------------------
    # Equation (2)
    # ------------------------------------------------------------------
    def knows_checkpoint(self, pid: int, checkpoint_index: int) -> bool:
        """True iff ``c_pid^checkpoint_index`` causally precedes this vector's state.

        This is Equation (2) applied with this vector taken as ``DV(c_b^beta)``:
        ``c_a^alpha -> c_b^beta`` iff ``alpha < DV(c_b^beta)[a]``.
        """
        return checkpoint_index < self._entries[pid]

    # ------------------------------------------------------------------
    # Comparisons / mutation helpers for rollback (Algorithm 3)
    # ------------------------------------------------------------------
    def restore(self, entries: Sequence[int]) -> None:
        """Overwrite the entries (used when a rollback recreates ``DV``)."""
        if len(entries) != len(self._entries):
            raise ValueError("cannot restore a vector of a different size")
        if any(v < 0 for v in entries):
            raise ValueError("dependency vector entries must be non-negative")
        self._entries = list(entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencyVector):
            return NotImplemented
        return self._entries == other._entries and self._owner == other._owner

    def __hash__(self) -> int:
        return hash((tuple(self._entries), self._owner))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DependencyVector({self._entries}, owner={self._owner})"


def causally_precedes(
    checkpoint_owner: int,
    checkpoint_index: int,
    target_dv: Sequence[int],
) -> bool:
    """Standalone Equation (2) test on raw vectors.

    ``c_a^alpha -> c_b^beta`` iff ``alpha < DV(c_b^beta)[a]`` where
    ``checkpoint_owner = a``, ``checkpoint_index = alpha`` and ``target_dv`` is
    the dependency vector stored with ``c_b^beta``.
    """
    return checkpoint_index < target_dv[checkpoint_owner]
