"""Cuts and consistent cuts of a distributed execution (Definition 2).

A *cut* contains an initial prefix of the event sequence of every process.  A
cut is *consistent* iff it is left-closed under causal precedence: every event
whose effect is inside the cut has all its causes inside the cut as well.
Because each per-process part of a cut is a prefix, program-order closedness is
automatic and the only way to violate consistency is to include the receive of
a message without its send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.causality.events import EventKind, EventLog


@dataclass(frozen=True)
class Cut:
    """A cut of an execution: one prefix length per process.

    ``lengths[pid]`` is the number of events of process ``pid`` included in the
    cut (so ``lengths[pid] == 0`` means no event of that process is included).
    """

    lengths: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(length < 0 for length in self.lengths):
            raise ValueError("cut prefix lengths must be non-negative")

    @classmethod
    def of(cls, lengths: Sequence[int]) -> "Cut":
        """Build a cut from any sequence of prefix lengths."""
        return cls(tuple(lengths))

    @classmethod
    def full(cls, log: EventLog) -> "Cut":
        """The cut containing every event of ``log``."""
        return cls(tuple(len(log.history(pid)) for pid in log.processes))

    @property
    def num_processes(self) -> int:
        """Number of processes covered by the cut."""
        return len(self.lengths)

    def includes(self, pid: int, seq: int) -> bool:
        """True if event ``(pid, seq)`` is inside the cut."""
        return seq < self.lengths[pid]

    def is_subcut_of(self, other: "Cut") -> bool:
        """True if this cut is contained in (or equal to) ``other``."""
        if self.num_processes != other.num_processes:
            raise ValueError("cannot compare cuts over different process sets")
        return all(a <= b for a, b in zip(self.lengths, other.lengths))

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def is_consistent(self, log: EventLog) -> bool:
        """Definition 2: left-closed under causal precedence.

        Equivalent (for prefix cuts) to: every RECEIVE inside the cut has its
        SEND inside the cut.
        """
        self._check_against(log)
        for pid in log.processes:
            for event in log.history(pid).events[: self.lengths[pid]]:
                if event.kind is not EventKind.RECEIVE:
                    continue
                assert event.message_id is not None
                send = log.message(event.message_id).send_event
                if not self.includes(send.pid, send.seq):
                    return False
        return True

    def inconsistency_witnesses(self, log: EventLog) -> List[int]:
        """Message ids received inside the cut but sent outside it."""
        self._check_against(log)
        witnesses: List[int] = []
        for pid in log.processes:
            for event in log.history(pid).events[: self.lengths[pid]]:
                if event.kind is not EventKind.RECEIVE:
                    continue
                assert event.message_id is not None
                send = log.message(event.message_id).send_event
                if not self.includes(send.pid, send.seq):
                    witnesses.append(event.message_id)
        return witnesses

    def restrict(self, log: EventLog) -> EventLog:
        """The sub-execution containing only the events inside the cut."""
        self._check_against(log)
        return log.prefix(list(self.lengths))

    def _check_against(self, log: EventLog) -> None:
        if self.num_processes != log.num_processes:
            raise ValueError("cut and log have different numbers of processes")
        for pid in log.processes:
            if self.lengths[pid] > len(log.history(pid)):
                raise ValueError(
                    f"cut includes {self.lengths[pid]} events of process {pid}, "
                    f"but only {len(log.history(pid))} were executed"
                )


def latest_consistent_cut(log: EventLog) -> Cut:
    """The maximal consistent cut of ``log``.

    For a complete log this is simply the full cut (every receive has a send),
    but logs truncated mid-flight may include receives of dropped sends; this
    helper shrinks prefixes until consistency holds.  The maximal consistent
    cut is unique because consistent cuts are closed under componentwise
    maximum.
    """
    lengths = [len(log.history(pid)) for pid in log.processes]
    changed = True
    while changed:
        changed = False
        cut = Cut.of(lengths)
        for pid in log.processes:
            for seq in range(lengths[pid]):
                event = log.history(pid)[seq]
                if event.kind is not EventKind.RECEIVE:
                    continue
                assert event.message_id is not None
                send = log.message(event.message_id).send_event
                if not cut.includes(send.pid, send.seq):
                    lengths[pid] = seq
                    changed = True
                    break
    return Cut.of(lengths)
