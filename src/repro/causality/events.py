"""Event and message records for distributed executions.

The system model follows Section 2 of the paper: a distributed system is a set
of processes ``p_1 .. p_n`` that communicate only by exchanging messages.  A
process execution is a sequence of events; events are *internal* (including
local checkpoints) or *communication* events (send/receive).

The classes in this module are plain, immutable records.  They carry no
behaviour beyond validation and convenient accessors; all causal reasoning is
done by :mod:`repro.causality.happens_before` and the CCP layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class EventKind(enum.Enum):
    """The kind of an event in a process history."""

    INTERNAL = "internal"
    SEND = "send"
    RECEIVE = "receive"
    CHECKPOINT = "checkpoint"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True, slots=True)
class EventId:
    """Identifies an event by process id and position in that process history.

    ``seq`` is the zero-based index of the event in the process's local event
    sequence (``e_i^0, e_i^1, ...`` in the paper's notation).
    """

    pid: int
    seq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"e{self.pid}^{self.seq}"


@dataclass(frozen=True, slots=True)
class Event:
    """A single event executed by a process.

    Parameters
    ----------
    pid:
        The process that executed the event.
    seq:
        The position of the event in the process's history.
    kind:
        One of :class:`EventKind`.
    message_id:
        For SEND/RECEIVE events, the id of the message involved.
    checkpoint_index:
        For CHECKPOINT events, the index of the checkpoint taken (``gamma`` in
        ``s_i^gamma``).
    time:
        Optional simulated timestamp (used only for reporting; the algorithms
        never rely on it, matching the asynchronous system model).
    forced:
        For CHECKPOINT events, whether the checkpoint was forced by the
        communication-induced protocol (as opposed to a basic checkpoint).
    """

    pid: int
    seq: int
    kind: EventKind
    message_id: Optional[int] = None
    checkpoint_index: Optional[int] = None
    time: float = 0.0
    forced: bool = False

    def __post_init__(self) -> None:
        if self.kind in (EventKind.SEND, EventKind.RECEIVE):
            if self.message_id is None:
                raise ValueError(f"{self.kind} event requires a message_id")
        if self.kind is EventKind.CHECKPOINT and self.checkpoint_index is None:
            raise ValueError("CHECKPOINT event requires a checkpoint_index")

    @property
    def event_id(self) -> EventId:
        """The :class:`EventId` of this event."""
        return EventId(self.pid, self.seq)

    def is_checkpoint(self) -> bool:
        """True if this event records the taking of a local checkpoint."""
        return self.kind is EventKind.CHECKPOINT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = ""
        if self.kind in (EventKind.SEND, EventKind.RECEIVE):
            extra = f"(m{self.message_id})"
        elif self.kind is EventKind.CHECKPOINT:
            extra = f"(c{self.pid}^{self.checkpoint_index})"
        return f"{self.kind.value}@p{self.pid}#{self.seq}{extra}"


@dataclass(frozen=True)
class Message:
    """An application message exchanged between two processes.

    A message is *delivered* when both ``send_event`` and ``receive_event`` are
    known.  Messages that were sent but never received (lost, or still in
    transit at the cut under analysis) have ``receive_event is None``; they do
    not contribute dependencies, matching the CCP definition in Section 2.2
    which excludes lost and in-transit messages.
    """

    message_id: int
    sender: int
    receiver: int
    send_event: EventId
    receive_event: Optional[EventId] = None

    @property
    def delivered(self) -> bool:
        """True if the message was received within the recorded execution."""
        return self.receive_event is not None


@dataclass
class ProcessHistory:
    """The ordered sequence of events executed by one process."""

    pid: int
    events: List[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        """Append ``event``, validating process id and sequence number."""
        if event.pid != self.pid:
            raise ValueError(
                f"event for process {event.pid} appended to history of {self.pid}"
            )
        if event.seq != len(self.events):
            raise ValueError(
                f"expected seq {len(self.events)} for process {self.pid}, "
                f"got {event.seq}"
            )
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, seq: int) -> Event:
        return self.events[seq]

    def checkpoint_events(self) -> List[Event]:
        """All CHECKPOINT events in order."""
        return [e for e in self.events if e.is_checkpoint()]

    def last_checkpoint_index(self) -> int:
        """Index of the last checkpoint taken, or -1 if none was taken."""
        for event in reversed(self.events):
            if event.is_checkpoint():
                assert event.checkpoint_index is not None
                return event.checkpoint_index
        return -1


class EventLog:
    """A complete record of a distributed execution.

    The log stores one :class:`ProcessHistory` per process and a registry of
    messages.  It is the single source of truth from which causal orders,
    cuts and checkpoint-and-communication patterns are derived.

    The class enforces the structural invariants of the model:

    * event sequence numbers are contiguous per process;
    * each message id is sent exactly once and received at most once;
    * a receive event can only be recorded after its send event exists.

    A log may be *based*: ``checkpoint_bases[pid]`` is the index of the first
    checkpoint event of ``pid`` present in the log (0 for a full record).
    Based logs arise from obsolescence-driven pruning, which discards the
    prefix of each history up to a garbage-collected checkpoint (see
    :meth:`suffix`); checkpoint indices remain globally meaningful, only the
    events of earlier intervals are gone.
    """

    def __init__(
        self,
        num_processes: int,
        *,
        checkpoint_bases: Optional[Sequence[int]] = None,
    ) -> None:
        if num_processes <= 0:
            raise ValueError("an execution needs at least one process")
        if checkpoint_bases is None:
            checkpoint_bases = [0] * num_processes
        if len(checkpoint_bases) != num_processes:
            raise ValueError("one checkpoint base per process is required")
        if any(base < 0 for base in checkpoint_bases):
            raise ValueError("checkpoint bases must be non-negative")
        self._checkpoint_bases: List[int] = list(checkpoint_bases)
        self._histories: List[ProcessHistory] = [
            ProcessHistory(pid) for pid in range(num_processes)
        ]
        self._messages: Dict[int, Message] = {}
        self._next_message_id = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """Number of processes in the execution."""
        return len(self._histories)

    @property
    def processes(self) -> range:
        """The process ids ``0 .. n-1``."""
        return range(self.num_processes)

    def checkpoint_base(self, pid: int) -> int:
        """Index of the first checkpoint event of ``pid`` recorded in this log.

        0 for full records; greater for logs whose prefix was pruned away.
        """
        return self._checkpoint_bases[pid]

    @property
    def checkpoint_bases(self) -> Tuple[int, ...]:
        """Per-process first recorded checkpoint index (all zero when unpruned)."""
        return tuple(self._checkpoint_bases)

    def grow_to(self, num_processes: int) -> None:
        """Extend the execution to a larger process capacity (membership join).

        New processes start with empty histories and a zero checkpoint base;
        existing events, messages and bases are untouched, so every previously
        derived fact stays valid.
        """
        if num_processes < self.num_processes:
            raise ValueError(
                f"cannot shrink the log from {self.num_processes} to "
                f"{num_processes} processes"
            )
        for pid in range(self.num_processes, num_processes):
            self._histories.append(ProcessHistory(pid))
            self._checkpoint_bases.append(0)

    def history(self, pid: int) -> ProcessHistory:
        """The event history of process ``pid``."""
        return self._histories[pid]

    def histories(self) -> Sequence[ProcessHistory]:
        """All process histories, indexed by pid."""
        return tuple(self._histories)

    def event(self, event_id: EventId) -> Event:
        """The event identified by ``event_id``."""
        return self._histories[event_id.pid][event_id.seq]

    def events(self) -> Iterator[Event]:
        """Iterate over all events, grouped by process, in program order."""
        for history in self._histories:
            yield from history

    def total_events(self) -> int:
        """Total number of events across all processes."""
        return sum(len(h) for h in self._histories)

    def messages(self) -> List[Message]:
        """All registered messages (delivered or not), ordered by id."""
        return [self._messages[mid] for mid in sorted(self._messages)]

    def delivered_messages(self) -> List[Message]:
        """Messages that have both a send and a receive event."""
        return [m for m in self.messages() if m.delivered]

    def message(self, message_id: int) -> Message:
        """The message with id ``message_id``."""
        return self._messages[message_id]

    def has_message(self, message_id: int) -> bool:
        """True if a message with the given id was registered."""
        return message_id in self._messages

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_internal(self, pid: int, *, time: float = 0.0) -> Event:
        """Record an internal event at process ``pid``."""
        event = Event(
            pid=pid, seq=len(self._histories[pid]), kind=EventKind.INTERNAL, time=time
        )
        self._histories[pid].append(event)
        return event

    def add_checkpoint(
        self, pid: int, checkpoint_index: int, *, time: float = 0.0, forced: bool = False
    ) -> Event:
        """Record a checkpoint event at process ``pid``.

        Checkpoint indices must be taken in increasing order, starting at the
        process's checkpoint base (0 unless the log was pruned).
        """
        last = self._histories[pid].last_checkpoint_index()
        expected = self._checkpoint_bases[pid] if last < 0 else last + 1
        if checkpoint_index != expected:
            raise ValueError(
                f"process {pid}: expected checkpoint index {expected}, "
                f"got {checkpoint_index}"
            )
        event = Event(
            pid=pid,
            seq=len(self._histories[pid]),
            kind=EventKind.CHECKPOINT,
            checkpoint_index=checkpoint_index,
            time=time,
            forced=forced,
        )
        self._histories[pid].append(event)
        return event

    def add_send(
        self,
        sender: int,
        receiver: int,
        *,
        message_id: Optional[int] = None,
        time: float = 0.0,
    ) -> Tuple[Event, Message]:
        """Record the sending of a message from ``sender`` to ``receiver``.

        Returns the send event and the (not-yet-delivered) message record.
        """
        if receiver not in self.processes:
            raise ValueError(f"unknown receiver process {receiver}")
        if message_id is None:
            message_id = self._next_message_id
        if message_id in self._messages:
            raise ValueError(f"message id {message_id} already used")
        self._next_message_id = max(self._next_message_id, message_id + 1)
        event = Event(
            pid=sender,
            seq=len(self._histories[sender]),
            kind=EventKind.SEND,
            message_id=message_id,
            time=time,
        )
        self._histories[sender].append(event)
        message = Message(
            message_id=message_id,
            sender=sender,
            receiver=receiver,
            send_event=event.event_id,
        )
        self._messages[message_id] = message
        return event, message

    def add_receive(self, message_id: int, *, time: float = 0.0) -> Event:
        """Record the receipt of a previously sent message."""
        if message_id not in self._messages:
            raise ValueError(f"receive of unknown message {message_id}")
        message = self._messages[message_id]
        if message.delivered:
            raise ValueError(f"message {message_id} already received")
        pid = message.receiver
        event = Event(
            pid=pid,
            seq=len(self._histories[pid]),
            kind=EventKind.RECEIVE,
            message_id=message_id,
            time=time,
        )
        self._histories[pid].append(event)
        self._messages[message_id] = Message(
            message_id=message.message_id,
            sender=message.sender,
            receiver=message.receiver,
            send_event=message.send_event,
            receive_event=event.event_id,
        )
        return event

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def prefix(self, lengths: Sequence[int]) -> "EventLog":
        """Return a new :class:`EventLog` containing only a prefix per process.

        ``lengths[pid]`` gives the number of events of ``pid`` to keep.  The
        prefix need not be a consistent cut; messages whose receive event falls
        outside the prefix become undelivered, and messages whose *send* event
        falls outside are dropped entirely.
        """
        if len(lengths) != self.num_processes:
            raise ValueError("one prefix length per process is required")
        sub = EventLog(self.num_processes, checkpoint_bases=self._checkpoint_bases)
        kept_sends: Dict[int, EventId] = {}
        for pid in self.processes:
            length = lengths[pid]
            if not 0 <= length <= len(self._histories[pid]):
                raise ValueError(
                    f"invalid prefix length {length} for process {pid}"
                )
        # First pass: re-append events; sends register messages, receives are
        # deferred to a second pass so that cross-process ordering of the
        # original message ids is preserved.
        deferred_receives: List[Event] = []
        for pid in self.processes:
            for event in self._histories[pid].events[: lengths[pid]]:
                if event.kind is EventKind.SEND:
                    assert event.message_id is not None
                    kept_sends[event.message_id] = event.event_id
        for pid in self.processes:
            for event in self._histories[pid].events[: lengths[pid]]:
                if event.kind is EventKind.INTERNAL:
                    sub.add_internal(pid, time=event.time)
                elif event.kind is EventKind.CHECKPOINT:
                    assert event.checkpoint_index is not None
                    sub.add_checkpoint(
                        pid, event.checkpoint_index, time=event.time, forced=event.forced
                    )
                elif event.kind is EventKind.SEND:
                    assert event.message_id is not None
                    original = self._messages[event.message_id]
                    sub.add_send(
                        pid,
                        original.receiver,
                        message_id=event.message_id,
                        time=event.time,
                    )
                else:  # RECEIVE
                    deferred_receives.append(event)
        # Second pass: receives, in global order of (pid, seq) is fine because
        # add_receive only needs the send to exist.  Receives of dropped sends
        # would violate cut-closedness under program order only if the caller
        # passed a prefix where a receive is kept but its send is not; we keep
        # the receive as an INTERNAL placeholder in that case to preserve the
        # event numbering of the prefix.
        deferred_receives.sort(key=lambda e: (e.pid, e.seq))
        # add_receive appends at the end of the history, so replaying receives
        # out of their original position would corrupt per-process order.  We
        # rebuild instead: the loop above already appended all non-receive
        # events in order, which breaks ordering whenever a receive is not the
        # last event.  To keep this simple and correct we rebuild from scratch
        # below whenever any receive exists.
        if deferred_receives:
            return self._rebuild_prefix(lengths, kept_sends)
        return sub

    def _rebuild_prefix(
        self, lengths: Sequence[int], kept_sends: Dict[int, EventId]
    ) -> "EventLog":
        """Rebuild a prefix log preserving per-process event order exactly."""
        sub = EventLog(self.num_processes, checkpoint_bases=self._checkpoint_bases)
        # Replay events in an interleaving that respects message causality:
        # repeatedly pick a process whose next event is enabled (a receive is
        # enabled only once its send has been replayed).
        cursors = [0] * self.num_processes
        replayed_sends: Dict[int, int] = {}
        total = sum(lengths)
        replayed = 0
        while replayed < total:
            progressed = False
            for pid in self.processes:
                if cursors[pid] >= lengths[pid]:
                    continue
                event = self._histories[pid][cursors[pid]]
                if event.kind is EventKind.RECEIVE:
                    assert event.message_id is not None
                    if event.message_id not in replayed_sends:
                        # The send is either later in the replay or outside the
                        # prefix; in the latter case record an internal event
                        # placeholder so prefix lengths stay meaningful.
                        if event.message_id not in kept_sends:
                            sub.add_internal(pid, time=event.time)
                            cursors[pid] += 1
                            replayed += 1
                            progressed = True
                        continue
                    sub.add_receive(event.message_id, time=event.time)
                elif event.kind is EventKind.SEND:
                    assert event.message_id is not None
                    original = self._messages[event.message_id]
                    sub.add_send(
                        pid,
                        original.receiver,
                        message_id=event.message_id,
                        time=event.time,
                    )
                    replayed_sends[event.message_id] = pid
                elif event.kind is EventKind.CHECKPOINT:
                    assert event.checkpoint_index is not None
                    sub.add_checkpoint(
                        pid, event.checkpoint_index, time=event.time, forced=event.forced
                    )
                else:
                    sub.add_internal(pid, time=event.time)
                cursors[pid] += 1
                replayed += 1
                progressed = True
            if not progressed:
                raise ValueError(
                    "prefix is not replayable: a receive precedes its send "
                    "within the requested prefix"
                )
        return sub

    def suffix(
        self, starts: Sequence[int], *, checkpoint_bases: Sequence[int]
    ) -> "EventLog":
        """Drop a per-process event prefix, re-sequencing the remainder from 0.

        ``starts[pid]`` is the number of leading events of ``pid`` to discard;
        ``checkpoint_bases[pid]`` must be the index of the first checkpoint
        event that survives for ``pid`` (it becomes the new log's base).  The
        cut must be *send-closed*: a delivered message whose send event
        survives must also keep its receive event — obsolescence pruning
        guarantees this by weakening the cut to a consistent one first.
        Receives whose send was discarded are kept as INTERNAL placeholders so
        per-process event counts (and trace replay) stay meaningful; sends
        pending at the cut survive as undelivered messages.
        """
        if len(starts) != self.num_processes:
            raise ValueError("one suffix start per process is required")
        for pid in self.processes:
            if not 0 <= starts[pid] <= len(self._histories[pid]):
                raise ValueError(f"invalid suffix start {starts[pid]} for process {pid}")
        kept_sends = {
            message_id
            for message_id, message in self._messages.items()
            if message.send_event.seq >= starts[message.sender]
        }
        for message_id in kept_sends:
            message = self._messages[message_id]
            if (
                message.receive_event is not None
                and message.receive_event.seq < starts[message.receiver]
            ):
                raise ValueError(
                    f"suffix is not send-closed: message {message_id} keeps its "
                    "send but drops its receive"
                )
        sub = EventLog(self.num_processes, checkpoint_bases=checkpoint_bases)
        # Replay with the same enabled-event scheduler as _rebuild_prefix:
        # receives wait for their send unless the send was discarded, in which
        # case they degrade to INTERNAL placeholders immediately.
        cursors = list(starts)
        replayed_sends: Dict[int, int] = {}
        total = sum(len(self._histories[pid]) - starts[pid] for pid in self.processes)
        replayed = 0
        while replayed < total:
            progressed = False
            for pid in self.processes:
                if cursors[pid] >= len(self._histories[pid]):
                    continue
                event = self._histories[pid][cursors[pid]]
                if event.kind is EventKind.RECEIVE:
                    assert event.message_id is not None
                    if event.message_id not in replayed_sends:
                        if event.message_id not in kept_sends:
                            sub.add_internal(pid, time=event.time)
                            cursors[pid] += 1
                            replayed += 1
                            progressed = True
                        continue
                    sub.add_receive(event.message_id, time=event.time)
                elif event.kind is EventKind.SEND:
                    assert event.message_id is not None
                    original = self._messages[event.message_id]
                    sub.add_send(
                        pid,
                        original.receiver,
                        message_id=event.message_id,
                        time=event.time,
                    )
                    replayed_sends[event.message_id] = pid
                elif event.kind is EventKind.CHECKPOINT:
                    assert event.checkpoint_index is not None
                    sub.add_checkpoint(
                        pid, event.checkpoint_index, time=event.time, forced=event.forced
                    )
                else:
                    sub.add_internal(pid, time=event.time)
                cursors[pid] += 1
                replayed += 1
                progressed = True
            if not progressed:
                raise ValueError(
                    "suffix is not replayable: a receive precedes its send "
                    "within the requested suffix"
                )
        return sub

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventLog(processes={self.num_processes}, "
            f"events={self.total_events()}, messages={len(self._messages)})"
        )
