"""Classic vector clocks.

Vector clocks give a compact representation of Lamport's happened-before
relation: event ``e`` causally precedes ``e'`` iff ``VC(e) < VC(e')`` in the
componentwise order.  The library uses them as the ground-truth causal oracle
(:mod:`repro.causality.happens_before`) against which the paper's dependency
vectors (Equation 2) are property-tested.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence


class VectorClock:
    """An ``n``-entry vector clock.

    Instances are mutable; :meth:`copy` returns an independent clock.  All
    comparison helpers treat clocks of differing sizes as an error, because in
    this library the number of processes is fixed for an execution.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[int]) -> None:
        self._entries: List[int] = list(entries)
        if not self._entries:
            raise ValueError("a vector clock needs at least one entry")
        if any(v < 0 for v in self._entries):
            raise ValueError("vector clock entries must be non-negative")

    @classmethod
    def zeros(cls, num_processes: int) -> "VectorClock":
        """A clock of ``num_processes`` zero entries."""
        return cls([0] * num_processes)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> int:
        return self._entries[index]

    def __setitem__(self, index: int, value: int) -> None:
        if value < 0:
            raise ValueError("vector clock entries must be non-negative")
        self._entries[index] = value

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    def as_tuple(self) -> tuple:
        """The entries as an immutable tuple."""
        return tuple(self._entries)

    def copy(self) -> "VectorClock":
        """An independent copy of this clock."""
        return VectorClock(self._entries)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def tick(self, pid: int) -> None:
        """Advance the local component of process ``pid`` by one."""
        self._entries[pid] += 1

    def merge(self, other: Sequence[int]) -> None:
        """Componentwise maximum with ``other`` (message receipt rule)."""
        if len(other) != len(self._entries):
            raise ValueError("cannot merge vector clocks of different sizes")
        for i, value in enumerate(other):
            if value > self._entries[i]:
                self._entries[i] = value

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def _check_size(self, other: "VectorClock") -> None:
        if len(other) != len(self._entries):
            raise ValueError("cannot compare vector clocks of different sizes")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(tuple(self._entries))

    def dominates(self, other: "VectorClock") -> bool:
        """True if every entry of ``self`` is >= the corresponding entry."""
        self._check_size(other)
        return all(a >= b for a, b in zip(self._entries, other._entries))

    def happened_before(self, other: "VectorClock") -> bool:
        """True if ``self < other`` in the strict componentwise order."""
        self._check_size(other)
        return other.dominates(self) and self._entries != other._entries

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True if neither clock happened before the other."""
        return not self.happened_before(other) and not other.happened_before(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorClock({self._entries})"
