"""Ground-truth happened-before oracle over an :class:`EventLog`.

Definition 1 of the paper (Lamport's causal precedence): ``e_a^alpha -> e_b^beta``
iff one of

* same process and ``beta = alpha + 1`` (program order, transitively any later
  event of the same process);
* ``e_a^alpha`` is the send of a message and ``e_b^beta`` its receive;
* transitivity.

The oracle assigns every event a vector timestamp using the standard vector
clock rules and answers precedence queries in ``O(1)`` afterwards.  It serves
as the independent ground truth against which dependency-vector based
reasoning (Equation 2) is property-tested, and as the engine behind
recovery-line and obsolescence computations on arbitrary CCPs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.causality.events import Event, EventId, EventKind, EventLog
from repro.causality.vector_clock import VectorClock


class CausalOrder:
    """Causal (happened-before) order of the events of an :class:`EventLog`.

    The constructor performs a single replay of the log, assigning each event
    a vector timestamp.  The replay requires that each receive event's send is
    replayable before it, which holds for every log produced by the simulator
    and the CCP builder; a log violating this is rejected.

    The replay state (per-process cursors and clocks, piggybacked send
    clocks) is retained, so an order built over a *growing* log can be kept
    current with :meth:`refresh`: only events appended since the last
    replay are timestamped, which is what makes the simulation trace
    recorder's live CCP incremental instead of quadratic over a run.
    """

    def __init__(self, log: EventLog) -> None:
        self._log = log
        self._timestamps: Dict[EventId, VectorClock] = {}
        n = log.num_processes
        self._cursors = [0] * n
        self._clocks = [VectorClock.zeros(n) for _ in range(n)]
        self._send_clocks: Dict[int, VectorClock] = {}
        self.refresh()

    @property
    def log(self) -> EventLog:
        """The event log this order was built from."""
        return self._log

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Timestamp every event appended to the log since the last replay.

        Idempotent; a no-op when the order is already current.  Raises
        ``ValueError`` if the new suffix is not causally replayable (a receive
        whose send never appears).
        """
        cursors = self._cursors
        clocks = self._clocks
        send_clocks = self._send_clocks
        remaining = self._log.total_events() - len(self._timestamps)
        while remaining > 0:
            progressed = False
            for pid in self._log.processes:
                history = self._log.history(pid)
                while cursors[pid] < len(history):
                    event = history[cursors[pid]]
                    if event.kind is EventKind.RECEIVE:
                        assert event.message_id is not None
                        if event.message_id not in send_clocks:
                            break  # wait for the send to be replayed
                        # A message is received at most once (the log enforces
                        # it), so its send clock is dead after this merge; pop
                        # to keep the retained state bounded by in-flight
                        # messages rather than all messages ever sent.
                        clocks[pid].merge(send_clocks.pop(event.message_id))
                    clocks[pid].tick(pid)
                    if event.kind is EventKind.SEND:
                        assert event.message_id is not None
                        send_clocks[event.message_id] = clocks[pid].copy()
                    self._timestamps[event.event_id] = clocks[pid].copy()
                    cursors[pid] += 1
                    remaining -= 1
                    progressed = True
            if not progressed and remaining > 0:
                raise ValueError(
                    "event log is not causally replayable: some receive has no "
                    "matching send before it"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def timestamp(self, event: EventId | Event) -> VectorClock:
        """The vector timestamp assigned to ``event``."""
        event_id = event.event_id if isinstance(event, Event) else event
        return self._timestamps[event_id]

    def precedes(self, first: EventId | Event, second: EventId | Event) -> bool:
        """True iff ``first -> second`` (strict causal precedence)."""
        first_id = first.event_id if isinstance(first, Event) else first
        second_id = second.event_id if isinstance(second, Event) else second
        if first_id == second_id:
            return False
        ts_first = self._timestamps[first_id]
        ts_second = self._timestamps[second_id]
        # e -> e' iff ts(e)[e.pid] <= ts(e')[e.pid] and e != e' (standard VC fact),
        # but for events of the same process program order is simply seq order.
        if first_id.pid == second_id.pid:
            return first_id.seq < second_id.seq
        return ts_first[first_id.pid] <= ts_second[first_id.pid]

    def concurrent(self, first: EventId | Event, second: EventId | Event) -> bool:
        """True iff neither event causally precedes the other."""
        return not self.precedes(first, second) and not self.precedes(second, first)

    def causal_past(self, event: EventId | Event) -> List[EventId]:
        """All events that causally precede ``event`` (excluding itself)."""
        target = event.event_id if isinstance(event, Event) else event
        past: List[EventId] = []
        for other in self._log.events():
            if other.event_id != target and self.precedes(other.event_id, target):
                past.append(other.event_id)
        return past

    def latest_checkpoint_known(self, event: EventId | Event, pid: int) -> Optional[int]:
        """Index of the latest checkpoint of ``pid`` in the causal past of ``event``.

        Returns ``None`` if no checkpoint of ``pid`` causally precedes the
        event.  A process's own checkpoints at or before the event count as
        known (program order).
        """
        target = event.event_id if isinstance(event, Event) else event
        best: Optional[int] = None
        for other in self._log.history(pid).checkpoint_events():
            if other.event_id == target or self.precedes(other.event_id, target):
                index = other.checkpoint_index
                assert index is not None
                if best is None or index > best:
                    best = index
        return best
