"""repro — a reproduction of "Optimal Asynchronous Garbage Collection for RDT
Checkpointing Protocols" (Schmidt, Garcia, Pedone, Buzato; ICDCS 2005).

The package implements the paper's contribution — the RDT-LGC asynchronous
garbage collector, its recovery-session variant and the merged FDAS
implementation — together with every substrate it needs: causal ordering and
dependency vectors, checkpoint-and-communication patterns with zigzag-path
analysis and the RDT property, communication-induced checkpointing protocols,
rollback-recovery, baseline garbage collectors and a deterministic
discrete-event simulator used for the empirical evaluation.

Quick start::

    from repro import SimulationConfig, SimulationRunner, UniformRandomWorkload

    config = SimulationConfig(
        num_processes=4,
        duration=200.0,
        workload=UniformRandomWorkload(),
        protocol="fdas",
        collector="rdt-lgc",
        audit="full",
    )
    result = SimulationRunner(config).run()
    print(result.summary())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced figure and claim.
"""

from repro.causality import (
    CausalOrder,
    Cut,
    DependencyVector,
    Event,
    EventId,
    EventKind,
    EventLog,
    VectorClock,
)
from repro.ccp import (
    CCP,
    AnalysisCache,
    BruteForceZigzagAnalysis,
    CCPBuilder,
    Checkpoint,
    CheckpointId,
    CheckpointKind,
    GlobalCheckpoint,
    RollbackDependencyGraph,
    ZigzagAnalysis,
    check_rdt,
    is_consistent_global_checkpoint,
    max_consistent_global_checkpoint,
    min_consistent_global_checkpoint,
)
from repro.core import (
    FdasWithRdtLgc,
    GcAudit,
    RdtLgc,
    audit_garbage_collection,
    needless_stable_checkpoints,
    obsolete_stable_checkpoints_corollary1,
    obsolete_stable_checkpoints_theorem1,
    obsolete_stable_checkpoints_theorem2,
)
from repro.gc import available_collectors, make_collector
from repro.protocols import available_protocols, make_protocol
from repro.recovery import RecoveryManager, recovery_line
from repro.simulation import (
    ClientServerWorkload,
    FailureSchedule,
    NetworkConfig,
    PipelineWorkload,
    RingWorkload,
    ScriptedWorkload,
    SimulationConfig,
    SimulationResult,
    SimulationRunner,
    UniformRandomWorkload,
    WorstCaseWorkload,
)
from repro.storage import StableStorage

__version__ = "1.0.0"

__all__ = [
    "AnalysisCache",
    "BruteForceZigzagAnalysis",
    "CCP",
    "CCPBuilder",
    "CausalOrder",
    "Checkpoint",
    "CheckpointId",
    "CheckpointKind",
    "ClientServerWorkload",
    "Cut",
    "DependencyVector",
    "Event",
    "EventId",
    "EventKind",
    "EventLog",
    "FailureSchedule",
    "FdasWithRdtLgc",
    "GcAudit",
    "GlobalCheckpoint",
    "NetworkConfig",
    "PipelineWorkload",
    "RdtLgc",
    "RecoveryManager",
    "RingWorkload",
    "RollbackDependencyGraph",
    "ScriptedWorkload",
    "SimulationConfig",
    "SimulationResult",
    "SimulationRunner",
    "StableStorage",
    "UniformRandomWorkload",
    "VectorClock",
    "WorstCaseWorkload",
    "ZigzagAnalysis",
    "audit_garbage_collection",
    "available_collectors",
    "available_protocols",
    "check_rdt",
    "is_consistent_global_checkpoint",
    "make_collector",
    "make_protocol",
    "max_consistent_global_checkpoint",
    "min_consistent_global_checkpoint",
    "needless_stable_checkpoints",
    "obsolete_stable_checkpoints_corollary1",
    "obsolete_stable_checkpoints_theorem1",
    "obsolete_stable_checkpoints_theorem2",
    "recovery_line",
    "__version__",
]
