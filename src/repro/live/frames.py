"""Wire encodings of the live backend.

Two channels, two encodings:

* **Control plane** (coordinator ⟷ worker, TCP): length-prefixed JSON
  frames — a 4-byte big-endian length followed by a compact JSON object.
  The prefix gives unambiguous message boundaries on a byte stream; JSON
  keeps the protocol greppable in a packet dump and needs no third-party
  codec (the container bakes in the stdlib only).
* **Data plane** (worker ⟷ worker, UDP): one JSON object per datagram —
  UDP preserves message boundaries, so no prefix is needed.

Collector control payloads are arbitrary Python objects (the coordinated
baselines exchange tuples and dataclasses); they cross the wire pickled and
base64-wrapped so JSON transport cannot silently change their types (JSON
would turn tuples into lists).  Both ends of every link run the same code
from the same checkout on the same machine, so the usual pickle caveats do
not apply.
"""

from __future__ import annotations

import base64
import json
import pickle
import struct
from typing import Any, Dict, Optional

import asyncio

_LENGTH = struct.Struct(">I")

#: Refuse absurd frame lengths (a desynchronised stream, not a real frame).
MAX_FRAME = 16 * 1024 * 1024


def encode_frame(document: Dict[str, Any]) -> bytes:
    """Encode one control-plane frame (length prefix + compact JSON)."""
    payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one control-plane frame; ``None`` on a clean or torn EOF.

    A SIGKILLed peer tears the stream mid-frame; the coordinator treats
    that exactly like a clean close (the process is gone either way).
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME:
        raise ValueError(f"frame length {length} exceeds the {MAX_FRAME} cap")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    document = json.loads(payload.decode("utf-8"))
    if not isinstance(document, dict):
        raise ValueError("control frames must be JSON objects")
    return document


def send_frame(writer: asyncio.StreamWriter, document: Dict[str, Any]) -> None:
    """Queue one control-plane frame on ``writer`` (flushed by the loop)."""
    writer.write(encode_frame(document))


def encode_datagram(document: Dict[str, Any]) -> bytes:
    """Encode one data-plane datagram (compact JSON, one object per packet)."""
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def decode_datagram(data: bytes) -> Dict[str, Any]:
    """Decode one data-plane datagram."""
    document = json.loads(data.decode("utf-8"))
    if not isinstance(document, dict):
        raise ValueError("datagrams must be JSON objects")
    return document


def pack_payload(payload: Any) -> str:
    """Encode an arbitrary control payload for JSON transport."""
    return base64.b64encode(pickle.dumps(payload)).decode("ascii")


def unpack_payload(encoded: str) -> Any:
    """Decode a :func:`pack_payload` value."""
    return pickle.loads(base64.b64decode(encoded.encode("ascii")))
