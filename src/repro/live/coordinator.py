"""The live run coordinator: rendezvous, failure injection, shard merge.

:func:`run_live` executes one :class:`~repro.simulation.runner.SimulationConfig`
on real OS processes:

1. **Rendezvous** — a TCP server on an ephemeral localhost port; one worker
   subprocess per logical process connects, reports its UDP data-plane
   port, receives the full run configuration (including its slice of the
   workload's action script, generated here from the config seed exactly
   like the simulation runner generates it) and the complete peer address
   map, and blocks on the start barrier.
2. **Failure injection** — the config's
   :class:`~repro.simulation.failures.FailureSchedule` maps to wall time
   through the time scale; at each crash instant the target worker is
   SIGKILLed mid-flight.  The coordinator then plays the paper's
   centralized recovery manager (Section 2.4) *for real*: it pauses the
   survivors, snapshots their volatile dependency vectors, reconstructs
   the global CCP by merging every shard written so far, computes the
   recovery line with the very same :class:`~repro.recovery.manager.RecoveryManager`
   the simulator uses, pushes rollback directives to the survivors,
   respawns the crashed process with its stable storage rebuilt from its
   own durable shard, and resumes the system in a new epoch.
3. **Merge** — after the stop barrier, every incarnation's shard is merged
   into a single v2 traceio artifact (:mod:`repro.live.merge`) with the
   recovery plans applied at their epoch boundaries, so ``traceio verify``,
   ``traceio inspect``, replay and the Theorem-4 oracles consume live runs
   exactly like simulated ones.

Counter semantics: event counters (sends, deliveries, duplicates,
checkpoints) are derived from the shards and are exact even across
SIGKILLs; environment counters that only lived in a killed process's
memory (its sampled message losses, control sends) are summed from the
surviving incarnations' final reports — the one place live metrics are
approximate where simulated ones are exact.
"""

from __future__ import annotations

import asyncio
import os
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.optimality import audit_garbage_collection
from repro.recovery.manager import RecoveryManager
from repro.recovery.rollback_plan import RollbackPlan
from repro.simulation.runner import (
    AuditRecord,
    RecoveryRecord,
    SimulationConfig,
    SimulationResult,
)
from repro.simulation.workloads import ActionKind
from repro.traceio.format import RunProvenance, make_header
from repro.traceio.writer import TraceWriter

from repro.live.frames import read_frame, send_frame
from repro.live.merge import (
    StorageMirror,
    ordered_entries,
    replay_entries,
    shard_counters,
)
from repro.live.shard import read_shard


@dataclass(frozen=True)
class LiveOptions:
    """Knobs of the live execution environment (not of the experiment)."""

    #: Wall seconds per simulated time unit.  The default keeps channel
    #: latencies (~1 simulated unit) well above loopback jitter while a
    #: duration-30 run still finishes in under a second of active time.
    time_scale: float = 0.02
    #: Wall seconds of slack after the nominal duration before the stop
    #: barrier (lets final in-flight datagrams land).
    grace: float = 0.25
    #: Handshake timeout (wall seconds) for every worker reply.
    handshake_timeout: float = 30.0
    #: Where shard files go; default is ``<trace_path>.shards/``.
    shard_dir: Optional[str] = None


@dataclass
class LiveRunResult:
    """Everything :func:`run_live` produces."""

    result: SimulationResult
    trace_path: str
    shard_paths: List[str] = field(default_factory=list)


class _Worker:
    """Coordinator-side handle of one worker process (one incarnation)."""

    def __init__(
        self,
        pid: int,
        proc: "asyncio.subprocess.Process",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        udp_port: int,
        incarnation: int,
    ) -> None:
        self.pid = pid
        self.proc = proc
        self.reader = reader
        self.writer = writer
        self.udp_port = udp_port
        self.incarnation = incarnation

    async def send(self, frame: Dict[str, Any]) -> None:
        send_frame(self.writer, frame)
        await self.writer.drain()

    async def expect(self, kind: str, timeout: float) -> Dict[str, Any]:
        frame = await asyncio.wait_for(read_frame(self.reader), timeout)
        if frame is None or frame.get("type") != kind:
            raise RuntimeError(
                f"worker {self.pid}: expected {kind!r} frame, got "
                f"{None if frame is None else frame.get('type')!r}"
            )
        return frame


class LiveCoordinator:
    """One live execution of one configuration."""

    def __init__(
        self,
        config: SimulationConfig,
        options: LiveOptions,
        trace_path: str,
        shard_dir: str,
    ) -> None:
        if config.num_processes < 2:
            raise ValueError("a live run needs at least two processes")
        self._config = config
        self._options = options
        self._trace_path = trace_path
        self._shard_dir = shard_dir
        self._workers: Dict[int, _Worker] = {}
        self._incarnations: Dict[int, int] = {}
        self._shard_paths: List[str] = []
        self._plans: Dict[int, RollbackPlan] = {}
        self._recoveries: List[RecoveryRecord] = []
        self._epoch = 0
        self._origin = 0.0
        self._pause_accumulated = 0.0
        self._hello_queue: (
            "asyncio.Queue[Tuple[asyncio.StreamReader, asyncio.StreamWriter, Dict[str, Any]]]"
        ) = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._actions_by_pid: Dict[int, List[List[Any]]] = {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    async def run(self) -> LiveRunResult:
        """Execute the configured run; always reaps the worker processes."""
        loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_connection, "127.0.0.1", 0
        )
        port = self._server.sockets[0].getsockname()[1]
        self._generate_actions()
        try:
            await self._spawn_all(port)
            await self._init_all()
            self._origin = loop.time()
            await self._broadcast({"type": "go", "at_virtual_time": 0.0})
            await self._drive_failures(port)
            reports = await self._stop_all()
            return self._merge(reports)
        finally:
            self._server.close()
            for worker in self._workers.values():
                if worker.proc.returncode is None:
                    worker.proc.kill()
            await asyncio.gather(
                *(w.proc.wait() for w in self._workers.values()),
                return_exceptions=True,
            )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _generate_actions(self) -> None:
        import random

        config = self._config
        actions = config.workload.generate(
            config.num_processes, config.duration, random.Random(config.seed)
        )
        by_pid: Dict[int, List[List[Any]]] = {
            pid: [] for pid in range(config.num_processes)
        }
        for action in actions:
            by_pid[action.pid].append(
                [
                    action.time,
                    action.kind.value,
                    action.target if action.kind is ActionKind.SEND else None,
                ]
            )
        self._actions_by_pid = by_pid

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        frame = await read_frame(reader)
        if frame is None or frame.get("type") != "hello":
            writer.close()
            return
        await self._hello_queue.put((reader, writer, frame))

    def _shard_path(self, pid: int, incarnation: int) -> str:
        return os.path.join(
            self._shard_dir, f"worker-{pid}-i{incarnation}.shard.jsonl"
        )

    async def _spawn_one(self, port: int, pid: int, incarnation: int) -> _Worker:
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        proc = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.live.worker",
            "--port",
            str(port),
            "--pid",
            str(pid),
            env=env,
        )
        reader, writer, hello = await asyncio.wait_for(
            self._hello_queue.get(), self._options.handshake_timeout
        )
        if int(hello["pid"]) != pid:
            raise RuntimeError(
                f"rendezvous expected worker {pid}, got {hello['pid']}"
            )
        worker = _Worker(
            pid, proc, reader, writer, int(hello["udp_port"]), incarnation
        )
        self._workers[pid] = worker
        self._incarnations[pid] = incarnation
        self._shard_paths.append(self._shard_path(pid, incarnation))
        return worker

    async def _spawn_all(self, port: int) -> None:
        # Spawned sequentially so hello frames map to pids unambiguously
        # even though hellos arrive on a shared queue.
        for pid in range(self._config.num_processes):
            await self._spawn_one(port, pid, incarnation=0)

    def _peer_map(self) -> Dict[str, int]:
        return {str(pid): worker.udp_port for pid, worker in self._workers.items()}

    def _init_frame(
        self, pid: int, *, lamport_floor: int = 0, restore: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        config = self._config
        crash_floor = self._recoveries[-1].time if restore is not None else None
        actions = self._actions_by_pid.get(pid, [])
        if crash_floor is not None:
            actions = [action for action in actions if action[0] > crash_floor]
        return {
            "type": "init",
            "num_processes": config.num_processes,
            "seed": config.seed,
            "protocol": config.protocol,
            "collector": config.collector,
            "collector_options": dict(config.collector_options),
            "network": config.network.describe(),
            "time_scale": self._options.time_scale,
            "duration": config.duration,
            "actions": actions,
            "shard_path": self._shard_path(pid, self._incarnations[pid]),
            "epoch": self._epoch,
            "incarnation": self._incarnations[pid],
            "lamport_floor": lamport_floor,
            "peers": self._peer_map(),
            "restore": restore,
        }

    async def _init_all(self) -> None:
        for pid, worker in sorted(self._workers.items()):
            await worker.send(self._init_frame(pid))
        await asyncio.gather(
            *(
                worker.expect("ready", self._options.handshake_timeout)
                for worker in self._workers.values()
            )
        )

    async def _broadcast(self, frame: Dict[str, Any]) -> None:
        for worker in self._workers.values():
            await worker.send(frame)

    # ------------------------------------------------------------------
    # Virtual time (coordinator view)
    # ------------------------------------------------------------------
    def _vnow(self) -> float:
        loop = asyncio.get_running_loop()
        return (
            loop.time() - self._origin - self._pause_accumulated
        ) / self._options.time_scale

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    async def _drive_failures(self, port: int) -> None:
        crashes = sorted(self._config.failures, key=lambda crash: crash.time)
        for crash in crashes:
            if crash.time >= self._config.duration:
                continue
            delay = (crash.time - self._vnow()) * self._options.time_scale
            if delay > 0:
                await asyncio.sleep(delay)
            await self._crash_and_recover(port, crash.pid, crash.time)
        remaining = (
            self._config.duration - self._vnow()
        ) * self._options.time_scale + self._options.grace
        if remaining > 0:
            await asyncio.sleep(remaining)

    async def _crash_and_recover(
        self, port: int, pid: int, crash_time: float
    ) -> None:
        loop = asyncio.get_running_loop()
        options = self._options
        victim = self._workers[pid]
        victim.proc.kill()
        await victim.proc.wait()
        victim.writer.close()
        pause_started = loop.time()
        vtime = (pause_started - self._origin - self._pause_accumulated) / options.time_scale

        survivors = [w for p, w in sorted(self._workers.items()) if p != pid]
        for worker in survivors:
            await worker.send({"type": "pause"})
        paused = await asyncio.gather(
            *(w.expect("paused", options.handshake_timeout) for w in survivors)
        )

        # Reconstruct the global state from the durable shards: the CCP for
        # the recovery-line computation and the storage mirror the crashed
        # process's respawn restores from.
        shards = [read_shard(path) for path in self._shard_paths]
        mirror = StorageMirror(self._config.num_processes)
        recorder = replay_entries(
            ordered_entries(shards),
            self._config.num_processes,
            plans=self._plans,
            mirror=mirror,
        )
        volatile = {int(r["pid"]): tuple(int(v) for v in r["dv"]) for r in paused}
        ccp = recorder.ccp(volatile_dvs=volatile)
        plan = RecoveryManager().plan(ccp, [pid])
        lost = sum(
            ccp.volatile_index(p) - plan.recovery_line.indices[p]
            for p in range(self._config.num_processes)
        )

        collected = 0
        for worker in survivors:
            directive = plan.rollback_for(worker.pid)
            if directive is not None:
                await worker.send(
                    {
                        "type": "rollback",
                        "rollback_index": directive.rollback_index,
                        "last_interval_vector": list(plan.last_interval_vector),
                    }
                )
                ack = await worker.expect("rolled_back", options.handshake_timeout)
            else:
                await worker.send(
                    {
                        "type": "peer_rollback",
                        "last_interval_vector": list(plan.last_interval_vector),
                    }
                )
                ack = await worker.expect("peer_rolled_back", options.handshake_timeout)
            collected += int(ack["collected"])

        directive = plan.rollback_for(pid)
        if directive is None:  # pragma: no cover - the faulty process always rolls back
            raise RuntimeError(f"recovery plan has no rollback for faulty process {pid}")
        restore = mirror.restore_spec(
            pid, directive.rollback_index, plan.last_interval_vector
        )
        lamport_floor = 1 + max(
            [entry.lamport for shard in shards for entry in shard.entries]
            + [int(r["lamport"]) for r in paused],
            default=0,
        )

        self._recoveries.append(
            RecoveryRecord(
                time=crash_time,
                faulty=(pid,),
                recovery_line=plan.recovery_line.indices,
                rolled_back_processes=len(plan.rollbacks),
                lost_general_checkpoints=lost,
                collected_during_recovery=collected,
            )
        )
        self._plans[self._epoch] = plan
        self._epoch += 1
        self._incarnations[pid] += 1

        respawned = await self._spawn_one(port, pid, self._incarnations[pid])
        await respawned.send(
            self._init_frame(pid, lamport_floor=lamport_floor, restore=restore)
        )
        ready = await respawned.expect("ready", options.handshake_timeout)
        collected += int(ready.get("collected", 0))
        # Patch the recorded session with the respawn's restore eliminations.
        self._recoveries[-1] = RecoveryRecord(
            time=crash_time,
            faulty=(pid,),
            recovery_line=plan.recovery_line.indices,
            rolled_back_processes=len(plan.rollbacks),
            lost_general_checkpoints=lost,
            collected_during_recovery=collected,
        )

        peers = self._peer_map()
        for worker in survivors:
            await worker.send(
                {
                    "type": "resume",
                    "epoch": self._epoch,
                    "peers": peers,
                    "lamport_floor": lamport_floor,
                    "at_virtual_time": vtime,
                }
            )
        await respawned.send(
            {"type": "go", "at_virtual_time": vtime, "restored": True}
        )
        self._pause_accumulated += loop.time() - pause_started

    # ------------------------------------------------------------------
    # Shutdown and merge
    # ------------------------------------------------------------------
    async def _stop_all(self) -> Dict[int, Dict[str, Any]]:
        await self._broadcast({"type": "stop"})
        finals = await asyncio.gather(
            *(
                worker.expect("final", self._options.handshake_timeout)
                for worker in self._workers.values()
            )
        )
        await asyncio.gather(
            *(worker.proc.wait() for worker in self._workers.values())
        )
        return {int(report["pid"]): report for report in finals}

    def _merge(self, reports: Dict[int, Dict[str, Any]]) -> LiveRunResult:
        config = self._config
        n = config.num_processes
        shards = [read_shard(path) for path in self._shard_paths]
        counters = shard_counters(shards)
        live_fields: Dict[str, Any] = {
            "time_scale": self._options.time_scale,
            "processes": n,
            "epochs": self._epoch + 1,
            "incarnations": [self._incarnations[pid] + 1 for pid in range(n)],
            "retained": [list(reports[pid]["retained_indices"]) for pid in range(n)],
        }
        if config.trace_meta:
            # Campaign (or other driver) provenance wins the meta shape; the
            # live parameters ride along under a key from_meta ignores.
            meta = dict(config.trace_meta)
            meta["live_backend"] = live_fields
        else:
            meta = RunProvenance.live_run(**live_fields).to_meta()
        writer = TraceWriter(self._trace_path, header=make_header(config, meta=meta))
        try:
            recorder = replay_entries(
                ordered_entries(shards), n, plans=self._plans, sink=writer
            )
            result = self._build_result(recorder, reports, counters)
            writer.finalize(
                result,
                final_volatile_dvs=[list(reports[pid]["dv"]) for pid in range(n)],
            )
        except BaseException as exc:
            if not writer.closed:
                writer.abort(f"{type(exc).__name__}: {exc}")
            raise
        return LiveRunResult(
            result=result,
            trace_path=self._trace_path,
            shard_paths=list(self._shard_paths),
        )

    def _build_result(
        self,
        recorder: Any,
        reports: Dict[int, Dict[str, Any]],
        counters: Dict[str, int],
    ) -> SimulationResult:
        config = self._config
        n = config.num_processes
        audits: List[AuditRecord] = []
        if config.audit != "off":
            volatile = {pid: tuple(int(v) for v in reports[pid]["dv"]) for pid in range(n)}
            ccp = recorder.ccp(volatile_dvs=volatile)
            retained = {
                pid: [int(i) for i in reports[pid]["retained_indices"]]
                for pid in range(n)
            }
            audit = audit_garbage_collection(
                ccp, retained, require_optimality=config.audit == "full"
            )
            audits.append(
                AuditRecord(
                    time=config.duration,
                    label="final",
                    is_safe=audit.is_safe,
                    is_optimal=audit.is_optimal,
                    safety_violations=len(audit.safety_violations),
                    optimality_violations=len(audit.optimality_violations),
                )
            )

        def summed(key: str) -> int:
            return sum(int(reports[pid]["stats"][key]) for pid in range(n))

        return SimulationResult(
            config=config,
            protocol=config.protocol,
            collector=config.collector,
            duration=config.duration,
            basic_checkpoints=counters["basic_checkpoints"],
            forced_checkpoints=counters["forced_checkpoints"],
            messages_sent=counters["sent"],
            messages_delivered=counters["delivered"],
            messages_dropped=summed("app_dropped"),
            messages_duplicated=counters["duplicates"],
            messages_blocked_by_partition=summed("app_blocked_by_partition"),
            control_messages=summed("control_sent"),
            total_collected=sum(
                int(reports[pid]["total_eliminated"]) for pid in range(n)
            ),
            retained_final=tuple(
                len(reports[pid]["retained_indices"]) for pid in range(n)
            ),
            max_retained_per_process=tuple(
                int(reports[pid]["max_retained"]) for pid in range(n)
            ),
            total_stored=sum(int(reports[pid]["total_stored"]) for pid in range(n)),
            samples=[],
            recoveries=list(self._recoveries),
            audits=audits,
        )


def run_live(
    config: SimulationConfig, options: Optional[LiveOptions] = None
) -> LiveRunResult:
    """Run ``config`` on the live backend (blocking; own asyncio loop).

    The merged artifact goes to ``config.trace_path`` when set, otherwise to
    a fresh temporary directory (the returned :class:`LiveRunResult` names
    it); shards sit next to it.  A failed UDP/TCP bind is retried once with
    a fresh ephemeral port before giving up — CI runners occasionally race
    on the loopback port space.
    """
    options = options or LiveOptions()
    trace_path = config.trace_path
    if trace_path is None:
        trace_path = os.path.join(
            tempfile.mkdtemp(prefix="repro-live-"), "live.trace.jsonl"
        )
    shard_dir = options.shard_dir or trace_path + ".shards"
    os.makedirs(shard_dir, exist_ok=True)
    attempts = 0
    while True:
        coordinator = LiveCoordinator(config, options, trace_path, shard_dir)
        try:
            return asyncio.run(coordinator.run())
        except OSError:
            attempts += 1
            if attempts > 1:
                raise
