"""Per-worker trace shards: the durable half of the live trace pipeline.

Each worker incarnation streams every occurrence it observes to its own
shard file — JSONL, one record per line, flushed before the occurrence has
any external effect (in particular a send is durable *before* its datagram
leaves the socket, so across the whole system a recorded receive always has
a recorded send).  The coordinator merges the shards into one v2
:mod:`repro.traceio` artifact (:mod:`repro.live.merge`).

Shard lines:

* **header** (first line, object): ``{"shard": 1, "pid", "num_processes",
  "epoch", "incarnation"}``;
* **records** (arrays): ``[epoch, lamport, <traceio body record>]`` — the
  inner record uses exactly the v2 tags/arities of
  :mod:`repro.traceio.format`, plus the shard-only tag ``"e"``
  (``[“e”, pid, index]``, a collector elimination — consumed by the
  coordinator's storage reconstruction, never emitted into the artifact);
* **footer** (object): ``{"shard_footer": {"records", "lamport"}}`` —
  absent when the worker was SIGKILLed, which is normal, not damage.

``(epoch, lamport)`` is the merge key: the Lamport clock ticks on every
recorded occurrence and merges with the sender's clock on every datagram
receipt, so sorting all shards by ``(epoch, lamport, pid, seq)`` yields a
linearisation consistent with causality — every receive sorts after its
send, every process's own records stay in program order.

Reading tolerates truncation *at the end* (a torn final line from a
SIGKILL) but not structural damage before it — mirroring the traceio
reader's ``allow_partial`` contract.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.traceio.format import (
    TAG_CHECKPOINT,
    TAG_DUPLICATE,
    TAG_INTERNAL,
    TAG_RECEIVE,
    TAG_SEND,
    validate_record,
)

#: Shard-only record tag: a collector eliminated a stable checkpoint.
#: Never part of the merged artifact (eliminations are not trace events);
#: the coordinator replays them to reconstruct a crashed process's storage.
TAG_ELIMINATION = "e"

#: Shard format version (independent of the artifact format version).
SHARD_VERSION = 1


class ShardWriter:
    """Streams one worker incarnation's occurrences to a shard file.

    Implements the :class:`repro.transport.base.TraceRecorderPort` the node
    writes through, plus the Lamport-clock bookkeeping the merge key needs.
    Every line is flushed before the write returns; ``after_send`` (when
    set) fires *after* the send record is durable — the live transport uses
    it to put the datagram on the wire only once the send can no longer be
    lost from the recorded history.
    """

    def __init__(
        self,
        path: str,
        *,
        pid: int,
        num_processes: int,
        epoch: int = 0,
        incarnation: int = 0,
        lamport: int = 0,
    ) -> None:
        self._path = path
        self._pid = pid
        self._epoch = epoch
        self._lamport = lamport
        self._records = 0
        self._closed = False
        self.after_send: Optional[Callable[[int], None]] = None
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "w", encoding="utf-8")
        self._write_line(
            {
                "shard": SHARD_VERSION,
                "pid": pid,
                "num_processes": num_processes,
                "epoch": epoch,
                "incarnation": incarnation,
            }
        )

    # ------------------------------------------------------------------
    # Clock and epoch
    # ------------------------------------------------------------------
    @property
    def lamport(self) -> int:
        """The current Lamport clock value."""
        return self._lamport

    @property
    def epoch(self) -> int:
        """The current recovery epoch."""
        return self._epoch

    def merge_clock(self, observed: int) -> None:
        """Absorb a clock value carried by an incoming datagram."""
        if observed > self._lamport:
            self._lamport = observed

    def set_epoch(self, epoch: int, *, lamport_floor: int = 0) -> None:
        """Enter a new recovery epoch (after a coordinator resume)."""
        self._epoch = epoch
        self.merge_clock(lamport_floor)

    # ------------------------------------------------------------------
    # TraceRecorderPort
    # ------------------------------------------------------------------
    def record_send(
        self, sender: int, receiver: int, message_id: int, time: float
    ) -> None:
        """Record an application send; transmits the datagram once durable."""
        self._record([TAG_SEND, sender, receiver, message_id, time])
        if self.after_send is not None:
            self.after_send(message_id)

    def record_receive(self, message_id: int, time: float) -> None:
        """Record a first-copy delivery."""
        self._record([TAG_RECEIVE, message_id, time])

    def record_duplicate_receive(self, message_id: int, time: float) -> None:
        """Record a duplicate-copy delivery."""
        self._record([TAG_DUPLICATE, message_id, time])

    def record_checkpoint(
        self,
        pid: int,
        index: int,
        dependency_vector: Sequence[int],
        *,
        forced: bool,
        time: float,
    ) -> None:
        """Record a stable checkpoint with its stored dependency vector."""
        self._record(
            [
                TAG_CHECKPOINT,
                pid,
                index,
                1 if forced else 0,
                time,
                list(dependency_vector),
            ]
        )

    def record_internal(self, pid: int, time: float) -> None:
        """Record an internal event."""
        self._record([TAG_INTERNAL, pid, time])

    def record_elimination(self, pid: int, index: int) -> None:
        """Record a collector elimination (shard-only bookkeeping)."""
        self._record([TAG_ELIMINATION, pid, index])

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Write the shard footer and close (clean worker shutdown only)."""
        if self._closed:
            return
        self._write_line(
            {"shard_footer": {"records": self._records, "lamport": self._lamport}}
        )
        self._closed = True
        self._handle.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record(self, record: List[Any]) -> None:
        self._lamport += 1
        self._records += 1
        self._write_line([self._epoch, self._lamport, record])

    def _write_line(self, document: Any) -> None:
        self._handle.write(json.dumps(document, separators=(",", ":")) + "\n")
        # Flushed per line: a SIGKILLed worker leaves everything it observed.
        self._handle.flush()


@dataclass(frozen=True)
class ShardEntry:
    """One shard record with its full merge key."""

    epoch: int
    lamport: int
    pid: int
    seq: int
    record: Tuple[Any, ...]

    @property
    def sort_key(self) -> Tuple[int, int, int, int]:
        """The global merge order (see the module docstring)."""
        return (self.epoch, self.lamport, self.pid, self.seq)


@dataclass
class ShardData:
    """One parsed shard file."""

    path: str
    pid: int
    num_processes: int
    epoch: int
    incarnation: int
    entries: List[ShardEntry] = field(default_factory=list)
    #: True when the footer is present and its record count matches.
    complete: bool = False


def read_shard(path: str) -> ShardData:
    """Parse one shard file, tolerating a torn tail (SIGKILLed writer)."""
    header: Optional[dict] = None
    entries: List[ShardEntry] = []
    complete = False
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                parsed = json.loads(stripped)
            except json.JSONDecodeError:
                # A torn final line is the expected remnant of a SIGKILL;
                # torn *interior* lines would desynchronise json.loads on
                # the following line instead, so stopping here is safe.
                break
            if header is None:
                if not isinstance(parsed, dict) or parsed.get("shard") != SHARD_VERSION:
                    raise ValueError(f"{path}:{number}: not a live trace shard")
                header = parsed
                continue
            if isinstance(parsed, dict):
                footer = parsed.get("shard_footer")
                if not isinstance(footer, dict):
                    raise ValueError(f"{path}:{number}: unexpected shard object")
                complete = footer.get("records") == len(entries)
                break
            if not (isinstance(parsed, list) and len(parsed) == 3):
                raise ValueError(f"{path}:{number}: malformed shard record")
            epoch, lamport, record = parsed
            if not isinstance(record, list) or not record:
                raise ValueError(f"{path}:{number}: malformed shard record body")
            if record[0] == TAG_ELIMINATION:
                if len(record) != 3:
                    raise ValueError(f"{path}:{number}: malformed elimination record")
            else:
                validate_record(record, line=number, path=path)
            entries.append(
                ShardEntry(
                    epoch=int(epoch),
                    lamport=int(lamport),
                    pid=int(header["pid"]),
                    seq=len(entries),
                    record=tuple(record),
                )
            )
    if header is None:
        raise ValueError(f"{path}: empty shard file")
    return ShardData(
        path=path,
        pid=int(header["pid"]),
        num_processes=int(header["num_processes"]),
        epoch=int(header["epoch"]),
        incarnation=int(header.get("incarnation", 0)),
        entries=entries,
        complete=complete,
    )
