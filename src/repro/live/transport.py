"""The live backend's :class:`repro.transport.Transport`: UDP + virtual time.

One :class:`LiveTransport` runs inside each worker process and gives the
node exactly the contract :class:`repro.transport.SimTransport` gives it in
the simulator:

* ``now()`` — *virtual* time: scaled monotonic wall time since the
  coordinator's start barrier, frozen while the coordinator pauses the
  system for a recovery session.  One simulated time unit corresponds to
  ``time_scale`` wall seconds, so latencies, timer cadences and failure
  schedules keep the same units as the simulator.
* ``send_app_message`` — samples the message's fate from the *same*
  :class:`~repro.simulation.channels.ChannelModel` the simulator would use,
  with per-directed-link RNGs derived by the *same* seed construction
  (``sha256(seed:net:label:sender:receiver)``), then injects the fate
  physically: a loss never transmits, a duplicate transmits extra copies,
  a latency delays the actual ``sendto``.  Partition cuts and the FIFO
  discipline are honoured the same way.  The datagram leaves the socket
  only after the node has durably recorded the send in its shard
  (:attr:`repro.live.shard.ShardWriter.after_send`), so a recorded receive
  always has a recorded send, even under SIGKILL.
* ``send_control_message`` — reliable, unfiltered (the coordinated
  baselines assume reliable control exchanges; loopback UDP delivers them),
  pickled payloads (:mod:`repro.live.frames`).
* ``schedule_timer`` — entries on the transport's virtual-time heap,
  driven by a single asyncio task; everything in the worker runs on one
  loop, so no locking anywhere.

Recovery epochs: every datagram carries the sender's epoch; a receiver
drops datagrams from other epochs, and a resume discards in-custody delayed
copies of the old epoch — together the live analogue of the simulator's
``Network.drop_in_flight`` (messages in flight across a recovery session
are lost, per the paper's model).
"""

from __future__ import annotations

import asyncio
import hashlib
import heapq
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simulation.network import NetworkConfig, NetworkStats
from repro.transport.base import AppMessage, Transport

from repro.live.frames import decode_datagram, encode_datagram, pack_payload, unpack_payload
from repro.live.shard import ShardWriter

#: Message-id partitioning: ids are unique across senders and incarnations
#: without any coordination — ``sender`` and ``incarnation`` occupy disjoint
#: high decimal digits above a per-incarnation sequence counter.
_SENDER_STRIDE = 1_000_000_000
_INCARNATION_STRIDE = 1_000_000


def derive_link_rng(seed: int, label: str, sender: int, receiver: int) -> random.Random:
    """The per-directed-link RNG, exactly as ``Network._link_rng`` derives it."""
    digest = hashlib.sha256(
        f"{seed}:net:{label}:{sender}:{receiver}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class LiveTransport(Transport):
    """Datagram transport + virtual-time scheduler of one live worker."""

    def __init__(
        self,
        *,
        pid: int,
        num_processes: int,
        seed: int,
        network: NetworkConfig,
        time_scale: float,
        shard: ShardWriter,
        incarnation: int = 0,
        epoch: int = 0,
        clock: Callable[[], float],
    ) -> None:
        self._pid = pid
        self._num_processes = num_processes
        self._seed = seed
        self._network = network
        self._channel = network.resolve_channel()
        self._time_scale = time_scale
        self._shard = shard
        self._incarnation = incarnation
        self._epoch = epoch
        self._clock = clock
        self._origin: Optional[float] = None
        self._paused_at: Optional[float] = None
        self._next_seq = 0
        self._next_heap_seq = 0
        # (fire_vtime, seq, epoch-or-None, callback); epoch-tagged entries
        # are in-flight datagram copies, discarded on epoch change.
        self._heap: List[Tuple[float, int, Optional[int], Callable[[], None]]] = []
        self._wake = asyncio.Event()
        self._running = asyncio.Event()
        self._running.set()
        self._stopped = False
        self._pending_out: Dict[int, Tuple[AppMessage, Tuple[float, ...]]] = {}
        self._paused_control: List[Dict[str, Any]] = []
        self._received: set[int] = set()
        self._link_rngs: Dict[Tuple[str, int, int], random.Random] = {}
        self._link_states: Dict[Tuple[int, int], Any] = {}
        self._fifo_clock: Dict[Tuple[int, int], float] = {}
        self._peers: Dict[int, Tuple[str, int]] = {}
        self._udp: Optional[asyncio.DatagramTransport] = None
        self._deliver: Optional[Callable[[AppMessage], None]] = None
        self._deliver_duplicate: Optional[Callable[[AppMessage], None]] = None
        self._deliver_control: Optional[Callable[[int, Any], None]] = None
        self.stats = NetworkStats()
        shard.after_send = self._transmit_recorded_send

    # ------------------------------------------------------------------
    # Wiring (worker setup)
    # ------------------------------------------------------------------
    def attach_endpoint(self, udp: asyncio.DatagramTransport) -> None:
        """Attach the bound UDP datagram transport."""
        self._udp = udp

    def set_peers(self, peers: Dict[int, Tuple[str, int]]) -> None:
        """Install (or refresh, after a recovery) the pid → address map."""
        self._peers = dict(peers)

    def on_app_delivery(self, handler: Callable[[AppMessage], None]) -> None:
        """Register the first-copy delivery callback (``node.deliver``)."""
        self._deliver = handler

    def on_duplicate_delivery(self, handler: Callable[[AppMessage], None]) -> None:
        """Register the duplicate-copy callback (``node.deliver_duplicate``)."""
        self._deliver_duplicate = handler

    def on_control_delivery(self, handler: Callable[[int, Any], None]) -> None:
        """Register the control-message callback ``handler(sender, payload)``."""
        self._deliver_control = handler

    # ------------------------------------------------------------------
    # Virtual time
    # ------------------------------------------------------------------
    def start_clock(self, at_virtual_time: float = 0.0) -> None:
        """Anchor virtual time: ``now()`` equals ``at_virtual_time`` here.

        Called at the coordinator's start barrier and again on every resume
        (the coordinator dictates the post-pause virtual time, so all
        workers' clocks stay aligned without measuring the pause locally).
        """
        self._origin = self._clock() - at_virtual_time * self._time_scale
        self._paused_at = None
        self._wake.set()

    def now(self) -> float:
        """Virtual time (simulated units); frozen while paused."""
        if self._origin is None:
            return 0.0
        reference = self._paused_at if self._paused_at is not None else self._clock()
        return (reference - self._origin) / self._time_scale

    @property
    def epoch(self) -> int:
        """The current recovery epoch."""
        return self._epoch

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------
    def send_app_message(
        self,
        sender: int,
        receiver: int,
        piggyback: Tuple[int, ...],
        payload: Any = None,
    ) -> AppMessage:
        """Sample the message's fate; transmission waits for the send record."""
        message_id = (
            sender * _SENDER_STRIDE
            + self._incarnation * _INCARNATION_STRIDE
            + self._next_seq
        )
        self._next_seq += 1
        message = AppMessage(
            message_id=message_id,
            sender=sender,
            receiver=receiver,
            piggyback=tuple(piggyback),
            payload=payload,
        )
        self.stats.app_sent += 1
        now = self.now()
        if self._network.partitions.separated(sender, receiver, now):
            self.stats.app_blocked_by_partition += 1
            self._pending_out[message_id] = (message, ())
            return message
        rng = self._link_rng("app", sender, receiver)
        latencies = tuple(
            self._channel.sample(self._link_state(sender, receiver), sender, receiver, rng)
        )
        if not latencies:
            self.stats.app_dropped += 1
        self._pending_out[message_id] = (message, latencies)
        return message

    def _transmit_recorded_send(self, message_id: int) -> None:
        """The send record is durable: put the surviving copies in flight."""
        pending = self._pending_out.pop(message_id, None)
        if pending is None:
            return
        message, latencies = pending
        now = self.now()
        for latency in latencies:
            delivery_time = now + latency
            if self._network.fifo:
                link = (message.sender, message.receiver)
                delivery_time = max(delivery_time, self._fifo_clock.get(link, 0.0))
                self._fifo_clock[link] = delivery_time
            self._push(
                delivery_time,
                lambda m=message: self._transmit(m),
                epoch=self._epoch,
            )

    def _transmit(self, message: AppMessage) -> None:
        address = self._peers.get(message.receiver)
        if self._udp is None or address is None:
            return
        self._udp.sendto(
            encode_datagram(
                {
                    "t": "app",
                    "m": message.message_id,
                    "s": message.sender,
                    "r": message.receiver,
                    "pb": list(message.piggyback),
                    "e": self._epoch,
                    "l": self._shard.lamport,
                }
            ),
            address,
        )

    def send_control_message(self, sender: int, receiver: int, payload: Any) -> None:
        """Reliable control datagram (never filtered, pickled payload)."""
        self.stats.control_sent += 1
        address = self._peers.get(receiver)
        if self._udp is None or address is None:
            return
        self._udp.sendto(
            encode_datagram(
                {
                    "t": "ctrl",
                    "s": sender,
                    "p": pack_payload(payload),
                    "e": self._epoch,
                    "l": self._shard.lamport,
                }
            ),
            address,
        )

    def schedule_timer(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated units of *active* time."""
        self._push(self.now() + delay, callback, epoch=None)

    def schedule_at(self, vtime: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``vtime`` (workload actions)."""
        self._push(vtime, callback, epoch=None)

    # ------------------------------------------------------------------
    # Datagram ingress
    # ------------------------------------------------------------------
    def datagram_received(self, data: bytes) -> None:
        """Classify and deliver one incoming datagram (loop callback)."""
        if self._stopped:
            return
        try:
            frame = decode_datagram(data)
        except ValueError:
            return
        kind = frame.get("t")
        if kind == "ctrl":
            # Control exchanges are reliable and survive recovery sessions
            # (the simulator's drop_in_flight only touches app traffic), so
            # no epoch guard; while paused the frame is parked and delivered
            # on resume instead of being lost to the freeze.
            if self._paused_at is not None:
                self._paused_control.append(frame)
                return
            self._deliver_ctrl(frame)
            return
        if self._paused_at is not None:
            return  # the system is frozen for a recovery session
        if frame.get("e") != self._epoch:
            return  # in flight across a recovery session: lost by the model
        self._shard.merge_clock(int(frame.get("l", 0)))
        if kind != "app":
            return
        message = AppMessage(
            message_id=int(frame["m"]),
            sender=int(frame["s"]),
            receiver=int(frame["r"]),
            piggyback=tuple(int(v) for v in frame["pb"]),
            payload=None,
        )
        if message.message_id in self._received:
            self.stats.app_duplicates_delivered += 1
            if self._deliver_duplicate is not None:
                self._deliver_duplicate(message)
            return
        self._received.add(message.message_id)
        self.stats.app_delivered += 1
        if self._deliver is not None:
            self._deliver(message)

    # ------------------------------------------------------------------
    # Pause / resume (coordinator-driven recovery sessions)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Freeze virtual time and all scheduled work."""
        if self._paused_at is None:
            self._paused_at = self._clock()
        self._running.clear()

    def resume(self, *, epoch: int, at_virtual_time: float) -> None:
        """Enter ``epoch`` at the coordinator-dictated virtual time.

        Discards delayed datagram copies of older epochs — the sender-side
        half of ``drop_in_flight`` (the receiver-side half is the epoch
        guard on ingress).
        """
        discarded = [e for e in self._heap if e[2] is not None and e[2] != epoch]
        if discarded:
            self.stats.app_discarded_by_recovery += len(discarded)
            self._heap = [e for e in self._heap if not (e[2] is not None and e[2] != epoch)]
            heapq.heapify(self._heap)
        self._epoch = epoch
        self.start_clock(at_virtual_time)
        self._running.set()
        self._wake.set()
        parked, self._paused_control = self._paused_control, []
        for frame in parked:
            self._deliver_ctrl(frame)

    def _deliver_ctrl(self, frame: Dict[str, Any]) -> None:
        self._shard.merge_clock(int(frame.get("l", 0)))
        self.stats.control_delivered += 1
        if self._deliver_control is not None:
            self._deliver_control(int(frame["s"]), unpack_payload(frame["p"]))

    def stop(self) -> None:
        """Stop the scheduler task permanently."""
        self._stopped = True
        self._running.set()
        self._wake.set()

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _push(
        self, vtime: float, callback: Callable[[], None], *, epoch: Optional[int]
    ) -> None:
        heapq.heappush(self._heap, (vtime, self._next_heap_seq, epoch, callback))
        self._next_heap_seq += 1
        self._wake.set()

    async def run_scheduler(self) -> None:
        """Drive the virtual-time heap until :meth:`stop` (one task per worker)."""
        while not self._stopped:
            await self._running.wait()
            if self._stopped:
                return
            if not self._heap:
                await self._wake.wait()
                self._wake.clear()
                continue
            vtime, _, epoch, callback = self._heap[0]
            delay = (vtime - self.now()) * self._time_scale
            if delay <= 0:
                heapq.heappop(self._heap)
                if epoch is None or epoch == self._epoch:
                    callback()
                continue
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=delay)
                self._wake.clear()
            except asyncio.TimeoutError:
                pass

    # ------------------------------------------------------------------
    # Channel plumbing (same derivations as the simulator's Network)
    # ------------------------------------------------------------------
    def _link_rng(self, label: str, sender: int, receiver: int) -> random.Random:
        key = (label, sender, receiver)
        rng = self._link_rngs.get(key)
        if rng is None:
            rng = derive_link_rng(self._seed, label, sender, receiver)
            self._link_rngs[key] = rng
        return rng

    def _link_state(self, sender: int, receiver: int) -> Any:
        key = (sender, receiver)
        if key not in self._link_states:
            self._link_states[key] = self._channel.initial_state()
        return self._link_states[key]
