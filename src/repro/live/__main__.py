"""``python -m repro.live`` — run the live backend CLI."""

import sys

from repro.live.cli import main

sys.exit(main())
