"""``python -m repro.live`` — deprecated alias of ``python -m repro live``."""

import sys

from repro.live.cli import main

if __name__ == "__main__":
    print(
        "deprecated: `python -m repro.live` is now `python -m repro live` "
        "(this alias keeps working)",
        file=sys.stderr,
    )
    sys.exit(main())
