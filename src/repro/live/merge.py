"""Shard merge: per-process live shards → one v2 traceio artifact.

The merge is a deterministic function of the shard files and the recovery
plans the coordinator computed:

1. every shard's entries are read (tolerating SIGKILL-torn tails) and
   sorted globally by ``(epoch, lamport, pid, shard_seq)`` — a causal
   linearisation (see :mod:`repro.live.shard`);
2. the ordered records are fed through a fresh
   :class:`~repro.simulation.trace.TraceRecorder` with a
   :class:`~repro.traceio.writer.TraceWriter` attached, exactly the sink
   pipeline a simulated run uses, so the artifact obeys every v2 invariant
   by construction.  Receives whose send never became durable (the sender
   was SIGKILLed between the two shard writes — impossible by the
   write-before-transmit rule, but defended anyway) are silently dropped
   by the recorder, mirroring its replay contract;
3. at each epoch boundary the corresponding
   :class:`~repro.recovery.rollback_plan.RollbackPlan` is applied to the
   recorder (which emits the artifact's ``v`` record), reproducing the
   history truncation the recovery session performed on the live system.

The same replay also maintains a storage mirror (stores, collector
eliminations, rollback truncations) — what the coordinator uses to
reconstruct a SIGKILLed process's stable storage for its respawn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.recovery.rollback_plan import RollbackPlan
from repro.simulation.trace import TraceRecorder, TraceSink
from repro.traceio.format import (
    TAG_CHECKPOINT,
    TAG_DUPLICATE,
    TAG_INTERNAL,
    TAG_RECEIVE,
    TAG_SEND,
)

from repro.live.shard import TAG_ELIMINATION, ShardData, ShardEntry


@dataclass
class StorageMirror:
    """Reconstruction of every process's stable storage from the shards."""

    num_processes: int
    #: Indices currently on storage, keyed by pid.  Membership-keyed (not a
    #: fixed-size list) so a pid admitted after construction — a join past
    #: the initial capacity — mirrors correctly instead of raising
    #: ``IndexError``; absent pids simply retain nothing.
    retained: Dict[int, Set[int]] = field(default_factory=dict)
    #: ``(pid, index) → (dv, forced, time)`` of the *current* incarnation of
    #: each checkpoint (indices are reused after rollbacks; last write wins).
    info: Dict[Tuple[int, int], Tuple[Tuple[int, ...], bool, float]] = field(
        default_factory=dict
    )

    def retained_for(self, pid: int) -> Set[int]:
        """The retained-index set of ``pid`` (created on first touch)."""
        return self.retained.setdefault(pid, set())

    def apply_store(
        self, pid: int, index: int, dv: Sequence[int], forced: bool, time: float
    ) -> None:
        """A checkpoint reached stable storage."""
        self.retained_for(pid).add(index)
        self.info[(pid, index)] = (tuple(int(v) for v in dv), forced, time)

    def apply_elimination(self, pid: int, index: int) -> None:
        """A collector eliminated a checkpoint."""
        self.retained_for(pid).discard(index)

    def apply_plan(self, plan: RollbackPlan) -> None:
        """A recovery session truncated storage via ``eliminate_after``."""
        for rollback in plan.rollbacks:
            self.retained[rollback.pid] = {
                index
                for index in self.retained_for(rollback.pid)
                if index <= rollback.rollback_index
            }

    def restore_spec(
        self, pid: int, rollback_index: int, last_interval_vector: Sequence[int]
    ) -> Dict[str, object]:
        """The ``restore`` object a respawned worker rebuilds its storage from.

        Stores are replayed sequentially up to the rollback target, then the
        eliminated holes below it are re-punched; ``apply_rollback`` on the
        worker discards everything above the target, so nothing later needs
        shipping.
        """
        stores = []
        for index in range(rollback_index + 1):
            entry = self.info.get((pid, index))
            if entry is None:
                raise RuntimeError(
                    f"shards never recorded checkpoint s{pid}^{index} "
                    f"needed to restore process {pid}"
                )
            dv, forced, time = entry
            stores.append([index, list(dv), forced, time])
        eliminated = sorted(
            index
            for index in range(rollback_index)
            if index not in self.retained_for(pid)
        )
        return {
            "stores": stores,
            "eliminated": eliminated,
            "rollback_index": rollback_index,
            "last_interval_vector": list(last_interval_vector),
        }


def ordered_entries(shards: Sequence[ShardData]) -> List[ShardEntry]:
    """All shard entries in global merge order."""
    entries = [entry for shard in shards for entry in shard.entries]
    entries.sort(key=lambda entry: entry.sort_key)
    return entries


def replay_entries(
    entries: Sequence[ShardEntry],
    num_processes: int,
    *,
    plans: Mapping[int, RollbackPlan] = {},
    sink: Optional[TraceSink] = None,
    mirror: Optional[StorageMirror] = None,
) -> TraceRecorder:
    """Feed ordered entries through a fresh recorder (and optional sink).

    ``plans[e]`` is applied — to the recorder *and* the mirror — after the
    last record of epoch ``e``, reproducing the live system's recovery
    sessions at exactly the points they happened.
    """
    recorder = TraceRecorder(num_processes)
    if sink is not None:
        recorder.attach_sink(sink)
    epoch = 0
    for entry in entries:
        while entry.epoch > epoch:
            plan = plans.get(epoch)
            if plan is not None:
                recorder.apply_recovery(plan)
                if mirror is not None:
                    mirror.apply_plan(plan)
            epoch += 1
        _apply_record(recorder, entry, mirror)
    # Trailing plans (a crash with no post-resume records, or none at all).
    while epoch in plans:
        recorder.apply_recovery(plans[epoch])
        if mirror is not None:
            mirror.apply_plan(plans[epoch])
        epoch += 1
    return recorder


def _apply_record(
    recorder: TraceRecorder, entry: ShardEntry, mirror: Optional[StorageMirror]
) -> None:
    record = entry.record
    tag = record[0]
    if tag == TAG_SEND:
        _, sender, receiver, message_id, time = record
        recorder.record_send(int(sender), int(receiver), int(message_id), float(time))
    elif tag == TAG_RECEIVE:
        _, message_id, time = record
        recorder.record_receive(int(message_id), float(time))
    elif tag == TAG_DUPLICATE:
        _, message_id, time = record
        recorder.record_duplicate_receive(int(message_id), float(time))
    elif tag == TAG_CHECKPOINT:
        _, pid, index, forced, time, dv = record
        recorder.record_checkpoint(
            int(pid), int(index), tuple(int(v) for v in dv),
            forced=bool(forced), time=float(time),
        )
        if mirror is not None:
            mirror.apply_store(int(pid), int(index), dv, bool(forced), float(time))
    elif tag == TAG_INTERNAL:
        _, pid, time = record
        recorder.record_internal(int(pid), float(time))
    elif tag == TAG_ELIMINATION:
        # Shard-only bookkeeping: never enters the artifact (eliminations
        # are not trace events in simulated artifacts either).
        if mirror is not None:
            _, pid, index = record
            mirror.apply_elimination(int(pid), int(index))
    else:
        raise ValueError(f"unknown shard record tag {tag!r}")


def shard_counters(shards: Sequence[ShardData]) -> Dict[str, int]:
    """Exact event tallies over the *raw* shards (pre-truncation history).

    These are the live counterparts of the simulator's node counters, which
    also count occurrences that recovery later rolled back; deriving them
    from the shards covers SIGKILLed incarnations whose in-memory counters
    died with the process.
    """
    counters = {
        "sent": 0,
        "delivered": 0,
        "duplicates": 0,
        "basic_checkpoints": 0,
        "forced_checkpoints": 0,
    }
    for shard in shards:
        for entry in shard.entries:
            tag = entry.record[0]
            if tag == TAG_SEND:
                counters["sent"] += 1
            elif tag == TAG_RECEIVE:
                counters["delivered"] += 1
            elif tag == TAG_DUPLICATE:
                counters["duplicates"] += 1
            elif tag == TAG_CHECKPOINT:
                if entry.record[3]:
                    counters["forced_checkpoints"] += 1
                else:
                    counters["basic_checkpoints"] += 1
    return counters
