"""One live process of the checkpointed application.

``python -m repro.live.worker --port P --pid K`` connects to the
coordinator's TCP rendezvous on localhost port ``P``, binds an ephemeral
UDP endpoint, and then runs the *same* middleware stack the simulator runs
— :class:`repro.simulation.node.SimulationNode` with a real protocol,
collector and stable storage — on a :class:`repro.live.transport.LiveTransport`.

Coordinator protocol (length-prefixed JSON frames, see
:mod:`repro.live.frames`):

==============  =========================================================
frame           meaning
==============  =========================================================
→ ``hello``     ``{pid, udp_port}`` — the worker's data-plane address
← ``init``      full run configuration: processes, seed, protocol,
                collector (+options), network description, time scale,
                per-pid action script, shard path, epoch/incarnation,
                peer address map, and — for a respawned worker — the
                ``restore`` object (stable-storage contents + rollback
                directive reconstructed by the coordinator)
→ ``ready``     node built (and restored, when applicable)
← ``go``        start barrier; carries the virtual time to anchor at
← ``pause``     freeze (a recovery session is starting)
→ ``paused``    ``{dv, lamport}`` — volatile state for the CCP snapshot
← ``rollback``  apply a rollback directive (this process is rolled back)
← ``peer_rollback``  recovery session in which this process keeps state
→ ``rolled_back`` / ``peer_rolled_back``  ack, with collected counts
← ``resume``    re-enter execution: new epoch, refreshed peers, clock
← ``stop``      end of run
→ ``final``     closing report: dv, storage occupancy, transport stats
==============  =========================================================

A worker can be SIGKILLed at any instant; its shard stays a readable
prefix (flushed per record) and the coordinator reconstructs its storage
from it — that asymmetry (durable shard, volatile everything else) is the
paper's crash model made physical.
"""

from __future__ import annotations

import argparse
import asyncio
import time as wall_time
from typing import Any, Dict, List, Optional, Tuple

from repro.gc.registry import make_collector
from repro.protocols.registry import make_protocol
from repro.simulation.network import network_config_from_mapping
from repro.simulation.node import SimulationNode
from repro.simulation.workloads import Action, ActionKind
from repro.storage.stable import StableStorage

from repro.live.frames import read_frame, send_frame
from repro.live.shard import ShardWriter
from repro.live.transport import LiveTransport


class _Endpoint(asyncio.DatagramProtocol):
    """Feeds received datagrams into the transport (single loop, no locks)."""

    def __init__(self, worker: "LiveWorker") -> None:
        self._worker = worker

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        transport = self._worker.transport
        if transport is not None:
            transport.datagram_received(data)


class LiveWorker:
    """State of one worker process (built up across the rendezvous frames)."""

    def __init__(self, pid: int, coordinator_port: int) -> None:
        self.pid = pid
        self.coordinator_port = coordinator_port
        self.transport: Optional[LiveTransport] = None
        self.node: Optional[SimulationNode] = None
        self.shard: Optional[ShardWriter] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._udp: Optional[asyncio.DatagramTransport] = None
        self._scheduler: Optional[asyncio.Task[None]] = None
        self._restore_collected = 0
        self._duration = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Connect, rendezvous, execute until ``stop``."""
        loop = asyncio.get_running_loop()
        self._reader, self._writer = await asyncio.open_connection(
            "127.0.0.1", self.coordinator_port
        )
        self._udp, _ = await loop.create_datagram_endpoint(
            lambda: _Endpoint(self), local_addr=("127.0.0.1", 0)
        )
        udp_port = self._udp.get_extra_info("sockname")[1]
        send_frame(self._writer, {"type": "hello", "pid": self.pid, "udp_port": udp_port})
        await self._writer.drain()
        try:
            await self._frame_loop()
        finally:
            if self.shard is not None:
                self.shard.close()
            if self._scheduler is not None:
                self._scheduler.cancel()
            if self._udp is not None:
                self._udp.close()
            self._writer.close()

    async def _frame_loop(self) -> None:
        assert self._reader is not None and self._writer is not None
        while True:
            frame = await read_frame(self._reader)
            if frame is None:
                return  # coordinator is gone; nothing sensible left to do
            kind = frame.get("type")
            if kind == "init":
                self._handle_init(frame)
                send_frame(
                    self._writer,
                    {"type": "ready", "pid": self.pid, "collected": self._restore_collected},
                )
            elif kind == "go":
                self._handle_go(frame)
            elif kind == "pause":
                self._handle_pause()
            elif kind == "rollback":
                self._handle_rollback(frame)
            elif kind == "peer_rollback":
                self._handle_peer_rollback(frame)
            elif kind == "resume":
                self._handle_resume(frame)
            elif kind == "stop":
                self._handle_stop()
                return
            else:
                raise ValueError(f"worker {self.pid}: unknown frame {kind!r}")
            await self._writer.drain()

    # ------------------------------------------------------------------
    # Frame handlers
    # ------------------------------------------------------------------
    def _handle_init(self, frame: Dict[str, Any]) -> None:
        num_processes = int(frame["num_processes"])
        seed = int(frame["seed"])
        epoch = int(frame["epoch"])
        incarnation = int(frame["incarnation"])
        self._duration = float(frame["duration"])
        network = network_config_from_mapping(dict(frame["network"]))
        self.shard = ShardWriter(
            str(frame["shard_path"]),
            pid=self.pid,
            num_processes=num_processes,
            epoch=epoch,
            incarnation=incarnation,
            lamport=int(frame.get("lamport_floor", 0)),
        )
        self.transport = LiveTransport(
            pid=self.pid,
            num_processes=num_processes,
            seed=seed,
            network=network,
            time_scale=float(frame["time_scale"]),
            shard=self.shard,
            incarnation=incarnation,
            epoch=epoch,
            clock=wall_time.monotonic,
        )
        assert self._udp is not None
        self.transport.attach_endpoint(self._udp)
        self.transport.set_peers(
            {int(pid): ("127.0.0.1", int(port)) for pid, port in frame["peers"].items()}
        )
        storage = StableStorage(self.pid)
        protocol = make_protocol(str(frame["protocol"]), self.pid, num_processes)
        collector = make_collector(
            str(frame["collector"]),
            self.pid,
            num_processes,
            storage,
            **dict(frame.get("collector_options", {})),
        )
        restore = frame.get("restore")
        if restore is not None:
            # Reload the stable storage exactly as the coordinator
            # reconstructed it from this process's shard (stores must be
            # sequential; eliminated holes are re-punched afterwards).
            for index, dv, forced, ckpt_time in restore["stores"]:
                storage.store(
                    int(index),
                    tuple(int(v) for v in dv),
                    forced=bool(forced),
                    time=float(ckpt_time),
                )
        self.node = SimulationNode(
            self.pid,
            num_processes,
            transport=self.transport,
            trace=self.shard,
            protocol=protocol,
            collector=collector,
            storage=storage,
        )
        shard = self.shard
        collector.attach_elimination_listener(
            lambda index: shard.record_elimination(self.pid, index)
        )
        self.transport.on_app_delivery(self.node.deliver)
        self.transport.on_duplicate_delivery(self.node.deliver_duplicate)
        node = self.node
        transport = self.transport
        self.transport.on_control_delivery(
            lambda sender, payload: node.collector.on_control_message(
                sender, payload, transport.now()
            )
        )
        if restore is not None:
            for index in restore.get("eliminated", ()):
                storage.eliminate(int(index))
            collected = self.node.apply_rollback(
                int(restore["rollback_index"]),
                [int(v) for v in restore["last_interval_vector"]],
            )
            self._restore_collected = len(collected)
        self._schedule_actions(frame.get("actions", ()))

    def _schedule_actions(self, actions: Any) -> None:
        assert self.transport is not None and self.node is not None
        node = self.node

        def handler(action: Action) -> Any:
            if action.kind is ActionKind.SEND:
                return lambda: node.send_message(action.target)
            return lambda: node.take_checkpoint(forced=False)

        for raw_time, raw_kind, raw_target in actions:
            action = Action(
                time=float(raw_time),
                pid=self.pid,
                kind=ActionKind(raw_kind),
                target=None if raw_target is None else int(raw_target),
            )
            self.transport.schedule_at(action.time, handler(action))

    def _handle_go(self, frame: Dict[str, Any]) -> None:
        assert self.transport is not None and self.node is not None
        self.transport.start_clock(float(frame.get("at_virtual_time", 0.0)))
        if not frame.get("restored", False):
            self.node.start()  # the model's initial stable checkpoint s_i^0
        self._scheduler = asyncio.get_running_loop().create_task(
            self.transport.run_scheduler()
        )

    def _handle_pause(self) -> None:
        assert self.transport is not None and self.node is not None and self.shard is not None
        assert self._writer is not None
        self.transport.pause()
        send_frame(
            self._writer,
            {
                "type": "paused",
                "pid": self.pid,
                "dv": list(self.node.current_dv),
                "lamport": self.shard.lamport,
            },
        )

    def _handle_rollback(self, frame: Dict[str, Any]) -> None:
        assert self.node is not None and self._writer is not None
        collected = self.node.apply_rollback(
            int(frame["rollback_index"]),
            [int(v) for v in frame["last_interval_vector"]],
        )
        send_frame(
            self._writer,
            {"type": "rolled_back", "pid": self.pid, "collected": len(collected)},
        )

    def _handle_peer_rollback(self, frame: Dict[str, Any]) -> None:
        assert self.node is not None and self._writer is not None
        collected = self.node.apply_peer_rollback(
            [int(v) for v in frame["last_interval_vector"]]
        )
        send_frame(
            self._writer,
            {"type": "peer_rolled_back", "pid": self.pid, "collected": len(collected)},
        )

    def _handle_resume(self, frame: Dict[str, Any]) -> None:
        assert self.transport is not None and self.shard is not None
        epoch = int(frame["epoch"])
        self.shard.set_epoch(epoch, lamport_floor=int(frame.get("lamport_floor", 0)))
        self.transport.set_peers(
            {int(pid): ("127.0.0.1", int(port)) for pid, port in frame["peers"].items()}
        )
        self.transport.resume(
            epoch=epoch, at_virtual_time=float(frame["at_virtual_time"])
        )

    def _handle_stop(self) -> None:
        assert self.transport is not None and self.node is not None
        assert self.shard is not None and self._writer is not None
        self.transport.stop()
        node = self.node
        stats = self.transport.stats
        send_frame(
            self._writer,
            {
                "type": "final",
                "pid": self.pid,
                "dv": list(node.current_dv),
                "lamport": self.shard.lamport,
                "retained_indices": node.storage.retained_indices(),
                "max_retained": node.storage.max_retained(),
                "total_stored": node.storage.total_stored(),
                "total_eliminated": node.storage.total_eliminated(),
                "basic_checkpoints": node.basic_checkpoints,
                "forced_checkpoints": node.forced_checkpoints,
                "stats": {
                    "app_sent": stats.app_sent,
                    "app_delivered": stats.app_delivered,
                    "app_dropped": stats.app_dropped,
                    "app_duplicates_delivered": stats.app_duplicates_delivered,
                    "app_blocked_by_partition": stats.app_blocked_by_partition,
                    "app_discarded_by_recovery": stats.app_discarded_by_recovery,
                    "control_sent": stats.control_sent,
                    "control_delivered": stats.control_delivered,
                },
            },
        )
        self.shard.close()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (spawned by the coordinator, runnable by hand)."""
    parser = argparse.ArgumentParser(description="repro live worker process")
    parser.add_argument("--port", type=int, required=True, help="coordinator TCP port")
    parser.add_argument("--pid", type=int, required=True, help="logical process id")
    args = parser.parse_args(argv)
    asyncio.run(LiveWorker(args.pid, args.port).run())
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    raise SystemExit(main())
