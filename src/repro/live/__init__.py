"""The live execution backend: the middleware on real processes and sockets.

The same middleware stack the simulator runs —
:class:`~repro.simulation.node.SimulationNode` with a pluggable protocol,
collector and stable storage — executes here as one OS process per logical
process, exchanging application and control messages over localhost UDP
datagrams, with crashes injected as real SIGKILLs.  A central coordinator
(:mod:`repro.live.coordinator`) drives rendezvous, failure injection and
the recovery sessions, and merges the per-process durable trace shards
(:mod:`repro.live.shard`, :mod:`repro.live.merge`) into a single v2
:mod:`repro.traceio` artifact that verifies, replays and audits exactly
like a simulated one.

Entry points: :func:`run_live` (programmatic; also reached through
:func:`repro.simulation.runner.run_simulation` with ``backend="live"``)
and ``python -m repro live`` (:mod:`repro.live.cli`).
"""

from repro.live.coordinator import LiveOptions, LiveRunResult, run_live
from repro.live.transport import LiveTransport

__all__ = ["LiveOptions", "LiveRunResult", "LiveTransport", "run_live"]
