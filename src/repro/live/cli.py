"""Command-line front end of the live backend.

Run the middleware on real processes and sockets::

    python -m repro live --processes 3 --duration 30 --collector rdt-lgc

With message loss, a SIGKILL crash/recover and a persisted artifact::

    python -m repro live --processes 3 --duration 30 --drop 0.1 \\
        --crash 12:1 --trace live.trace.jsonl --audit safety

The merged artifact is a standard v2 trace: inspect it with
``python -m repro trace inspect`` and check its invariants with
``python -m repro trace replay --verify``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.simulation.failures import FailureSchedule
from repro.simulation.network import NetworkConfig
from repro.simulation.runner import SimulationConfig
from repro.simulation.workloads import available_workloads, make_workload

from repro.live.coordinator import LiveOptions, run_live


def _parse_crash(value: str) -> Tuple[float, int]:
    try:
        time_text, pid_text = value.split(":", 1)
        return (float(time_text), int(pid_text))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"crash must look like TIME:PID, got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro live",
        description="Run one checkpointing/GC experiment on real OS processes",
    )
    parser.add_argument("--processes", type=int, default=3, help="number of processes")
    parser.add_argument("--duration", type=float, default=30.0, help="virtual duration")
    parser.add_argument("--seed", type=int, default=0, help="run seed")
    parser.add_argument("--protocol", default="fdas", help="checkpointing protocol")
    parser.add_argument("--collector", default="rdt-lgc", help="garbage collector")
    parser.add_argument(
        "--workload",
        default="uniform-random",
        choices=available_workloads(),
        help="workload generator",
    )
    parser.add_argument("--drop", type=float, default=0.0, help="message loss probability")
    parser.add_argument("--base-latency", type=float, default=1.0, help="link base latency")
    parser.add_argument("--jitter", type=float, default=0.5, help="link latency jitter")
    parser.add_argument(
        "--crash",
        type=_parse_crash,
        action="append",
        default=[],
        metavar="TIME:PID",
        help="SIGKILL PID at virtual TIME and run a recovery session (repeatable)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.02,
        help="wall seconds per virtual time unit",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH", help="write the merged trace artifact here"
    )
    parser.add_argument(
        "--audit",
        default="safety",
        choices=["off", "safety", "full"],
        help="Theorem-4 audit of the final state",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run one live experiment and print its summary."""
    args = build_parser().parse_args(argv)
    config = SimulationConfig(
        num_processes=args.processes,
        duration=args.duration,
        workload=make_workload(args.workload),
        protocol=args.protocol,
        collector=args.collector,
        network=NetworkConfig(
            base_latency=args.base_latency,
            jitter=args.jitter,
            drop_probability=args.drop,
        ),
        failures=FailureSchedule.of(args.crash),
        seed=args.seed,
        audit=args.audit,
        trace_path=args.trace,
        backend="live",
    )
    live = run_live(config, LiveOptions(time_scale=args.time_scale))
    result = live.result
    for key, value in result.summary().items():
        print(f"{key:>26}: {value}")
    for recovery in result.recoveries:
        print(
            f"{'recovery':>26}: t={recovery.time:.1f} faulty={list(recovery.faulty)} "
            f"line={list(recovery.recovery_line)} "
            f"rolled_back={recovery.rolled_back_processes}"
        )
    for audit in result.audits:
        verdict = "safe" if audit.is_safe else "UNSAFE"
        print(f"{'audit':>26}: {audit.label} {verdict}")
    print(f"{'trace':>26}: {live.trace_path}")
    return 0 if result.all_audits_safe else 1


if __name__ == "__main__":  # pragma: no cover - module CLI entry point
    sys.exit(main())
