"""``python -m repro.campaign`` — deprecated alias of ``python -m repro campaign``.

Thin launcher for :mod:`repro.scenarios.campaign.cli`; the unified
``python -m repro`` façade is the canonical spelling.  Importing
:func:`main` from here remains supported and warning-free.
"""

from repro.scenarios.campaign.cli import main

if __name__ == "__main__":
    import sys

    print(
        "deprecated: `python -m repro.campaign` is now `python -m repro "
        "campaign` (this alias keeps working)",
        file=sys.stderr,
    )
    raise SystemExit(main())
