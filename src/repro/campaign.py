"""``python -m repro.campaign`` — run experiment campaigns from the shell.

Thin launcher for :mod:`repro.scenarios.campaign.cli`; see that module (or
``python -m repro.campaign --help``) for the flags.
"""

from repro.scenarios.campaign.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
