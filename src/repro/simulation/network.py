"""Message transport between simulated processes.

Channels follow the paper's model: messages cannot be corrupted, but they can
be lost and delivered out of order.  Delivery latency is sampled per message
(base latency plus uniform jitter), which naturally produces reordering; a
configurable drop probability produces loss.  Control messages (used only by
the coordinated garbage-collection baselines) travel over the same transport
but are never dropped — those baselines explicitly assume reliable control
exchanges, which is part of the paper's point.

During a recovery session the runner calls :meth:`Network.drop_in_flight`,
which discards every application message still in transit: a rolled-back
sender's messages must not be delivered to the restarted computation, and the
model permits treating the others as lost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.simulation.engine import SimulationEngine


@dataclass(frozen=True)
class NetworkConfig:
    """Latency, jitter and loss parameters of the transport."""

    base_latency: float = 1.0
    jitter: float = 0.5
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.jitter < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")


@dataclass(frozen=True)
class AppMessage:
    """An application message in transit."""

    message_id: int
    sender: int
    receiver: int
    piggyback: Tuple[int, ...]
    payload: Any = None


@dataclass
class NetworkStats:
    """Counters kept by the transport."""

    app_sent: int = 0
    app_delivered: int = 0
    app_dropped: int = 0
    app_discarded_by_recovery: int = 0
    control_sent: int = 0
    control_delivered: int = 0


class Network:
    """Point-to-point transport shared by all simulated processes."""

    def __init__(
        self,
        engine: SimulationEngine,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self._engine = engine
        self._config = config if config is not None else NetworkConfig()
        self._app_handler: Optional[Callable[[AppMessage], None]] = None
        self._control_handler: Optional[Callable[[int, int, Any], None]] = None
        self._next_message_id = 0
        self._in_flight: Dict[int, AppMessage] = {}
        # Control-message latencies are drawn from a separate generator so that
        # attaching a coordinated garbage collector does not perturb the
        # application execution: experiments comparing collectors then see the
        # exact same application-level run.
        self._control_rng = random.Random(engine.rng.randint(0, 2**31))
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def config(self) -> NetworkConfig:
        """The transport parameters."""
        return self._config

    def on_app_delivery(self, handler: Callable[[AppMessage], None]) -> None:
        """Register the callback invoked when an application message is delivered."""
        self._app_handler = handler

    def on_control_delivery(self, handler: Callable[[int, int, Any], None]) -> None:
        """Register the callback for control messages: ``handler(sender, receiver, payload)``."""
        self._control_handler = handler

    # ------------------------------------------------------------------
    # Application messages
    # ------------------------------------------------------------------
    def send_app_message(
        self,
        sender: int,
        receiver: int,
        piggyback: Tuple[int, ...],
        payload: Any = None,
    ) -> AppMessage:
        """Send an application message; returns the in-transit record."""
        message = AppMessage(
            message_id=self._next_message_id,
            sender=sender,
            receiver=receiver,
            piggyback=tuple(piggyback),
            payload=payload,
        )
        self._next_message_id += 1
        self.stats.app_sent += 1
        rng = self._engine.rng
        if self._config.drop_probability and rng.random() < self._config.drop_probability:
            self.stats.app_dropped += 1
            return message
        self._in_flight[message.message_id] = message
        latency = self._config.base_latency + rng.uniform(0.0, self._config.jitter)
        self._engine.schedule_after(latency, lambda m=message: self._deliver_app(m))
        return message

    def _deliver_app(self, message: AppMessage) -> None:
        if message.message_id not in self._in_flight:
            return  # discarded by a recovery session while in transit
        del self._in_flight[message.message_id]
        self.stats.app_delivered += 1
        if self._app_handler is None:
            raise RuntimeError("no application delivery handler registered")
        self._app_handler(message)

    def in_flight_count(self) -> int:
        """Number of application messages currently in transit."""
        return len(self._in_flight)

    def drop_in_flight(self) -> int:
        """Discard every in-transit application message (recovery sessions)."""
        discarded = len(self._in_flight)
        self.stats.app_discarded_by_recovery += discarded
        self._in_flight.clear()
        return discarded

    # ------------------------------------------------------------------
    # Control messages
    # ------------------------------------------------------------------
    def send_control_message(self, sender: int, receiver: int, payload: Any) -> None:
        """Send a reliable control message (never dropped)."""
        self.stats.control_sent += 1
        latency = self._config.base_latency + self._control_rng.uniform(
            0.0, self._config.jitter
        )

        def deliver() -> None:
            self.stats.control_delivered += 1
            if self._control_handler is None:
                raise RuntimeError("no control delivery handler registered")
            self._control_handler(sender, receiver, payload)

        self._engine.schedule_after(latency, deliver)
