"""Message transport between simulated processes.

Channels follow the paper's model by default: messages cannot be corrupted,
but they can be lost and delivered out of order.  The *fate* of each message
— its latency, whether it is lost, whether extra copies appear — is decided
by a pluggable :class:`repro.simulation.channels.ChannelModel`; the default
:class:`~repro.simulation.channels.UniformChannel` reproduces the paper's
transport exactly (base latency plus uniform jitter, i.i.d. loss).  On top
of the channel model, :class:`NetworkConfig` can impose a
:class:`~repro.simulation.channels.PartitionSchedule` (timed partitions that
heal; application messages crossing an active cut are lost) and a FIFO
delivery discipline (per-link deliveries in send order; the default is the
paper's non-FIFO reordering).

Determinism and isolation.  Every directed link owns two private random
streams — one for application traffic, one for control traffic — derived
from the engine seed and the link endpoints, never from the shared engine
generator.  Consequently adding or removing traffic (or a fault model) on
one link does not perturb the latency/loss draws of any other link, and
attaching a coordinated garbage collector (control traffic) does not perturb
the application execution.  The workload, which *does* draw from the engine
generator, is likewise untouched by anything the network does.

Control messages (used only by the coordinated garbage-collection baselines)
travel over the same transport but are never dropped, duplicated or blocked
by partitions — those baselines explicitly assume reliable control
exchanges, which is part of the paper's point; their latency still follows
the link's channel model.

During a recovery session the runner calls :meth:`Network.drop_in_flight`,
which discards every application message copy still in transit: a
rolled-back sender's messages must not be delivered to the restarted
computation, and the model permits treating the others as lost.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from repro.simulation.channels import (
    ChannelModel,
    LinkState,
    PartitionSchedule,
    UniformChannel,
    channel_from_mapping,
)
from repro.simulation.engine import SimulationEngine
from repro.transport.base import AppMessage

__all__ = [
    "AppMessage",
    "Network",
    "NetworkConfig",
    "NetworkStats",
    "PartitionEvent",
    "ScheduleController",
    "network_config_from_mapping",
]

#: ``(time, kind, groups)`` of one partition cut/heal, as seen by hooks.
PartitionEvent = Tuple[float, str, Tuple[Tuple[int, ...], ...]]


@dataclass(frozen=True)
class NetworkConfig:
    """Latency, jitter, loss and fault-model parameters of the transport.

    The three scalar fields describe the default
    :class:`~repro.simulation.channels.UniformChannel`; a non-``None``
    ``channel`` supersedes them.  ``partitions`` and ``fifo`` compose with
    any channel model.
    """

    base_latency: float = 1.0
    jitter: float = 0.5
    drop_probability: float = 0.0
    channel: Optional[ChannelModel] = None
    partitions: PartitionSchedule = field(default_factory=PartitionSchedule.none)
    fifo: bool = False

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.jitter < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        if self.channel is not None and not isinstance(self.channel, ChannelModel):
            raise ValueError("channel must be a ChannelModel")

    def resolve_channel(self) -> ChannelModel:
        """The effective channel model of this configuration."""
        if self.channel is not None:
            return self.channel
        return UniformChannel(
            base_latency=self.base_latency,
            jitter=self.jitter,
            drop_probability=self.drop_probability,
        )

    def validate_for(self, num_processes: int) -> None:
        """Reject configurations that cannot serve ``num_processes``."""
        self.resolve_channel().validate_for(num_processes)
        self.partitions.validate_for(num_processes)

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON-able description (trace headers, campaign cells).

        Deliberately emits *only* the three scalar keys for a default
        (uniform, unpartitioned, non-FIFO) configuration, so the identity of
        every pre-fault-model campaign cell and trace header is unchanged;
        fault models appear as additional keys only when present.
        """
        description: Dict[str, Any] = {
            "base_latency": self.base_latency,
            "jitter": self.jitter,
            "drop_probability": self.drop_probability,
        }
        if self.channel is not None:
            description["channel"] = self.channel.describe()
        if self.partitions:
            description["partitions"] = self.partitions.describe()
        if self.fifo:
            description["fifo"] = True
        return description


def network_config_from_mapping(document: Dict[str, Any]) -> NetworkConfig:
    """Build a :class:`NetworkConfig` from its :meth:`NetworkConfig.describe`
    mapping (the form campaign specs written as JSON use)."""
    params = dict(document)
    channel = params.pop("channel", None)
    partitions = params.pop("partitions", None)
    fifo = bool(params.pop("fifo", False))
    unknown = sorted(set(params) - {"base_latency", "jitter", "drop_probability"})
    if unknown:
        raise ValueError(f"unknown network config keys: {', '.join(unknown)}")
    return NetworkConfig(
        **params,
        channel=channel_from_mapping(channel) if channel is not None else None,
        partitions=(
            PartitionSchedule.from_mapping(partitions)
            if partitions is not None
            else PartitionSchedule.none()
        ),
        fifo=fifo,
    )


class ScheduleController(Protocol):
    """External owner of application-message delivery *order*.

    With a controller attached (:meth:`Network.attach_controller`), the
    network still decides the *fate* of every copy exactly as before — the
    channel model samples loss/duplication/latency from the same per-link
    random streams in the same order, so a controlled run consumes draws
    identically to an uncontrolled one — but instead of scheduling the copy
    on the engine at its sampled delivery time, custody is handed to the
    controller.  The controller delivers a copy whenever its schedule says
    so by calling :meth:`Network.release_delivery`; the copy is then
    delivered at the *current* engine time.  This is the hook the
    schedule-space explorer (:mod:`repro.explore`) drives interleavings
    through.
    """

    def on_copy_in_flight(
        self, delivery_id: int, message: AppMessage, sampled_delivery_time: float
    ) -> None:
        """The network placed one message copy in the controller's custody.

        ``sampled_delivery_time`` is the delivery instant the engine *would*
        have used (provenance only — the controller decides the real order).
        """

    def on_copies_discarded(self, delivery_ids: List[int]) -> None:
        """A recovery session discarded in-custody copies (drop_in_flight)."""


@dataclass
class NetworkStats:
    """Counters kept by the transport."""

    app_sent: int = 0
    app_delivered: int = 0
    app_dropped: int = 0
    app_duplicates_delivered: int = 0
    app_blocked_by_partition: int = 0
    app_discarded_by_recovery: int = 0
    app_discarded_by_departure: int = 0
    control_sent: int = 0
    control_delivered: int = 0
    partition_events: int = 0


class Network:
    """Point-to-point transport shared by all simulated processes."""

    def __init__(
        self,
        engine: SimulationEngine,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self._engine = engine
        self._config = config if config is not None else NetworkConfig()
        self._channel = self._config.resolve_channel()
        self._app_handler: Optional[Callable[[AppMessage], None]] = None
        self._duplicate_handler: Optional[Callable[[AppMessage], None]] = None
        self._control_handler: Optional[Callable[[int, int, Any], None]] = None
        self._partition_hook: Optional[Callable[[PartitionEvent], None]] = None
        self._controller: Optional[ScheduleController] = None
        self._next_message_id = 0
        self._next_delivery_id = 0
        # In-transit copies keyed by a per-copy delivery id (a duplicated
        # message has several copies in flight at once); `_received` marks
        # messages whose first copy already landed, so later copies are
        # classified as duplicate deliveries.
        self._in_flight: Dict[int, AppMessage] = {}
        self._received: set[int] = set()
        # Per-directed-link state: private random streams (derived from the
        # engine seed, never drawn from the shared engine generator — see the
        # module docstring), channel runtime state, and the FIFO clock.
        self._link_rngs: Dict[Tuple[str, int, int], random.Random] = {}
        self._link_states: Dict[Tuple[int, int], LinkState] = {}
        self._fifo_clock: Dict[Tuple[int, int], float] = {}
        self.stats = NetworkStats()
        self._schedule_partition_transitions()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def config(self) -> NetworkConfig:
        """The transport parameters."""
        return self._config

    @property
    def channel(self) -> ChannelModel:
        """The effective channel model."""
        return self._channel

    def on_app_delivery(self, handler: Callable[[AppMessage], None]) -> None:
        """Register the callback invoked when an application message is delivered."""
        self._app_handler = handler

    def on_duplicate_delivery(self, handler: Callable[[AppMessage], None]) -> None:
        """Register the callback for duplicate copies of already-delivered messages."""
        self._duplicate_handler = handler

    def on_control_delivery(self, handler: Callable[[int, int, Any], None]) -> None:
        """Register the callback for control messages: ``handler(sender, receiver, payload)``."""
        self._control_handler = handler

    def on_partition_event(self, handler: Callable[[PartitionEvent], None]) -> None:
        """Register the callback invoked at every partition cut/heal instant."""
        self._partition_hook = handler

    def attach_controller(self, controller: ScheduleController) -> None:
        """Hand delivery *ordering* to an external :class:`ScheduleController`.

        Must be attached before the first application send; copies already
        scheduled on the engine are not re-parented.  Channel fate sampling
        (loss, duplication, latency draws) is unchanged — see
        :class:`ScheduleController`.
        """
        if self._controller is not None:
            raise RuntimeError("a schedule controller is already attached")
        self._controller = controller

    # ------------------------------------------------------------------
    # Per-link state
    # ------------------------------------------------------------------
    def _link_rng(self, label: str, sender: int, receiver: int) -> random.Random:
        key = (label, sender, receiver)
        rng = self._link_rngs.get(key)
        if rng is None:
            digest = hashlib.sha256(
                f"{self._engine.seed}:net:{label}:{sender}:{receiver}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._link_rngs[key] = rng
        return rng

    def _link_state(self, sender: int, receiver: int) -> LinkState:
        key = (sender, receiver)
        if key not in self._link_states:
            self._link_states[key] = self._channel.initial_state()
        return self._link_states[key]

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def _schedule_partition_transitions(self) -> None:
        for time, kind, partition in self._config.partitions.transitions():
            self._engine.schedule_at(
                time,
                lambda kind=kind, partition=partition: self._partition_transition(
                    kind, partition.groups
                ),
            )

    def _partition_transition(self, kind: str, groups: Tuple[Tuple[int, ...], ...]) -> None:
        self.stats.partition_events += 1
        if self._partition_hook is not None:
            self._partition_hook((self._engine.now, kind, groups))

    # ------------------------------------------------------------------
    # Application messages
    # ------------------------------------------------------------------
    def send_app_message(
        self,
        sender: int,
        receiver: int,
        piggyback: Tuple[int, ...],
        payload: Any = None,
    ) -> AppMessage:
        """Send an application message; returns the in-transit record."""
        message = AppMessage(
            message_id=self._next_message_id,
            sender=sender,
            receiver=receiver,
            piggyback=tuple(piggyback),
            payload=payload,
        )
        self._next_message_id += 1
        self.stats.app_sent += 1
        now = self._engine.now
        if self._config.partitions.separated(sender, receiver, now):
            self.stats.app_blocked_by_partition += 1
            return message
        rng = self._link_rng("app", sender, receiver)
        latencies = self._channel.sample(
            self._link_state(sender, receiver), sender, receiver, rng
        )
        if not latencies:
            self.stats.app_dropped += 1
            return message
        for latency in latencies:
            delivery_time = now + latency
            if self._config.fifo:
                # FIFO discipline: a copy never overtakes an earlier copy on
                # the same link; equal times fall back to the engine's
                # scheduling-order tiebreak, which is send order.
                link = (sender, receiver)
                delivery_time = max(delivery_time, self._fifo_clock.get(link, 0.0))
                self._fifo_clock[link] = delivery_time
            delivery_id = self._next_delivery_id
            self._next_delivery_id += 1
            self._in_flight[delivery_id] = message
            if self._controller is not None:
                self._controller.on_copy_in_flight(delivery_id, message, delivery_time)
            else:
                self._engine.schedule_at(
                    delivery_time, lambda did=delivery_id: self._deliver_copy(did)
                )
        return message

    def release_delivery(self, delivery_id: int) -> None:
        """Deliver a controller-held copy *now* (current engine time).

        Only meaningful with a :class:`ScheduleController` attached; a copy
        discarded by a recovery session in the meantime is silently ignored,
        mirroring the engine-scheduled path.
        """
        if self._controller is None:
            raise RuntimeError("release_delivery requires an attached schedule controller")
        self._deliver_copy(delivery_id)

    def _deliver_copy(self, delivery_id: int) -> None:
        message = self._in_flight.pop(delivery_id, None)
        if message is None:
            return  # discarded by a recovery session while in transit
        if message.message_id in self._received:
            # A later copy of an already-delivered message: a duplicate.
            self.stats.app_duplicates_delivered += 1
            if self._duplicate_handler is None:
                raise RuntimeError("no duplicate delivery handler registered")
            self._duplicate_handler(message)
            return
        self._received.add(message.message_id)
        self.stats.app_delivered += 1
        if self._app_handler is None:
            raise RuntimeError("no application delivery handler registered")
        self._app_handler(message)

    def in_flight_count(self) -> int:
        """Number of application message copies currently in transit."""
        return len(self._in_flight)

    def drop_in_flight(self) -> int:
        """Discard every in-transit application copy (recovery sessions)."""
        discarded = len(self._in_flight)
        self.stats.app_discarded_by_recovery += discarded
        dropped_ids = sorted(self._in_flight)
        self._in_flight.clear()
        if self._controller is not None and dropped_ids:
            self._controller.on_copies_discarded(dropped_ids)
        return discarded

    def drop_in_flight_for(self, pid: int) -> int:
        """Discard in-transit application copies sent by or addressed to ``pid``.

        Called when ``pid`` leaves the membership: its outbound messages must
        not land on the surviving computation and its inbound messages have no
        recipient.  Copies between surviving processes stay in flight, unlike
        :meth:`drop_in_flight`; controller-held copies are reclaimed the same
        way.
        """
        dropped_ids = sorted(
            delivery_id
            for delivery_id, message in self._in_flight.items()
            if message.sender == pid or message.receiver == pid
        )
        for delivery_id in dropped_ids:
            del self._in_flight[delivery_id]
        self.stats.app_discarded_by_departure += len(dropped_ids)
        if self._controller is not None and dropped_ids:
            self._controller.on_copies_discarded(dropped_ids)
        return len(dropped_ids)

    def ensure_capacity(self, num_processes: int) -> None:
        """Re-validate the fault model against a grown membership.

        Construction-time validation covers the configured capacity only; a
        join that extends the process range must re-check that the latency
        matrix and partition schedule still cover every pid.
        """
        self._config.validate_for(num_processes)

    # ------------------------------------------------------------------
    # Control messages
    # ------------------------------------------------------------------
    def send_control_message(self, sender: int, receiver: int, payload: Any) -> None:
        """Send a reliable control message (never dropped, duplicated or
        blocked by partitions; latency follows the link's channel model)."""
        self.stats.control_sent += 1
        rng = self._link_rng("control", sender, receiver)
        latency = self._channel.sample_latency(
            self._link_state(sender, receiver), sender, receiver, rng
        )

        def deliver() -> None:
            self.stats.control_delivered += 1
            if self._control_handler is None:
                raise RuntimeError("no control delivery handler registered")
            self._control_handler(sender, receiver, payload)

        self._engine.schedule_after(latency, deliver)
