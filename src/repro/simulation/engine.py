"""Discrete-event simulation engine.

A small, dependency-free engine: callbacks are scheduled at absolute simulated
times and executed in time order; ties are broken by scheduling order, which
(together with a seeded random generator) makes every run fully deterministic.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]


class SimulationEngine:
    """Event queue and simulated clock."""

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: List[Tuple[float, int, Callback]] = []
        self._rng = random.Random(seed)
        self._processed_events = 0

    # ------------------------------------------------------------------
    # Clock and randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The seeded random generator shared by the run."""
        return self._rng

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed_events

    def pending_events(self) -> int:
        """Number of callbacks still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event in the past ({time} < {self._now})"
            )
        heapq.heappush(self._queue, (time, self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError("delays must be non-negative")
        self.schedule_at(self._now + delay, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process queued events in time order.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (the clock is then advanced to ``until``), or after
        ``max_events`` callbacks.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            self._now = time
            callback()
            self._processed_events += 1
            executed += 1
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Process a single event; returns False if the queue was empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._now = time
        callback()
        self._processed_events += 1
        return True
