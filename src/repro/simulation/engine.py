"""Discrete-event simulation engine.

A small, dependency-free engine: callbacks are scheduled at absolute simulated
times and executed in time order; ties are broken by scheduling order, which
(together with a seeded random generator) makes every run fully deterministic.
"""

from __future__ import annotations

import enum
import heapq
import random
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]


class StopReason(enum.Enum):
    """Why a :meth:`SimulationEngine.run` call returned."""

    EXHAUSTED = "exhausted"
    """The event queue ran dry.  With ``until`` given the clock is advanced
    to it — but, as with ``UNTIL``, never backwards."""

    UNTIL = "until"
    """Every event at or before ``until`` was processed.  The clock is
    advanced to ``until`` — but never backwards: an ``until`` earlier than
    the current time leaves the clock where it is."""

    MAX_EVENTS = "max_events"
    """The ``max_events`` budget was spent with events still pending.  The
    clock stays at the time of the last executed callback — deliberately
    *strictly before* ``until`` whenever unprocessed events remain there, since
    advancing past pending events would misorder a subsequent ``run``."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SimulationEngine:
    """Event queue and simulated clock."""

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: List[Tuple[float, int, Callback]] = []
        self._seed = seed
        self._rng = random.Random(seed)
        self._processed_events = 0

    # ------------------------------------------------------------------
    # Clock and randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    @property
    def seed(self) -> int:
        """The seed the run was created with.

        Consumers that need *independent* random streams (the network's
        per-link streams, for example) derive them from this seed rather
        than drawing from :attr:`rng`, so their draws never perturb — and
        are never perturbed by — anyone else's.
        """
        return self._seed

    @property
    def rng(self) -> random.Random:
        """The seeded random generator shared by the run."""
        return self._rng

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed_events

    def pending_events(self) -> int:
        """Number of callbacks still queued."""
        return len(self._queue)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest queued callback, or None if the queue is empty.

        Introspection companion to :meth:`pending_events`: external drivers
        can see how far ``run(until=...)`` would have to go without executing
        anything.
        """
        return self._queue[0][0] if self._queue else None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event in the past ({time} < {self._now})"
            )
        heapq.heappush(self._queue, (time, self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError("delays must be non-negative")
        self.schedule_at(self._now + delay, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> StopReason:
        """Process queued events in time order and report why the run stopped.

        Stop and clock-advance semantics, in precedence order:

        * ``UNTIL`` — the next queued event lies beyond ``until``: the clock is
          advanced to exactly ``until`` (the caller asked to reach it and no
          work remains at or before it).  Checked before the event budget, so
          a run that drains everything up to ``until`` reports ``UNTIL`` even
          if it also used its last budgeted event.
        * ``MAX_EVENTS`` — ``max_events`` callbacks were executed and events
          remain pending.  The clock is **not** advanced to ``until``: it stays
          at the last executed callback's time, because events may still be
          queued at or before ``until`` and silently skipping past them would
          corrupt the timeline of a follow-up ``run``.  Callers that want the
          clock at ``until`` must keep calling ``run`` until it returns
          ``UNTIL`` or ``EXHAUSTED``.
        * ``EXHAUSTED`` — the queue ran dry; with ``until`` given the clock is
          advanced to ``until`` (there is provably nothing left before it),
          except that the clock never moves backwards when ``until`` is
          already in the past.
        """
        executed = 0
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                # Never move the clock backwards: `until` earlier than `now`
                # simply means there is nothing left to do at or before it.
                if until > self._now:
                    self._now = until
                return StopReason.UNTIL
            if max_events is not None and executed >= max_events:
                return StopReason.MAX_EVENTS
            heapq.heappop(self._queue)
            self._now = time
            callback()
            self._processed_events += 1
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        return StopReason.EXHAUSTED

    def step(self) -> bool:
        """Process a single event; returns False if the queue was empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._now = time
        callback()
        self._processed_events += 1
        return True
