"""Declarative network fault models: the :class:`ChannelModel` library.

The paper's system model permits exactly two channel misbehaviours: messages
can be *lost* and they can be *reordered* (latency plus jitter); they are
never corrupted.  :class:`UniformChannel` is that model verbatim — the
transport every run used before this module existed.  The remaining models
are *adversarial extensions*: each one relaxes the model along one axis so
the collectors' safety and optimality claims can be stress-tested beyond the
regime the paper evaluated:

* :class:`GilbertElliottChannel` — correlated (bursty) loss from the classic
  two-state Markov channel, instead of i.i.d. drops;
* :class:`DuplicatingChannel` — at-least-once delivery: the wire occasionally
  delivers extra copies of a message (the paper's channels never duplicate);
* :class:`LatencyMatrixChannel` — per-link asymmetric base latencies (a
  "cluster of clusters" topology) instead of one global latency;
* :class:`PartitionSchedule` — timed partitions that heal: while a partition
  is active, application messages crossing the cut are lost.

Channel models are **declarative**: frozen, hashable dataclasses carrying
only scalars and tuples, so they can sit on a campaign grid axis (hashed
into ``cell_id``), be pickled to pool workers, and be serialised into trace
headers via :meth:`ChannelModel.describe`.  All *runtime* state (the
Gilbert–Elliott regime of a link, for example) lives in the
:class:`~repro.simulation.network.Network`, keyed per directed link, and is
driven exclusively by the per-link random streams the network derives from
the engine seed — a fault model on one link can never perturb the draws of
another.

The FIFO/non-FIFO discipline switch and the partition schedule are carried
by :class:`~repro.simulation.network.NetworkConfig` rather than by a channel
model: they constrain *scheduling* across messages, not the fate of one
message, and they compose with every channel model.
"""

from __future__ import annotations

import abc
import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Iterable, List, Mapping, Sequence, Tuple, Type

#: Runtime per-link state handed back to the model on every sample.  The
#: concrete type is private to each model (None for the stateless ones).
LinkState = Any


class ChannelModel(abc.ABC):
    """Per-link message fate: how long a copy takes, whether it is lost.

    Subclasses are frozen dataclasses.  The network calls
    :meth:`initial_state` once per directed link and then :meth:`sample`
    once per application message on that link, always with the same per-link
    random stream; the returned tuple holds the latency of every copy to
    deliver (empty = the message is lost on the wire).
    """

    #: Registry key used by :func:`channel_from_mapping` and ``describe()``.
    kind: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def describe(self) -> Dict[str, Any]:
        """Canonical JSON-able description (trace headers, campaign cells)."""

    def initial_state(self) -> LinkState:
        """Fresh runtime state for one directed link (default: stateless)."""
        return None

    @abc.abstractmethod
    def sample(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> Tuple[float, ...]:
        """Latencies of the copies to deliver for one message; ``()`` = lost."""

    @abc.abstractmethod
    def sample_latency(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> float:
        """One latency draw with no loss/duplication (control plane, copies)."""

    def validate_for(self, num_processes: int) -> None:
        """Reject models that cannot serve ``num_processes`` (default: any)."""


def _check_latency(base_latency: float, jitter: float) -> None:
    if base_latency < 0 or jitter < 0:
        raise ValueError("latencies must be non-negative")


def _check_probability(name: str, value: float, *, closed: bool = False) -> None:
    upper_ok = value <= 1.0 if closed else value < 1.0
    if not (0.0 <= value and upper_ok):
        bound = "[0, 1]" if closed else "[0, 1)"
        raise ValueError(f"{name} must be in {bound}")


@dataclass(frozen=True)
class UniformChannel(ChannelModel):
    """The paper's transport: base latency plus uniform jitter, i.i.d. loss.

    Byte-identical to the pre-refactor hardcoded behaviour: the same draws,
    in the same order, from the link's stream — one loss draw only when
    ``drop_probability`` is non-zero, then one latency draw.
    """

    base_latency: float = 1.0
    jitter: float = 0.5
    drop_probability: float = 0.0

    kind: ClassVar[str] = "uniform"

    def __post_init__(self) -> None:
        _check_latency(self.base_latency, self.jitter)
        _check_probability("drop probability", self.drop_probability)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "base_latency": self.base_latency,
            "jitter": self.jitter,
            "drop_probability": self.drop_probability,
        }

    def sample(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> Tuple[float, ...]:
        if self.drop_probability and rng.random() < self.drop_probability:
            return ()
        return (self.sample_latency(state, sender, receiver, rng),)

    def sample_latency(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> float:
        return self.base_latency + rng.uniform(0.0, self.jitter)


@dataclass(frozen=True)
class GilbertElliottChannel(ChannelModel):
    """Bursty correlated loss: the classic two-state Gilbert–Elliott channel.

    Each directed link is a Markov chain over a *good* and a *bad* regime
    with per-message loss probabilities ``loss_good``/``loss_bad``.  After
    every message the link transitions with probability ``p_good_to_bad``
    (from good) or ``p_bad_to_good`` (from bad), so loss arrives in bursts
    of mean length ``1 / p_bad_to_good`` messages — the adversary i.i.d.
    drops cannot express, and the one that stresses checkpoint protocols
    whose forced-checkpoint decisions depend on which message survives.
    """

    base_latency: float = 1.0
    jitter: float = 0.5
    loss_good: float = 0.0
    loss_bad: float = 0.5
    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.25

    kind: ClassVar[str] = "gilbert-elliott"

    def __post_init__(self) -> None:
        _check_latency(self.base_latency, self.jitter)
        # Total loss in one regime is legitimate (the classic Gilbert channel
        # loses everything while bad); the chain still leaves the regime.
        _check_probability("loss_good", self.loss_good, closed=True)
        _check_probability("loss_bad", self.loss_bad, closed=True)
        _check_probability("p_good_to_bad", self.p_good_to_bad, closed=True)
        _check_probability("p_bad_to_good", self.p_bad_to_good, closed=True)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "base_latency": self.base_latency,
            "jitter": self.jitter,
            "loss_good": self.loss_good,
            "loss_bad": self.loss_bad,
            "p_good_to_bad": self.p_good_to_bad,
            "p_bad_to_good": self.p_bad_to_good,
        }

    def initial_state(self) -> LinkState:
        return {"bad": False}  # every link starts in the good regime

    def sample(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> Tuple[float, ...]:
        loss = self.loss_bad if state["bad"] else self.loss_good
        lost = rng.random() < loss
        flip = self.p_bad_to_good if state["bad"] else self.p_good_to_bad
        if rng.random() < flip:
            state["bad"] = not state["bad"]
        if lost:
            return ()
        return (self.sample_latency(state, sender, receiver, rng),)

    def sample_latency(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> float:
        return self.base_latency + rng.uniform(0.0, self.jitter)


@dataclass(frozen=True)
class DuplicatingChannel(ChannelModel):
    """At-least-once delivery: extra copies of delivered messages.

    Wraps any other channel model: the inner model decides loss and the
    latency of the first copy; with probability ``duplicate_probability``
    the wire then delivers ``copies - 1`` additional copies, each with an
    independent latency draw (so a duplicate can even arrive *before* the
    copy the inner model scheduled — the network treats whichever copy
    lands first as the real receive).
    """

    channel: ChannelModel = field(default_factory=UniformChannel)
    duplicate_probability: float = 0.1
    copies: int = 2

    kind: ClassVar[str] = "duplicating"

    def __post_init__(self) -> None:
        _check_probability(
            "duplicate probability", self.duplicate_probability, closed=True
        )
        if self.copies < 2:
            raise ValueError("a duplicating channel needs copies >= 2")
        if isinstance(self.channel, DuplicatingChannel):
            raise ValueError("duplicating channels do not nest")

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "channel": self.channel.describe(),
            "duplicate_probability": self.duplicate_probability,
            "copies": self.copies,
        }

    def initial_state(self) -> LinkState:
        return self.channel.initial_state()

    def sample(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> Tuple[float, ...]:
        delivered = self.channel.sample(state, sender, receiver, rng)
        if not delivered:
            return delivered
        if rng.random() >= self.duplicate_probability:
            return delivered
        extras = tuple(
            self.channel.sample_latency(state, sender, receiver, rng)
            for _ in range(self.copies - 1)
        )
        return delivered + extras

    def sample_latency(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> float:
        return self.channel.sample_latency(state, sender, receiver, rng)

    def validate_for(self, num_processes: int) -> None:
        self.channel.validate_for(num_processes)


@dataclass(frozen=True)
class LatencyMatrixChannel(ChannelModel):
    """Per-link asymmetric base latencies: ``latencies[sender][receiver]``.

    Models a heterogeneous topology (co-located racks vs a WAN hop) where
    latency is a property of the *link*, not of the system.  Jitter and
    i.i.d. loss apply uniformly on top of every link's base.
    """

    latencies: Tuple[Tuple[float, ...], ...] = ()
    jitter: float = 0.5
    drop_probability: float = 0.0

    kind: ClassVar[str] = "latency-matrix"

    def __post_init__(self) -> None:
        if not self.latencies:
            raise ValueError("a latency matrix channel needs a latency matrix")
        size = len(self.latencies)
        for row in self.latencies:
            if len(row) != size:
                raise ValueError("the latency matrix must be square")
            for value in row:
                if value < 0:
                    raise ValueError("latencies must be non-negative")
        _check_latency(0.0, self.jitter)
        _check_probability("drop probability", self.drop_probability)

    @classmethod
    def of(
        cls,
        matrix: Sequence[Sequence[float]],
        *,
        jitter: float = 0.5,
        drop_probability: float = 0.0,
    ) -> "LatencyMatrixChannel":
        """Build from any nested sequence (freezes it into tuples)."""
        return cls(
            latencies=tuple(tuple(float(v) for v in row) for row in matrix),
            jitter=jitter,
            drop_probability=drop_probability,
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "latencies": [list(row) for row in self.latencies],
            "jitter": self.jitter,
            "drop_probability": self.drop_probability,
        }

    def sample(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> Tuple[float, ...]:
        if self.drop_probability and rng.random() < self.drop_probability:
            return ()
        return (self.sample_latency(state, sender, receiver, rng),)

    def sample_latency(
        self, state: LinkState, sender: int, receiver: int, rng: random.Random
    ) -> float:
        return self.latencies[sender][receiver] + rng.uniform(0.0, self.jitter)

    def validate_for(self, num_processes: int) -> None:
        size = len(self.latencies)
        if size < num_processes:
            raise ValueError(
                f"the latency matrix is {size}x{size} (pids 0..{size - 1}) but "
                f"the run needs capacity for {num_processes} processes — pid "
                f"{num_processes - 1} has no latency row; membership growth "
                f"must re-validate the fault model, not just construction"
            )


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Partition:
    """One timed partition of the process set, active on ``[start, end)``.

    ``groups`` lists disjoint blocks of processes; two processes can
    communicate while the partition is active iff they sit in the same
    block.  Processes not named by any block implicitly form one extra
    block together (so ``groups=((0, 1),)`` splits ``{0, 1}`` from the
    rest of the system).
    """

    start: float
    end: float
    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError("a partition needs start < end")
        if self.start < 0:
            raise ValueError("partitions cannot start before time 0")
        if not self.groups:
            raise ValueError("a partition needs at least one group")
        seen: set = set()
        for group in self.groups:
            if not group:
                raise ValueError("partition groups cannot be empty")
            for pid in group:
                if pid < 0:
                    raise ValueError("process ids must be non-negative")
                if pid in seen:
                    raise ValueError(f"process {pid} appears in two groups")
                seen.add(pid)

    def active_at(self, time: float) -> bool:
        """True while the partition is in effect (end-exclusive)."""
        return self.start <= time < self.end

    def separates(self, a: int, b: int) -> bool:
        """True if ``a`` and ``b`` sit in different blocks of this partition."""
        return self._block_of(a) != self._block_of(b)

    def _block_of(self, pid: int) -> int:
        for index, group in enumerate(self.groups):
            if pid in group:
                return index
        return -1  # the implicit block of every unlisted process

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON-able description."""
        return {
            "start": self.start,
            "end": self.end,
            "groups": [list(group) for group in self.groups],
        }


@dataclass(frozen=True)
class PartitionSchedule:
    """The timed partitions of one run (possibly overlapping)."""

    partitions: Tuple[Partition, ...] = ()

    @classmethod
    def none(cls) -> "PartitionSchedule":
        """A schedule with no partitions (the paper's connected network)."""
        return cls(())

    @classmethod
    def of(
        cls,
        entries: Iterable[Tuple[float, float, Sequence[Sequence[int]]]],
    ) -> "PartitionSchedule":
        """Build from ``(start, end, groups)`` triples."""
        return cls(
            tuple(
                Partition(
                    start=float(start),
                    end=float(end),
                    groups=tuple(tuple(int(pid) for pid in group) for group in groups),
                )
                for start, end, groups in entries
            )
        )

    @classmethod
    def from_mapping(
        cls, entries: Iterable[Mapping[str, Any]]
    ) -> "PartitionSchedule":
        """Build from JSON-style ``{"start", "end", "groups"}`` mappings."""
        return cls.of(
            (entry["start"], entry["end"], entry["groups"]) for entry in entries
        )

    def separated(self, a: int, b: int, time: float) -> bool:
        """True if any active partition severs the link ``a -> b`` at ``time``."""
        return any(
            partition.active_at(time) and partition.separates(a, b)
            for partition in self.partitions
        )

    def transitions(self) -> List[Tuple[float, str, Partition]]:
        """Every cut/heal instant, time-ordered: ``(time, kind, partition)``."""
        events: List[Tuple[float, str, Partition]] = []
        for partition in self.partitions:
            events.append((partition.start, "cut", partition))
            events.append((partition.end, "heal", partition))
        events.sort(key=lambda item: (item[0], item[1]))
        return events

    def validate_for(self, num_processes: int) -> None:
        """Reject schedules naming processes the run does not have."""
        for partition in self.partitions:
            for group in partition.groups:
                for pid in group:
                    if pid >= num_processes:
                        raise ValueError(
                            f"partition on [{partition.start}, {partition.end}) "
                            f"names process {pid} but the run has only "
                            f"{num_processes} processes (pids 0.."
                            f"{num_processes - 1})"
                        )

    def describe(self) -> List[Dict[str, Any]]:
        """Canonical JSON-able description."""
        return [partition.describe() for partition in self.partitions]

    def __bool__(self) -> bool:
        return bool(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_CHANNELS: Dict[str, Type[ChannelModel]] = {
    cls.kind: cls
    for cls in (
        UniformChannel,
        GilbertElliottChannel,
        DuplicatingChannel,
        LatencyMatrixChannel,
    )
}


def available_channels() -> List[str]:
    """Names of all registered channel-model kinds."""
    return sorted(_CHANNELS)


def register_channel(cls: Type[ChannelModel]) -> Type[ChannelModel]:
    """Register a custom channel model (usable as a decorator)."""
    if not (isinstance(cls, type) and issubclass(cls, ChannelModel)):
        raise TypeError("channel models must subclass ChannelModel")
    if "kind" not in cls.__dict__:
        raise ValueError(f"{cls.__name__} must define its own `kind` to be registered")
    _CHANNELS[cls.kind] = cls
    return cls


def channel_from_mapping(document: Mapping[str, Any]) -> ChannelModel:
    """Build a channel model from its :meth:`ChannelModel.describe` mapping.

    The inverse of ``describe()``: campaign specs written as JSON use this
    to put fault models on the ``networks`` grid axis.
    """
    params = dict(document)
    kind = params.pop("kind", None)
    if kind is None:
        raise ValueError("a channel description needs a 'kind' key")
    cls = _CHANNELS.get(str(kind))
    if cls is None:
        raise ValueError(
            f"unknown channel kind {kind!r}; available: {', '.join(available_channels())}"
        )
    if cls is DuplicatingChannel and "channel" in params:
        params["channel"] = channel_from_mapping(params["channel"])
    if cls is LatencyMatrixChannel and "latencies" in params:
        params["latencies"] = tuple(
            tuple(float(v) for v in row) for row in params["latencies"]
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise ValueError(f"bad parameters for channel {kind!r}: {exc}") from None


def channel_label(description: Mapping[str, Any]) -> str:
    """A compact, distinct label for a channel description (table group keys).

    Renders the kind plus every parameter that differs from the model's
    dataclass default — ``gilbert-elliott(loss_bad=0.9)`` — so two different
    parameterizations of the same model never share a label (and hence never
    silently pool into one aggregation group), while a default-parameter
    model labels as just its kind.  Nested channels (duplication) render
    recursively; latency matrices render as a content digest (the full
    matrix would drown the table).
    """
    kind = str(description.get("kind", "?"))
    cls = _CHANNELS.get(kind)
    defaults: Dict[str, Any] = {}
    if cls is not None:
        for field_info in dataclasses.fields(cls):
            if field_info.default is not dataclasses.MISSING:
                defaults[field_info.name] = field_info.default
            elif field_info.default_factory is not dataclasses.MISSING:
                defaults[field_info.name] = field_info.default_factory()
    parts: List[str] = []
    for key in sorted(description):
        if key == "kind":
            continue
        value = description[key]
        if key == "channel" and isinstance(value, Mapping):
            default = defaults.get("channel")
            if isinstance(default, ChannelModel) and default.describe() == dict(value):
                continue
            parts.append(f"channel={channel_label(value)}")
            continue
        if key == "latencies":
            canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
            digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:6]
            parts.append(f"latencies#{digest}")
            continue
        default = defaults.get(key, dataclasses.MISSING)
        if default is not dataclasses.MISSING and value == default:
            continue
        parts.append(f"{key}={value}")
    return kind + (f"({','.join(parts)})" if parts else "")


__all__ = [
    "ChannelModel",
    "UniformChannel",
    "GilbertElliottChannel",
    "DuplicatingChannel",
    "LatencyMatrixChannel",
    "Partition",
    "PartitionSchedule",
    "available_channels",
    "channel_from_mapping",
    "channel_label",
    "register_channel",
]
