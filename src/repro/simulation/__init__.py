"""Deterministic discrete-event simulation substrate.

The paper's system model — asynchronous processes, message passing with loss
and reordering, crash failures with stable storage — is realised here as a
seeded, deterministic discrete-event simulation:

* :mod:`engine` — the event queue and simulated clock;
* :mod:`network` — point-to-point channels with latency, jitter, loss and the
  ability to drop in-flight messages during recovery sessions;
* :mod:`node` — a simulated process: application behaviour, checkpointing
  protocol, dependency vector, stable storage and garbage collector;
* :mod:`trace` — the global execution recorder that turns a run into an
  :class:`repro.causality.EventLog` / :class:`repro.ccp.CCP` for analysis;
* :mod:`workloads` — workload generators (random peer-to-peer, client/server,
  pipeline, ring, the Figure-5 worst case, and fully scripted schedules);
* :mod:`failures` — crash schedules;
* :mod:`runner` — configuration and orchestration of complete experiments.
"""

from repro.simulation.engine import SimulationEngine, StopReason
from repro.simulation.failures import FailureSchedule
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.node import SimulationNode
from repro.simulation.runner import SimulationConfig, SimulationResult, SimulationRunner
from repro.simulation.trace import TraceRecorder
from repro.simulation.workloads import (
    Action,
    ActionKind,
    ClientServerWorkload,
    PipelineWorkload,
    RingWorkload,
    ScriptedWorkload,
    UniformRandomWorkload,
    Workload,
    WorstCaseWorkload,
    available_workloads,
    make_workload,
    register_workload,
    workload_class,
)

__all__ = [
    "Action",
    "ActionKind",
    "ClientServerWorkload",
    "FailureSchedule",
    "Network",
    "NetworkConfig",
    "PipelineWorkload",
    "RingWorkload",
    "ScriptedWorkload",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationNode",
    "SimulationResult",
    "SimulationRunner",
    "StopReason",
    "TraceRecorder",
    "UniformRandomWorkload",
    "Workload",
    "WorstCaseWorkload",
    "available_workloads",
    "make_workload",
    "register_workload",
    "workload_class",
]
