"""Deterministic discrete-event simulation substrate.

The paper's system model — asynchronous processes, message passing with loss
and reordering, crash failures with stable storage — is realised here as a
seeded, deterministic discrete-event simulation:

* :mod:`engine` — the event queue and simulated clock;
* :mod:`channels` — declarative network fault models: the paper's uniform
  channel, Gilbert–Elliott bursty loss, duplication, per-link latency
  matrices and timed partition schedules;
* :mod:`network` — point-to-point channels driven by a pluggable
  :class:`~repro.simulation.channels.ChannelModel`, with per-link random
  streams, an optional FIFO discipline and the ability to drop in-flight
  messages during recovery sessions;
* :mod:`node` — a simulated process: application behaviour, checkpointing
  protocol, dependency vector, stable storage and garbage collector;
* :mod:`trace` — the global execution recorder that turns a run into an
  :class:`repro.causality.EventLog` / :class:`repro.ccp.CCP` for analysis;
* :mod:`workloads` — workload generators (random peer-to-peer, client/server,
  pipeline, ring, the Figure-5 worst case, and fully scripted schedules);
* :mod:`failures` — crash schedules;
* :mod:`runner` — configuration and orchestration of complete experiments.
"""

from repro.simulation.channels import (
    ChannelModel,
    DuplicatingChannel,
    GilbertElliottChannel,
    LatencyMatrixChannel,
    Partition,
    PartitionSchedule,
    UniformChannel,
    available_channels,
    channel_from_mapping,
    register_channel,
)
from repro.simulation.engine import SimulationEngine, StopReason
from repro.simulation.failures import FailureModelSpec, FailureSchedule
from repro.simulation.network import Network, NetworkConfig, network_config_from_mapping
from repro.simulation.node import SimulationNode
from repro.simulation.runner import SimulationConfig, SimulationResult, SimulationRunner
from repro.simulation.trace import TraceRecorder
from repro.simulation.workloads import (
    Action,
    ActionKind,
    ClientServerWorkload,
    PipelineWorkload,
    RingWorkload,
    ScriptedWorkload,
    UniformRandomWorkload,
    Workload,
    WorstCaseWorkload,
    available_workloads,
    make_workload,
    register_workload,
    workload_class,
)

__all__ = [
    "Action",
    "ActionKind",
    "ChannelModel",
    "ClientServerWorkload",
    "DuplicatingChannel",
    "FailureModelSpec",
    "FailureSchedule",
    "GilbertElliottChannel",
    "LatencyMatrixChannel",
    "Network",
    "NetworkConfig",
    "Partition",
    "PartitionSchedule",
    "PipelineWorkload",
    "RingWorkload",
    "ScriptedWorkload",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationNode",
    "SimulationResult",
    "SimulationRunner",
    "StopReason",
    "TraceRecorder",
    "UniformChannel",
    "UniformRandomWorkload",
    "Workload",
    "WorstCaseWorkload",
    "available_channels",
    "available_workloads",
    "channel_from_mapping",
    "make_workload",
    "network_config_from_mapping",
    "register_channel",
    "register_workload",
    "workload_class",
]
