"""Experiment orchestration: configuration, execution and results.

:class:`SimulationRunner` wires together the engine, network, trace recorder,
nodes (protocol + collector + storage), workload, failure injection and the
optional online audits, runs the experiment and returns a
:class:`SimulationResult` with everything the analysis layer and the
benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.traceio.writer import TraceWriter

from repro.ccp.pattern import CCP
from repro.core.optimality import GcAudit, audit_garbage_collection
from repro.gc.registry import make_collector
from repro.membership import MembershipSchedule
from repro.protocols.registry import make_protocol
from repro.recovery.manager import RecoveryManager
from repro.simulation.engine import SimulationEngine
from repro.simulation.failures import FailureSchedule
from repro.simulation.network import AppMessage, Network, NetworkConfig, PartitionEvent
from repro.simulation.node import SimulationNode
from repro.simulation.trace import TraceRecorder
from repro.simulation.workloads import Action, ActionKind, Workload
from repro.storage.stable import StableStorage
from repro.transport.sim import SimTransport


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to reproduce one run."""

    num_processes: int
    duration: float
    workload: Workload
    protocol: str = "fdas"
    collector: str = "rdt-lgc"
    collector_options: Mapping[str, Any] = field(default_factory=dict)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    failures: FailureSchedule = field(default_factory=FailureSchedule.none)
    seed: int = 0
    sample_interval: Optional[float] = None
    audit: str = "off"
    keep_final_ccp: bool = False
    #: Analysis mode of the trace recorder: ``"off"`` (classic full
    #: recompute), ``"on"`` (delta-maintained checkpoint knowledge) or
    #: ``"check"`` (both, cross-asserted — used by the equivalence tests).
    incremental_analyses: str = "off"
    #: When True, collectors' obsolescence decisions are fed back to the
    #: trace recorder, which compacts garbage checkpoint intervals out of
    #: the event log (implies ``incremental_analyses="on"``).  Persisted
    #: traces are unaffected: sinks observe the full history.
    prune_trace: bool = False
    #: When set, the run streams a replayable trace artifact to this path
    #: (see :mod:`repro.traceio`); ``trace_meta`` is free-form provenance
    #: persisted in the trace header (campaign cell identity and the like).
    trace_path: Optional[str] = None
    trace_meta: Mapping[str, Any] = field(default_factory=dict)
    #: Execution backend: ``"sim"`` (the discrete-event simulator) or
    #: ``"live"`` (real OS processes over UDP — see :mod:`repro.live`).
    #: Provenance (trace headers, campaign cell identity) mentions the
    #: backend only when it is not the default, so every pre-existing
    #: simulated artifact keeps its identity.
    backend: str = "sim"
    #: Membership events of the run.  ``num_processes`` is the *capacity*:
    #: pids with a scheduled join are dormant until their join time (their
    #: initial checkpoint ``s_i^0`` is stored when they join); a leave
    #: permanently retires the process and makes all its checkpoints
    #: garbage.  The default (no events) is the paper's static membership;
    #: like ``backend``, provenance mentions membership only when dynamic.
    membership: MembershipSchedule = field(default_factory=MembershipSchedule.static)

    def __post_init__(self) -> None:
        if self.num_processes <= 0:
            raise ValueError("a simulation needs at least one process")
        if self.duration <= 0:
            raise ValueError("the duration must be positive")
        if self.backend not in ("sim", "live"):
            raise ValueError("backend must be one of 'sim', 'live'")
        if self.audit not in ("off", "safety", "full"):
            raise ValueError("audit must be one of 'off', 'safety', 'full'")
        if self.incremental_analyses not in ("off", "on", "check"):
            raise ValueError(
                "incremental_analyses must be one of 'off', 'on', 'check'"
            )
        # Fail fast on fault models that cannot serve this process count
        # (undersized latency matrices, partitions naming unknown pids).
        self.network.validate_for(self.num_processes)
        self.membership.validate_for(self.num_processes)
        if self.membership and self.backend != "sim":
            raise ValueError(
                "dynamic membership runs on the 'sim' backend only"
            )
        for event in self.membership:
            if event.time >= self.duration:
                raise ValueError(
                    f"membership {event.kind} of process {event.pid} at "
                    f"{event.time} falls outside the run duration "
                    f"{self.duration}"
                )


@dataclass(frozen=True)
class StorageSample:
    """Storage occupancy at one sampling instant."""

    time: float
    retained_per_process: Tuple[int, ...]

    @property
    def total(self) -> int:
        """Total number of retained stable checkpoints across all processes."""
        return sum(self.retained_per_process)


@dataclass(frozen=True)
class RecoveryRecord:
    """Summary of one recovery session."""

    time: float
    faulty: Tuple[int, ...]
    recovery_line: Tuple[int, ...]
    rolled_back_processes: int
    lost_general_checkpoints: int
    collected_during_recovery: int


@dataclass(frozen=True)
class AuditRecord:
    """Result of one online audit."""

    time: float
    label: str
    is_safe: bool
    is_optimal: bool
    safety_violations: int
    optimality_violations: int


@dataclass
class SimulationResult:
    """Everything measured during one run."""

    config: SimulationConfig
    protocol: str
    collector: str
    duration: float
    basic_checkpoints: int
    forced_checkpoints: int
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    control_messages: int
    total_collected: int
    retained_final: Tuple[int, ...]
    max_retained_per_process: Tuple[int, ...]
    total_stored: int
    samples: List[StorageSample]
    recoveries: List[RecoveryRecord]
    audits: List[AuditRecord]
    messages_duplicated: int = 0
    messages_blocked_by_partition: int = 0
    final_ccp: Optional[CCP] = None

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def total_checkpoints(self) -> int:
        """All checkpoints taken (basic plus forced)."""
        return self.basic_checkpoints + self.forced_checkpoints

    @property
    def total_retained_final(self) -> int:
        """Stable checkpoints left on storage at the end of the run."""
        return sum(self.retained_final)

    @property
    def max_retained_any_process(self) -> int:
        """The worst per-process high-water mark observed."""
        return max(self.max_retained_per_process) if self.max_retained_per_process else 0

    @property
    def peak_total_retained(self) -> int:
        """The largest sampled global storage occupancy."""
        if not self.samples:
            return self.total_retained_final
        return max(sample.total for sample in self.samples)

    @property
    def collection_ratio(self) -> float:
        """Fraction of stored checkpoints eventually collected."""
        if self.total_stored == 0:
            return 0.0
        return self.total_collected / self.total_stored

    @property
    def all_audits_safe(self) -> bool:
        """True if no audit observed a safety violation."""
        return all(audit.is_safe for audit in self.audits)

    @property
    def all_audits_optimal(self) -> bool:
        """True if no audit observed an optimality violation."""
        return all(audit.is_optimal for audit in self.audits)

    def metrics_dict(self) -> Dict[str, float]:
        """The scalar per-run metrics persisted by campaign stores and traces.

        This is the canonical extraction: the campaign executor's
        ``cell_metrics`` delegates here, and
        :func:`repro.traceio.format.metrics_from_record` mirrors it key for
        key so a persisted trace can reproduce campaign aggregates without
        re-simulation.
        """
        return {
            "checkpoints": self.total_checkpoints,
            "basic": self.basic_checkpoints,
            "forced": self.forced_checkpoints,
            "messages": self.messages_sent,
            "control": self.control_messages,
            "collected": self.total_collected,
            "final_retained": self.total_retained_final,
            "max_per_process": self.max_retained_any_process,
            "peak_retained": self.peak_total_retained,
            "collection_ratio": self.collection_ratio,
            "recoveries": len(self.recoveries),
            "duplicated": self.messages_duplicated,
            "partition_blocked": self.messages_blocked_by_partition,
        }

    def summary(self) -> Dict[str, Any]:
        """A flat dictionary of the headline numbers (used by report tables)."""
        return {
            "protocol": self.protocol,
            "collector": self.collector,
            "processes": self.config.num_processes,
            "checkpoints": self.total_checkpoints,
            "forced": self.forced_checkpoints,
            "messages": self.messages_sent,
            "control_messages": self.control_messages,
            "collected": self.total_collected,
            "retained_final": self.total_retained_final,
            "max_retained_per_process": self.max_retained_any_process,
            "peak_total_retained": self.peak_total_retained,
            "collection_ratio": round(self.collection_ratio, 4),
            "recoveries": len(self.recoveries),
        }


class SimulationRunner:
    """Builds and runs one experiment from a :class:`SimulationConfig`."""

    def __init__(self, config: SimulationConfig) -> None:
        if config.backend != "sim":
            raise ValueError(
                f"SimulationRunner drives the 'sim' backend only; use "
                f"run_simulation() to dispatch backend {config.backend!r}"
            )
        self._config = config
        self._engine = SimulationEngine(seed=config.seed)
        self._network = Network(self._engine, config.network)
        self._transport = SimTransport(self._engine, self._network)
        self._trace = TraceRecorder(
            config.num_processes,
            incremental_analyses=config.incremental_analyses,
            prune=config.prune_trace,
            # Static membership passes None so the recorder is bit-for-bit
            # the pre-membership one; joiners start dormant otherwise.
            initial_members=(
                config.membership.initial_members(config.num_processes)
                if config.membership
                else None
            ),
        )
        self._recovery_manager = RecoveryManager()
        self._nodes: List[SimulationNode] = []
        self._samples: List[StorageSample] = []
        self._recoveries: List[RecoveryRecord] = []
        self._audits: List[AuditRecord] = []
        self._writer: Optional["TraceWriter"] = None
        if config.trace_path is not None:
            # Imported lazily: repro.traceio sits above the simulation layer.
            from repro.traceio.writer import TraceWriter

            self._writer = TraceWriter(config.trace_path, config)
            self._trace.attach_sink(self._writer)
        try:
            self._build_nodes()
            self._network.on_app_delivery(self._deliver_app)
            self._network.on_duplicate_delivery(self._deliver_duplicate)
            self._network.on_control_delivery(self._deliver_control)
            if self._writer is not None:
                self._network.on_partition_event(self._record_partition_event)
        except BaseException as exc:
            # Seal the trace instead of leaking a header-only artifact when
            # construction fails (unknown collector name, bad workload, …).
            if self._writer is not None and not self._writer.closed:
                self._writer.abort(f"{type(exc).__name__}: {exc}")
            raise

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        config = self._config
        for pid in range(config.num_processes):
            storage = StableStorage(pid)
            protocol = make_protocol(config.protocol, pid, config.num_processes)
            collector = make_collector(
                config.collector,
                pid,
                config.num_processes,
                storage,
                **dict(config.collector_options),
            )
            if config.prune_trace:
                collector.attach_elimination_listener(
                    lambda index, pid=pid: self._trace.record_elimination(pid, index)
                )
            node = SimulationNode(
                pid,
                config.num_processes,
                transport=self._transport,
                trace=self._trace,
                protocol=protocol,
                collector=collector,
                storage=storage,
            )
            self._nodes.append(node)

    @property
    def nodes(self) -> List[SimulationNode]:
        """The simulated processes (useful for tests and custom drivers)."""
        return self._nodes

    @property
    def engine(self) -> SimulationEngine:
        """The simulation engine."""
        return self._engine

    @property
    def transport(self) -> SimTransport:
        """The transport facade the nodes run on."""
        return self._transport

    @property
    def network(self) -> Network:
        """The shared transport (useful for custom drivers and the explorer)."""
        return self._network

    @property
    def trace(self) -> TraceRecorder:
        """The global trace recorder."""
        return self._trace

    @property
    def recoveries(self) -> List[RecoveryRecord]:
        """The recovery sessions executed so far (in order)."""
        return self._recoveries

    # ------------------------------------------------------------------
    # Delivery plumbing
    # ------------------------------------------------------------------
    def _deliver_app(self, message: AppMessage) -> None:
        self._nodes[message.receiver].deliver(message)

    def _deliver_duplicate(self, message: AppMessage) -> None:
        self._nodes[message.receiver].deliver_duplicate(message)

    def _deliver_control(self, sender: int, receiver: int, payload: Any) -> None:
        self._nodes[receiver].collector.on_control_message(
            sender, payload, self._engine.now
        )

    def _record_partition_event(self, event: PartitionEvent) -> None:
        time, kind, groups = event
        assert self._writer is not None
        self._writer.write_partition_event(kind, time, groups)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the configured experiment and return its results.

        With :attr:`SimulationConfig.trace_path` set, the run's trace streams
        to disk as it happens and is sealed with a footer on completion; a
        run that raises seals the trace as ``aborted`` instead (still
        replayable up to the failure point) and re-raises.
        """
        try:
            result = self._run()
        except BaseException as exc:
            if self._writer is not None and not self._writer.closed:
                self._writer.abort(f"{type(exc).__name__}: {exc}")
            raise
        if self._writer is not None:
            self._writer.finalize(
                result,
                final_volatile_dvs=[node.current_dv for node in self._nodes],
            )
        return result

    def _run(self) -> SimulationResult:
        config = self._config
        members = config.membership.initial_members(config.num_processes)
        for node in self._nodes:
            # Joiners are dormant: their initial checkpoint s_i^0 is stored
            # at join time, not at time 0.
            if node.pid in members:
                node.start()
        for event in config.membership:
            if event.kind == "join":
                handler = lambda pid=event.pid: self._handle_join(pid)
            else:
                handler = lambda pid=event.pid: self._handle_leave(pid)
            self._engine.schedule_at(event.time, handler)
        actions = config.workload.generate(
            config.num_processes, config.duration, self._engine.rng
        )
        for action in actions:
            self._engine.schedule_at(action.time, self._make_action_handler(action))
        for crash in config.failures:
            self._engine.schedule_at(
                crash.time, lambda pid=crash.pid: self._handle_crash(pid)
            )
        sample_interval = config.sample_interval
        if sample_interval is None:
            sample_interval = max(config.duration / 50.0, 1.0)
        self._schedule_sampling(sample_interval)
        self._engine.run(until=config.duration)
        self._take_sample()
        if config.audit != "off":
            self._run_audit("final")
        return self._build_result()

    def _make_action_handler(self, action: Action) -> Callable[[], None]:
        node = self._nodes[action.pid]
        if not self._config.membership:
            if action.kind is ActionKind.SEND:
                return lambda: node.send_message(action.target)
            return lambda: node.take_checkpoint(forced=False)
        # Dynamic membership: workloads draw actions over the full capacity,
        # so actions touching a pid that is dormant or departed at fire time
        # simply do not happen (the application knows its membership).
        members = self._trace.membership
        if action.kind is ActionKind.SEND:

            def send() -> None:
                if members.is_member(action.pid) and members.is_member(action.target):
                    node.send_message(action.target)

            return send

        def checkpoint() -> None:
            if members.is_member(action.pid):
                node.take_checkpoint(forced=False)

        return checkpoint

    # ------------------------------------------------------------------
    # Sampling and audits
    # ------------------------------------------------------------------
    def _schedule_sampling(self, interval: float) -> None:
        def sample_and_reschedule() -> None:
            self._take_sample()
            if self._engine.now + interval <= self._config.duration:
                self._engine.schedule_after(interval, sample_and_reschedule)

        self._engine.schedule_after(interval, sample_and_reschedule)

    def _take_sample(self) -> None:
        sample = StorageSample(
            time=self._engine.now,
            retained_per_process=tuple(
                node.storage.retained_count() for node in self._nodes
            ),
        )
        self._samples.append(sample)
        if self._writer is not None:
            self._writer.write_sample(sample.time, sample.retained_per_process)

    def current_ccp(self) -> CCP:
        """The CCP of the execution recorded so far.

        Served from the trace recorder's incremental substrate: the pattern
        (and its attached analysis cache) is only rebuilt when the recorded
        execution actually changed since the previous call.
        """
        volatile = {node.pid: node.current_dv for node in self._nodes}
        return self._trace.ccp(volatile_dvs=volatile)

    def _run_audit(self, label: str) -> GcAudit:
        ccp = self.current_ccp()
        retained = {node.pid: node.storage.retained_indices() for node in self._nodes}
        audit = audit_garbage_collection(
            ccp, retained, require_optimality=self._config.audit == "full"
        )
        self._audits.append(
            AuditRecord(
                time=self._engine.now,
                label=label,
                is_safe=audit.is_safe,
                is_optimal=audit.is_optimal,
                safety_violations=len(audit.safety_violations),
                optimality_violations=len(audit.optimality_violations),
            )
        )
        return audit

    # ------------------------------------------------------------------
    # Membership events
    # ------------------------------------------------------------------
    def _handle_join(self, pid: int) -> None:
        """Process ``pid`` joins the membership now.

        The recorder's membership view admits the pid first (rejecting
        double joins), the fault model is re-validated against the grown
        member range, and the node stores its initial checkpoint
        ``s_pid^0`` — the paper's model requires every process to begin
        with a stable checkpoint, which for a joiner happens at join time.
        """
        self._trace.record_join(pid, self._engine.now)
        self._network.ensure_capacity(self._trace.num_processes)
        self._nodes[pid].start()

    def _handle_leave(self, pid: int) -> None:
        """Process ``pid`` permanently leaves the membership now.

        Departure order matters: the node retires first (eliminating every
        stable checkpoint through the collector, so elimination listeners
        fire while the pid is still a member), in-flight messages to and
        from the leaver are discarded, the trace records the leave, and
        surviving collectors hear about the departure last.
        """
        self._nodes[pid].depart()
        self._network.drop_in_flight_for(pid)
        self._trace.record_leave(pid, self._engine.now)
        members = self._trace.membership
        for peer in self._nodes:
            if peer.pid != pid and members.is_member(peer.pid):
                peer.collector.on_peer_departure(pid)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def inject_crash(self, pid: int) -> None:
        """Crash ``pid`` now and run the full recovery session.

        Public entry point for external drivers (the schedule-space
        explorer); scheduled failure injection goes through the same path.
        """
        self._handle_crash(pid)

    def _handle_crash(self, pid: int) -> None:
        if self._config.membership and not self._trace.membership.is_member(pid):
            # A dormant process has no state to lose and a departed one can
            # never be faulty: the scheduled crash does not happen.
            return
        node = self._nodes[pid]
        if node.storage.retained_count() == 0:
            raise RuntimeError(f"process {pid} crashed before storing any checkpoint")
        node.crash()
        self._network.drop_in_flight()
        ccp = self.current_ccp()
        plan = self._recovery_manager.plan(ccp, [pid])
        collected = 0
        members = self._trace.membership
        for process in self._nodes:
            if process.pid != pid and not members.is_member(process.pid):
                # Dormant and departed processes take no part in the
                # recovery session (their line component is their volatile
                # index by construction).
                continue
            directive = plan.rollback_for(process.pid)
            if directive is not None:
                collected += len(
                    process.apply_rollback(
                        directive.rollback_index, plan.last_interval_vector
                    )
                )
            else:
                collected += len(
                    process.apply_peer_rollback(plan.last_interval_vector)
                )
        self._trace.apply_recovery(plan)
        lost = sum(
            ccp.volatile_index(p) - plan.recovery_line.indices[p]
            for p in range(self._config.num_processes)
        )
        self._recoveries.append(
            RecoveryRecord(
                time=self._engine.now,
                faulty=(pid,),
                recovery_line=plan.recovery_line.indices,
                rolled_back_processes=len(plan.rollbacks),
                lost_general_checkpoints=lost,
                collected_during_recovery=collected,
            )
        )
        if self._config.audit != "off":
            self._run_audit(f"after-recovery@{self._engine.now:.1f}")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _build_result(self) -> SimulationResult:
        config = self._config
        stats = self._network.stats
        final_ccp = self.current_ccp() if config.keep_final_ccp else None
        control_messages = stats.control_sent
        return SimulationResult(
            config=config,
            protocol=config.protocol,
            collector=config.collector,
            duration=config.duration,
            basic_checkpoints=sum(node.basic_checkpoints for node in self._nodes),
            forced_checkpoints=sum(node.forced_checkpoints for node in self._nodes),
            messages_sent=stats.app_sent,
            messages_delivered=stats.app_delivered,
            messages_dropped=stats.app_dropped,
            messages_duplicated=stats.app_duplicates_delivered,
            messages_blocked_by_partition=stats.app_blocked_by_partition,
            control_messages=control_messages,
            total_collected=sum(
                node.storage.total_eliminated() for node in self._nodes
            ),
            retained_final=tuple(
                node.storage.retained_count() for node in self._nodes
            ),
            max_retained_per_process=tuple(
                node.storage.max_retained() for node in self._nodes
            ),
            total_stored=sum(node.storage.total_stored() for node in self._nodes),
            samples=self._samples,
            recoveries=self._recoveries,
            audits=self._audits,
            final_ccp=final_ccp,
        )


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Run ``config`` on its selected backend and return the result.

    ``backend="sim"`` builds a :class:`SimulationRunner`; ``backend="live"``
    dispatches to :func:`repro.live.run_live` (imported lazily —
    :mod:`repro.live` sits above the simulation layer), which executes the
    run on real OS processes and returns an equivalent result assembled from
    the merged trace artifact.
    """
    if config.backend == "live":
        from repro.live import run_live

        return run_live(config).result
    return SimulationRunner(config).run()
