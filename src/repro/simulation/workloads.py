"""Workload generators.

A workload describes *what the application does*: when each process sends
messages to whom and when it takes basic checkpoints.  Workloads generate a
deterministic list of timed :class:`Action` records from a seeded random
generator; the runner schedules them on the engine.  Forced checkpoints are
not part of the workload — they are decided online by the checkpointing
protocol.

Provided workloads:

* :class:`UniformRandomWorkload` — every process messages uniformly random
  peers and takes basic checkpoints at exponential intervals (the generic
  workload of the evaluation study);
* :class:`ClientServerWorkload` — clients call a single server, which answers;
  models the asymmetric communication the paper's motivation mentions;
* :class:`PipelineWorkload` — a linear pipeline of stages, stage ``i`` feeding
  stage ``i+1``;
* :class:`RingWorkload` — a token-style ring, each process feeding its
  successor;
* :class:`WorstCaseWorkload` — the round-based schedule that drives RDT-LGC to
  its ``n`` retained checkpoints per process bound (Figure 5);
* :class:`ScriptedWorkload` — an explicit list of actions, used to reproduce
  the paper's hand-drawn figures event for event.
"""

from __future__ import annotations

import abc
import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type


class ActionKind(enum.Enum):
    """What a workload action asks a process to do."""

    SEND = "send"
    CHECKPOINT = "checkpoint"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Action:
    """A timed application action.

    Actions are deliberately *not* ``order=True``: the dataclass comparison
    would fall through to the :class:`ActionKind` enum (unorderable —
    ``TypeError``) and to ``Optional[int]`` targets (``None`` vs ``int``)
    whenever two actions share ``(time, pid)``.  Ordering is explicit via
    :meth:`Action.sort_key` / :meth:`Workload._sorted` instead.
    """

    time: float
    pid: int
    kind: ActionKind
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is ActionKind.SEND and self.target is None:
            raise ValueError("SEND actions need a target process")

    def sort_key(self) -> Tuple[float, int, str, int]:
        """The canonical schedule order: time, process, then a deterministic
        kind/target tiebreak so equal-timestamp sorts are stable across runs."""
        return (self.time, self.pid, self.kind.value, -1 if self.target is None else self.target)


class Workload(abc.ABC):
    """Base class for workload generators."""

    name = "abstract"

    @abc.abstractmethod
    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        """Produce the timed actions of one run."""

    @staticmethod
    def _sorted(actions: List[Action]) -> List[Action]:
        return sorted(actions, key=Action.sort_key)


class UniformRandomWorkload(Workload):
    """Peer-to-peer traffic with random partners and random basic checkpoints."""

    name = "uniform-random"

    def __init__(
        self,
        *,
        mean_message_gap: float = 2.0,
        mean_checkpoint_gap: float = 10.0,
    ) -> None:
        if mean_message_gap <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("mean gaps must be positive")
        self._message_gap = mean_message_gap
        self._checkpoint_gap = mean_checkpoint_gap

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        for pid in range(num_processes):
            time = rng.expovariate(1.0 / self._message_gap)
            while time < duration and num_processes > 1:
                target = rng.randrange(num_processes - 1)
                if target >= pid:
                    target += 1
                actions.append(Action(time, pid, ActionKind.SEND, target))
                time += rng.expovariate(1.0 / self._message_gap)
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class ClientServerWorkload(Workload):
    """Clients send requests to process 0, which answers each client."""

    name = "client-server"

    def __init__(
        self,
        *,
        mean_request_gap: float = 3.0,
        server_think_time: float = 1.0,
        mean_checkpoint_gap: float = 12.0,
    ) -> None:
        if mean_request_gap <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("mean gaps must be positive")
        if server_think_time < 0:
            raise ValueError("the server think time must be non-negative")
        self._request_gap = mean_request_gap
        self._think_time = server_think_time
        self._checkpoint_gap = mean_checkpoint_gap

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        if num_processes < 2:
            raise ValueError("the client/server workload needs at least two processes")
        actions: List[Action] = []
        server = 0
        for client in range(1, num_processes):
            time = rng.expovariate(1.0 / self._request_gap)
            while time < duration:
                actions.append(Action(time, client, ActionKind.SEND, server))
                reply_time = time + self._think_time + rng.uniform(0.0, self._think_time)
                if reply_time < duration:
                    actions.append(Action(reply_time, server, ActionKind.SEND, client))
                time += rng.expovariate(1.0 / self._request_gap)
        for pid in range(num_processes):
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class PipelineWorkload(Workload):
    """A linear pipeline: stage ``i`` periodically feeds stage ``i + 1``."""

    name = "pipeline"

    def __init__(
        self,
        *,
        stage_period: float = 2.0,
        mean_checkpoint_gap: float = 10.0,
    ) -> None:
        if stage_period <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("workload parameters must be positive")
        self._stage_period = stage_period
        self._checkpoint_gap = mean_checkpoint_gap

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        for pid in range(num_processes - 1):
            time = self._stage_period * (1.0 + 0.1 * pid)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.SEND, pid + 1))
                time += self._stage_period
        for pid in range(num_processes):
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class RingWorkload(Workload):
    """Each process periodically sends to its successor on a ring."""

    name = "ring"

    def __init__(
        self,
        *,
        period: float = 3.0,
        mean_checkpoint_gap: float = 10.0,
    ) -> None:
        if period <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("workload parameters must be positive")
        self._period = period
        self._checkpoint_gap = mean_checkpoint_gap

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        for pid in range(num_processes):
            time = self._period * (1.0 + pid / max(num_processes, 1))
            while time < duration:
                actions.append(
                    Action(time, pid, ActionKind.SEND, (pid + 1) % num_processes)
                )
                time += self._period
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class WorstCaseWorkload(Workload):
    """The schedule that drives every process to retain ``n`` stable checkpoints.

    Round ``k`` (``k = 1 .. n``): every process takes a basic checkpoint, then
    process ``k - 1`` broadcasts one message to every other process.  Each
    broadcast carries new causal information only about its sender, so at the
    receiver it pins (via ``UC``) the receiver's *current* last checkpoint —
    a different one each round.  A final round of checkpoints leaves every
    process retaining exactly ``n`` stable checkpoints, the paper's tight
    per-process bound (Figure 5); the transient global occupancy during that
    final round is ``n (n + 1)``.
    """

    name = "worst-case"

    def __init__(self, *, round_length: float = 10.0) -> None:
        if round_length <= 0:
            raise ValueError("round length must be positive")
        self._round_length = round_length

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        for round_index in range(1, num_processes + 1):
            base = round_index * self._round_length
            for pid in range(num_processes):
                actions.append(Action(base, pid, ActionKind.CHECKPOINT))
            sender = round_index - 1
            for pid in range(num_processes):
                if pid != sender:
                    actions.append(
                        Action(base + self._round_length / 2, sender, ActionKind.SEND, pid)
                    )
        final = (num_processes + 1) * self._round_length
        for pid in range(num_processes):
            actions.append(Action(final, pid, ActionKind.CHECKPOINT))
        return self._sorted(actions)

    def required_duration(self, num_processes: int) -> float:
        """The simulated time needed to play the full schedule."""
        return (num_processes + 2) * self._round_length


class ScriptedWorkload(Workload):
    """An explicit, fully deterministic list of actions."""

    name = "scripted"

    def __init__(self, actions: Sequence[Action]) -> None:
        self._actions = list(actions)

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        for action in self._actions:
            if action.pid >= num_processes:
                raise ValueError(
                    f"scripted action references process {action.pid} but the "
                    f"run has only {num_processes} processes"
                )
        return self._sorted(list(self._actions))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
# The campaign layer describes workloads declaratively — ``(name, params)``
# rather than instances — so that sweep cells stay picklable and hashable.
# Only generative workloads are registered: :class:`ScriptedWorkload` needs an
# explicit action list and cannot be built from scalar parameters.
_WORKLOADS: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        UniformRandomWorkload,
        ClientServerWorkload,
        PipelineWorkload,
        RingWorkload,
        WorstCaseWorkload,
    )
}


def available_workloads() -> List[str]:
    """Names of all registered workload generators."""
    return sorted(_WORKLOADS)


def workload_class(name: str) -> Type[Workload]:
    """The workload class registered under ``name``."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(_WORKLOADS))}"
        ) from None


def make_workload(name: str, **params: object) -> Workload:
    """Instantiate the workload registered under ``name``."""
    return workload_class(name)(**params)  # type: ignore[arg-type]


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Register a custom workload class (usable as a decorator)."""
    if not issubclass(cls, Workload):
        raise TypeError("workloads must subclass Workload")
    if "name" not in cls.__dict__:
        # An inherited name would silently shadow the parent's registration
        # (campaign specs naming it would then build the subclass).
        raise ValueError(
            f"{cls.__name__} must define its own `name` to be registered"
        )
    _WORKLOADS[cls.name] = cls
    return cls
