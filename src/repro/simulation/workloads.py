"""Workload generators.

A workload describes *what the application does*: when each process sends
messages to whom and when it takes basic checkpoints.  Workloads generate a
deterministic list of timed :class:`Action` records from a seeded random
generator; the runner schedules them on the engine.  Forced checkpoints are
not part of the workload — they are decided online by the checkpointing
protocol.

Provided workloads:

* :class:`UniformRandomWorkload` — every process messages uniformly random
  peers and takes basic checkpoints at exponential intervals (the generic
  workload of the evaluation study);
* :class:`ClientServerWorkload` — clients call a single server, which answers;
  models the asymmetric communication the paper's motivation mentions;
* :class:`PipelineWorkload` — a linear pipeline of stages, stage ``i`` feeding
  stage ``i+1``;
* :class:`RingWorkload` — a token-style ring, each process feeding its
  successor;
* :class:`WorstCaseWorkload` — the round-based schedule that drives RDT-LGC to
  its ``n`` retained checkpoints per process bound (Figure 5);
* :class:`ScriptedWorkload` — an explicit list of actions, used to reproduce
  the paper's hand-drawn figures event for event.

Topology-aware families (datacenter-shaped traffic; pair them with the
matching fault models from :func:`repro.scenarios.experiments` — a
``LatencyMatrixChannel`` for the region layout, inter-region
``PartitionSchedule``\\s for WAN cuts):

* :class:`ZipfClientServerWorkload` — clients call one of several servers
  picked with Zipf skew, so a hot server accumulates causal dependencies
  from almost everyone;
* :class:`GossipWorkload` — epidemic broadcast: each process periodically
  pushes to a random fan-out of peers;
* :class:`HierarchicalWorkload` — region clusters with biased local traffic
  and occasional cross-region messages.
"""

from __future__ import annotations

import abc
import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type


class ActionKind(enum.Enum):
    """What a workload action asks a process to do."""

    SEND = "send"
    CHECKPOINT = "checkpoint"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Action:
    """A timed application action.

    Actions are deliberately *not* ``order=True``: the dataclass comparison
    would fall through to the :class:`ActionKind` enum (unorderable —
    ``TypeError``) and to ``Optional[int]`` targets (``None`` vs ``int``)
    whenever two actions share ``(time, pid)``.  Ordering is explicit via
    :meth:`Action.sort_key` / :meth:`Workload._sorted` instead.
    """

    time: float
    pid: int
    kind: ActionKind
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is ActionKind.SEND and self.target is None:
            raise ValueError("SEND actions need a target process")

    def sort_key(self) -> Tuple[float, int, str, int]:
        """The canonical schedule order: time, process, then a deterministic
        kind/target tiebreak so equal-timestamp sorts are stable across runs."""
        return (self.time, self.pid, self.kind.value, -1 if self.target is None else self.target)


class Workload(abc.ABC):
    """Base class for workload generators."""

    name = "abstract"

    @abc.abstractmethod
    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        """Produce the timed actions of one run."""

    @staticmethod
    def _sorted(actions: List[Action]) -> List[Action]:
        return sorted(actions, key=Action.sort_key)


class UniformRandomWorkload(Workload):
    """Peer-to-peer traffic with random partners and random basic checkpoints."""

    name = "uniform-random"

    def __init__(
        self,
        *,
        mean_message_gap: float = 2.0,
        mean_checkpoint_gap: float = 10.0,
    ) -> None:
        if mean_message_gap <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("mean gaps must be positive")
        self._message_gap = mean_message_gap
        self._checkpoint_gap = mean_checkpoint_gap

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        for pid in range(num_processes):
            time = rng.expovariate(1.0 / self._message_gap)
            while time < duration and num_processes > 1:
                target = rng.randrange(num_processes - 1)
                if target >= pid:
                    target += 1
                actions.append(Action(time, pid, ActionKind.SEND, target))
                time += rng.expovariate(1.0 / self._message_gap)
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class ClientServerWorkload(Workload):
    """Clients send requests to process 0, which answers each client."""

    name = "client-server"

    def __init__(
        self,
        *,
        mean_request_gap: float = 3.0,
        server_think_time: float = 1.0,
        mean_checkpoint_gap: float = 12.0,
    ) -> None:
        if mean_request_gap <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("mean gaps must be positive")
        if server_think_time < 0:
            raise ValueError("the server think time must be non-negative")
        self._request_gap = mean_request_gap
        self._think_time = server_think_time
        self._checkpoint_gap = mean_checkpoint_gap

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        if num_processes < 2:
            raise ValueError("the client/server workload needs at least two processes")
        actions: List[Action] = []
        server = 0
        for client in range(1, num_processes):
            time = rng.expovariate(1.0 / self._request_gap)
            while time < duration:
                actions.append(Action(time, client, ActionKind.SEND, server))
                reply_time = time + self._think_time + rng.uniform(0.0, self._think_time)
                if reply_time < duration:
                    actions.append(Action(reply_time, server, ActionKind.SEND, client))
                time += rng.expovariate(1.0 / self._request_gap)
        for pid in range(num_processes):
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class PipelineWorkload(Workload):
    """A linear pipeline: stage ``i`` periodically feeds stage ``i + 1``."""

    name = "pipeline"

    def __init__(
        self,
        *,
        stage_period: float = 2.0,
        mean_checkpoint_gap: float = 10.0,
    ) -> None:
        if stage_period <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("workload parameters must be positive")
        self._stage_period = stage_period
        self._checkpoint_gap = mean_checkpoint_gap

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        for pid in range(num_processes - 1):
            time = self._stage_period * (1.0 + 0.1 * pid)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.SEND, pid + 1))
                time += self._stage_period
        for pid in range(num_processes):
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class RingWorkload(Workload):
    """Each process periodically sends to its successor on a ring."""

    name = "ring"

    def __init__(
        self,
        *,
        period: float = 3.0,
        mean_checkpoint_gap: float = 10.0,
    ) -> None:
        if period <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("workload parameters must be positive")
        self._period = period
        self._checkpoint_gap = mean_checkpoint_gap

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        for pid in range(num_processes):
            time = self._period * (1.0 + pid / max(num_processes, 1))
            while time < duration:
                actions.append(
                    Action(time, pid, ActionKind.SEND, (pid + 1) % num_processes)
                )
                time += self._period
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class WorstCaseWorkload(Workload):
    """The schedule that drives every process to retain ``n`` stable checkpoints.

    Round ``k`` (``k = 1 .. n``): every process takes a basic checkpoint, then
    process ``k - 1`` broadcasts one message to every other process.  Each
    broadcast carries new causal information only about its sender, so at the
    receiver it pins (via ``UC``) the receiver's *current* last checkpoint —
    a different one each round.  A final round of checkpoints leaves every
    process retaining exactly ``n`` stable checkpoints, the paper's tight
    per-process bound (Figure 5); the transient global occupancy during that
    final round is ``n (n + 1)``.
    """

    name = "worst-case"

    def __init__(self, *, round_length: float = 10.0) -> None:
        if round_length <= 0:
            raise ValueError("round length must be positive")
        self._round_length = round_length

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        for round_index in range(1, num_processes + 1):
            base = round_index * self._round_length
            for pid in range(num_processes):
                actions.append(Action(base, pid, ActionKind.CHECKPOINT))
            sender = round_index - 1
            for pid in range(num_processes):
                if pid != sender:
                    actions.append(
                        Action(base + self._round_length / 2, sender, ActionKind.SEND, pid)
                    )
        final = (num_processes + 1) * self._round_length
        for pid in range(num_processes):
            actions.append(Action(final, pid, ActionKind.CHECKPOINT))
        return self._sorted(actions)

    def required_duration(self, num_processes: int) -> float:
        """The simulated time needed to play the full schedule."""
        return (num_processes + 2) * self._round_length


class ZipfClientServerWorkload(Workload):
    """Clients call one of ``num_servers`` servers with Zipf-skewed choice.

    Servers are pids ``0 .. num_servers - 1``; the remaining pids are
    clients.  Each request picks the server of rank ``k`` with probability
    proportional to ``1 / (k + 1) ** skew`` — the hot-key distribution of
    real key-value front-ends.  The hot server becomes a causal hub: its
    checkpoints are known to almost every client, which is exactly the
    regime where Theorem-2 knowledge lets an optimal collector eliminate
    aggressively.
    """

    name = "zipf-client-server"

    def __init__(
        self,
        *,
        num_servers: int = 2,
        skew: float = 1.2,
        mean_request_gap: float = 3.0,
        server_think_time: float = 1.0,
        mean_checkpoint_gap: float = 12.0,
    ) -> None:
        if num_servers < 1:
            raise ValueError("the workload needs at least one server")
        if skew <= 0:
            raise ValueError("the Zipf skew must be positive")
        if mean_request_gap <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("mean gaps must be positive")
        if server_think_time < 0:
            raise ValueError("the server think time must be non-negative")
        self._num_servers = num_servers
        self._skew = skew
        self._request_gap = mean_request_gap
        self._think_time = server_think_time
        self._checkpoint_gap = mean_checkpoint_gap

    def _pick_server(self, rng: random.Random, num_servers: int) -> int:
        weights = [1.0 / (rank + 1) ** self._skew for rank in range(num_servers)]
        total = sum(weights)
        draw = rng.random() * total
        for server, weight in enumerate(weights):
            draw -= weight
            if draw < 0:
                return server
        return num_servers - 1

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        if num_processes <= self._num_servers:
            raise ValueError(
                f"the zipf client/server workload needs at least "
                f"{self._num_servers + 1} processes "
                f"({self._num_servers} servers plus one client)"
            )
        actions: List[Action] = []
        for client in range(self._num_servers, num_processes):
            time = rng.expovariate(1.0 / self._request_gap)
            while time < duration:
                server = self._pick_server(rng, self._num_servers)
                actions.append(Action(time, client, ActionKind.SEND, server))
                reply_time = time + self._think_time + rng.uniform(0.0, self._think_time)
                if reply_time < duration:
                    actions.append(Action(reply_time, server, ActionKind.SEND, client))
                time += rng.expovariate(1.0 / self._request_gap)
        for pid in range(num_processes):
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class GossipWorkload(Workload):
    """Epidemic broadcast: periodic pushes to a random fan-out of peers.

    Every gossip round spreads the sender's causal knowledge to ``fanout``
    peers at once, so dependency information disseminates in ``O(log n)``
    rounds — the fastest-mixing regime for checkpoint-knowledge propagation
    and the stress case for broadcast-heavy recovery lines.
    """

    name = "gossip"

    def __init__(
        self,
        *,
        fanout: int = 2,
        mean_round_gap: float = 4.0,
        mean_checkpoint_gap: float = 10.0,
    ) -> None:
        if fanout < 1:
            raise ValueError("the gossip fan-out must be at least one")
        if mean_round_gap <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("mean gaps must be positive")
        self._fanout = fanout
        self._round_gap = mean_round_gap
        self._checkpoint_gap = mean_checkpoint_gap

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        for pid in range(num_processes):
            time = rng.expovariate(1.0 / self._round_gap)
            while time < duration and num_processes > 1:
                peers = [p for p in range(num_processes) if p != pid]
                fanout = min(self._fanout, len(peers))
                for target in rng.sample(peers, fanout):
                    actions.append(Action(time, pid, ActionKind.SEND, target))
                time += rng.expovariate(1.0 / self._round_gap)
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class HierarchicalWorkload(Workload):
    """Region clusters: mostly-local traffic with occasional WAN messages.

    Processes are grouped into contiguous regions of ``region_size`` pids
    (the last region absorbs any remainder).  Each message stays inside the
    sender's region with probability ``local_bias``; otherwise it crosses to
    a uniformly random process of another region.  Pair it with the
    region-shaped :class:`~repro.simulation.channels.LatencyMatrixChannel`
    and inter-region partitions from
    :func:`repro.scenarios.experiments.hierarchical_network_config`.
    """

    name = "hierarchical"

    def __init__(
        self,
        *,
        region_size: int = 3,
        local_bias: float = 0.8,
        mean_message_gap: float = 2.0,
        mean_checkpoint_gap: float = 10.0,
    ) -> None:
        if region_size < 1:
            raise ValueError("regions need at least one process")
        if not 0.0 <= local_bias <= 1.0:
            raise ValueError("the local bias must be in [0, 1]")
        if mean_message_gap <= 0 or mean_checkpoint_gap <= 0:
            raise ValueError("mean gaps must be positive")
        self._region_size = region_size
        self._local_bias = local_bias
        self._message_gap = mean_message_gap
        self._checkpoint_gap = mean_checkpoint_gap

    def region_of(self, pid: int, num_processes: int) -> int:
        """The region index of ``pid`` (the last region absorbs the tail)."""
        num_regions = max(num_processes // self._region_size, 1)
        return min(pid // self._region_size, num_regions - 1)

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        actions: List[Action] = []
        regions: Dict[int, List[int]] = {}
        for pid in range(num_processes):
            regions.setdefault(self.region_of(pid, num_processes), []).append(pid)
        for pid in range(num_processes):
            home = self.region_of(pid, num_processes)
            local_peers = [p for p in regions[home] if p != pid]
            remote_peers = [
                p for p in range(num_processes)
                if self.region_of(p, num_processes) != home
            ]
            time = rng.expovariate(1.0 / self._message_gap)
            while time < duration and num_processes > 1:
                go_local = local_peers and (
                    not remote_peers or rng.random() < self._local_bias
                )
                pool = local_peers if go_local else remote_peers
                actions.append(Action(time, pid, ActionKind.SEND, rng.choice(pool)))
                time += rng.expovariate(1.0 / self._message_gap)
            time = rng.expovariate(1.0 / self._checkpoint_gap)
            while time < duration:
                actions.append(Action(time, pid, ActionKind.CHECKPOINT))
                time += rng.expovariate(1.0 / self._checkpoint_gap)
        return self._sorted(actions)


class ScriptedWorkload(Workload):
    """An explicit, fully deterministic list of actions."""

    name = "scripted"

    def __init__(self, actions: Sequence[Action]) -> None:
        self._actions = list(actions)

    def generate(
        self, num_processes: int, duration: float, rng: random.Random
    ) -> List[Action]:
        for action in self._actions:
            if action.pid >= num_processes:
                raise ValueError(
                    f"scripted action references process {action.pid} but the "
                    f"run has only {num_processes} processes"
                )
        return self._sorted(list(self._actions))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
# The campaign layer describes workloads declaratively — ``(name, params)``
# rather than instances — so that sweep cells stay picklable and hashable.
# Only generative workloads are registered: :class:`ScriptedWorkload` needs an
# explicit action list and cannot be built from scalar parameters.
_WORKLOADS: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        UniformRandomWorkload,
        ClientServerWorkload,
        PipelineWorkload,
        RingWorkload,
        WorstCaseWorkload,
    )
}


def available_workloads() -> List[str]:
    """Names of all registered workload generators."""
    return sorted(_WORKLOADS)


def workload_class(name: str) -> Type[Workload]:
    """The workload class registered under ``name``."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(_WORKLOADS))}"
        ) from None


def make_workload(name: str, **params: object) -> Workload:
    """Instantiate the workload registered under ``name``."""
    return workload_class(name)(**params)  # type: ignore[arg-type]


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Register a custom workload class (usable as a decorator)."""
    if not issubclass(cls, Workload):
        raise TypeError("workloads must subclass Workload")
    if "name" not in cls.__dict__:
        # An inherited name would silently shadow the parent's registration
        # (campaign specs naming it would then build the subclass).
        raise ValueError(
            f"{cls.__name__} must define its own `name` to be registered"
        )
    _WORKLOADS[cls.name] = cls
    return cls


# The topology-aware families register through the same extension point
# campaign plugins use, so their campaign/fuzz wiring is the registry entry.
for _topology_workload in (
    ZipfClientServerWorkload,
    GossipWorkload,
    HierarchicalWorkload,
):
    register_workload(_topology_workload)
del _topology_workload
