"""Crash schedules for failure injection.

The paper's model: a process can fail by crash, losing its volatile state but
keeping its stable storage, and it eventually recovers.  A
:class:`FailureSchedule` lists the crashes to inject in a run; each crash
triggers a full recovery session orchestrated by the runner via the
centralized :class:`repro.recovery.RecoveryManager`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple


@dataclass(frozen=True, order=True)
class Crash:
    """A single injected failure."""

    time: float
    pid: int


@dataclass(frozen=True)
class FailureSchedule:
    """An ordered list of crashes to inject."""

    crashes: Tuple[Crash, ...] = ()

    @classmethod
    def none(cls) -> "FailureSchedule":
        """A schedule with no failures."""
        return cls(())

    @classmethod
    def of(cls, crashes: Iterable[Tuple[float, int]]) -> "FailureSchedule":
        """Build a schedule from ``(time, pid)`` pairs."""
        return cls(tuple(sorted(Crash(time, pid) for time, pid in crashes)))

    @classmethod
    def random(
        cls,
        *,
        num_processes: int,
        duration: float,
        count: int,
        rng: random.Random,
        warmup_fraction: float = 0.2,
    ) -> "FailureSchedule":
        """``count`` crashes of random processes at random times after a warm-up."""
        if count < 0:
            raise ValueError("the number of crashes must be non-negative")
        start = duration * warmup_fraction
        crashes = [
            Crash(rng.uniform(start, duration), rng.randrange(num_processes))
            for _ in range(count)
        ]
        return cls(tuple(sorted(crashes)))

    def __len__(self) -> int:
        return len(self.crashes)

    def __iter__(self):
        return iter(self.crashes)
