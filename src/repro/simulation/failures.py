"""Crash schedules for failure injection.

The paper's model: a process can fail by crash, losing its volatile state but
keeping its stable storage, and it eventually recovers.  A
:class:`FailureSchedule` lists the crashes to inject in a run; each crash
triggers a full recovery session orchestrated by the runner via the
centralized :class:`repro.recovery.RecoveryManager`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True, order=True)
class Crash:
    """A single injected failure."""

    time: float
    pid: int


@dataclass(frozen=True)
class FailureSchedule:
    """An ordered list of crashes to inject."""

    crashes: Tuple[Crash, ...] = ()

    @classmethod
    def none(cls) -> "FailureSchedule":
        """A schedule with no failures."""
        return cls(())

    @classmethod
    def of(cls, crashes: Iterable[Tuple[float, int]]) -> "FailureSchedule":
        """Build a schedule from ``(time, pid)`` pairs."""
        return cls(tuple(sorted(Crash(time, pid) for time, pid in crashes)))

    @classmethod
    def random(
        cls,
        *,
        num_processes: int,
        duration: float,
        count: int,
        rng: random.Random,
        warmup_fraction: float = 0.2,
    ) -> "FailureSchedule":
        """``count`` crashes of random processes at random times after a warm-up.

        Crash times are drawn from the half-open ``[start, duration)``:
        workloads generate actions strictly before ``duration``, and a crash
        at the very instant the run ends would trigger a recovery session
        that no subsequent execution can observe — so schedules follow the
        same end-exclusive convention.  ``rng.uniform(start, duration)`` can
        return exactly ``duration`` (the nominal interval is closed), so
        boundary draws, and duplicate ``(time, pid)`` draws — the same
        process cannot crash twice at the same instant — are rejected and
        redrawn.
        """
        if count < 0:
            raise ValueError("the number of crashes must be non-negative")
        if duration <= 0:
            raise ValueError("the duration must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("the warm-up fraction must be in [0, 1)")
        start = duration * warmup_fraction
        crashes: List[Crash] = []
        seen = set()
        attempts = 0
        max_attempts = 1000 + 100 * count
        while len(crashes) < count:
            attempts += 1
            if attempts > max_attempts:
                raise RuntimeError(
                    f"could not draw {count} distinct crashes in "
                    f"[{start}, {duration}) after {max_attempts} attempts"
                )
            time = rng.uniform(start, duration)
            pid = rng.randrange(num_processes)
            if time >= duration or (time, pid) in seen:
                continue
            seen.add((time, pid))
            crashes.append(Crash(time, pid))
        return cls(tuple(sorted(crashes)))

    def __len__(self) -> int:
        return len(self.crashes)

    def __iter__(self):
        return iter(self.crashes)
