"""Crash schedules for failure injection.

The paper's model: a process can fail by crash, losing its volatile state but
keeping its stable storage, and it eventually recovers.  A
:class:`FailureSchedule` lists the crashes to inject in a run; each crash
triggers a full recovery session orchestrated by the runner via the
centralized :class:`repro.recovery.RecoveryManager`.

Two schedule generators are provided: :meth:`FailureSchedule.random` draws a
fixed *count* of crashes (the paper's evaluation regime), and
:meth:`FailureSchedule.churn` models crash-recovery *churn* — every process
crashes and rejoins repeatedly, with exponential inter-crash times governed
by a hazard rate.  :class:`FailureModelSpec` is the declarative form of
either generator, used by the campaign layer to put failure models on a
grid axis (hashable, picklable, hashed into the cell identity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True, order=True)
class Crash:
    """A single injected failure."""

    time: float
    pid: int


@dataclass(frozen=True)
class FailureSchedule:
    """An ordered list of crashes to inject."""

    crashes: Tuple[Crash, ...] = ()

    @classmethod
    def none(cls) -> "FailureSchedule":
        """A schedule with no failures."""
        return cls(())

    @classmethod
    def of(cls, crashes: Iterable[Tuple[float, int]]) -> "FailureSchedule":
        """Build a schedule from ``(time, pid)`` pairs."""
        return cls(tuple(sorted(Crash(time, pid) for time, pid in crashes)))

    @classmethod
    def random(
        cls,
        *,
        num_processes: int,
        duration: float,
        count: int,
        rng: random.Random,
        warmup_fraction: float = 0.2,
    ) -> "FailureSchedule":
        """``count`` crashes of random processes at random times after a warm-up.

        Crash times are drawn from the half-open ``[start, duration)``:
        workloads generate actions strictly before ``duration``, and a crash
        at the very instant the run ends would trigger a recovery session
        that no subsequent execution can observe — so schedules follow the
        same end-exclusive convention.  ``rng.uniform(start, duration)`` can
        return exactly ``duration`` (the nominal interval is closed), so
        boundary draws, and duplicate ``(time, pid)`` draws — the same
        process cannot crash twice at the same instant — are rejected and
        redrawn.
        """
        if count < 0:
            raise ValueError("the number of crashes must be non-negative")
        if duration <= 0:
            raise ValueError("the duration must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("the warm-up fraction must be in [0, 1)")
        start = duration * warmup_fraction
        crashes: List[Crash] = []
        seen = set()
        attempts = 0
        max_attempts = 1000 + 100 * count
        while len(crashes) < count:
            attempts += 1
            if attempts > max_attempts:
                raise RuntimeError(
                    f"could not draw {count} distinct crashes in "
                    f"[{start}, {duration}) after {max_attempts} attempts"
                )
            time = rng.uniform(start, duration)
            pid = rng.randrange(num_processes)
            if time >= duration or (time, pid) in seen:
                continue
            seen.add((time, pid))
            crashes.append(Crash(time, pid))
        return cls(tuple(sorted(crashes)))

    @classmethod
    def churn(
        cls,
        *,
        num_processes: int,
        duration: float,
        rng: random.Random,
        hazard_rate: float,
        warmup_fraction: float = 0.2,
        min_gap: float = 0.0,
    ) -> "FailureSchedule":
        """Crash-recovery churn: every process crashes and rejoins repeatedly.

        After a warm-up, each process independently draws exponential
        inter-crash times with rate ``hazard_rate`` (mean time between
        crashes ``1 / hazard_rate``); every crash triggers a full recovery
        session after which the process rejoins, so a long run sees each
        process fail many times.  ``min_gap`` enforces a minimum spacing
        between one process's consecutive crashes (a refractory period, so
        an unlucky draw cannot produce a pathological storm of back-to-back
        recoveries).  Crash times follow the same end-exclusive
        ``[start, duration)`` convention as :meth:`random`.
        """
        if hazard_rate <= 0:
            raise ValueError("the hazard rate must be positive")
        if duration <= 0:
            raise ValueError("the duration must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("the warm-up fraction must be in [0, 1)")
        if min_gap < 0:
            raise ValueError("the minimum gap must be non-negative")
        start = duration * warmup_fraction
        crashes: List[Crash] = []
        for pid in range(num_processes):
            time = start + rng.expovariate(hazard_rate)
            while time < duration:
                crashes.append(Crash(time, pid))
                time += min_gap + rng.expovariate(hazard_rate)
        return cls(tuple(sorted(crashes)))

    def __len__(self) -> int:
        return len(self.crashes)

    def __iter__(self) -> Iterator[Crash]:
        return iter(self.crashes)


# ----------------------------------------------------------------------
# Declarative failure models (campaign grid axes)
# ----------------------------------------------------------------------

#: Known model names and the parameters (with defaults) each one accepts.
FAILURE_MODELS: Dict[str, Dict[str, Any]] = {
    "crashes": {"count": 0, "warmup_fraction": 0.2},
    "churn": {"hazard_rate": 0.05, "warmup_fraction": 0.2, "min_gap": 0.0},
}


@dataclass(frozen=True)
class FailureModelSpec:
    """A failure model by name plus its parameters, in declarative form.

    Frozen and tuple-based for the same reason campaign collector/workload
    specs are: cells carrying one must stay hashable and picklable, and the
    canonical :meth:`label` is what gets hashed into the cell identity.
    """

    model: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(
        cls, model: str, params: Optional[Mapping[str, Any]] = None
    ) -> "FailureModelSpec":
        """Build and validate a spec (unknown models/parameters fail fast)."""
        known = FAILURE_MODELS.get(model)
        if known is None:
            raise ValueError(
                f"unknown failure model {model!r}; "
                f"available: {', '.join(sorted(FAILURE_MODELS))}"
            )
        merged = dict(params or {})
        unknown = sorted(set(merged) - set(known))
        if unknown:
            raise ValueError(
                f"unknown parameters for failure model {model!r}: "
                f"{', '.join(unknown)}; known: {', '.join(sorted(known))}"
            )
        spec = cls(model, tuple(sorted(merged.items())))
        # Fail fast on bad values, not per cell mid-sweep: generating a tiny
        # schedule exercises every parameter check.
        spec.schedule(num_processes=2, duration=10.0, rng=random.Random(0))
        return spec

    def params_dict(self) -> Dict[str, Any]:
        """The explicit parameters as a plain dict."""
        return dict(self.params)

    def label(self) -> str:
        """Canonical compact form, e.g. ``churn(hazard_rate=0.05)``.

        Used as the cell parameter value (hashed into ``cell_id``) and as
        the aggregation group key, so it must be deterministic: parameters
        render sorted by name, defaults omitted only if never given.
        """
        rendered = ",".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.model}({rendered})"

    def schedule(
        self, *, num_processes: int, duration: float, rng: random.Random
    ) -> FailureSchedule:
        """Materialise the spec into a concrete :class:`FailureSchedule`."""
        params = self.params_dict()
        if self.model == "crashes":
            count = int(params.pop("count", 0))
            if not count:
                return FailureSchedule.none()
            return FailureSchedule.random(
                num_processes=num_processes,
                duration=duration,
                count=count,
                rng=rng,
                **params,
            )
        assert self.model == "churn"
        return FailureSchedule.churn(
            num_processes=num_processes, duration=duration, rng=rng, **params
        )
