"""A process of the checkpointed application: middleware and garbage collector.

The node is the *mechanism*: it owns the dependency vector (the only control
information piggybacked on application messages, per the paper's model), the
stable storage and the message I/O.  The *policies* are plugged in:

* a :class:`repro.protocols.CheckpointingProtocol` decides when forced
  checkpoints are taken;
* a :class:`repro.gc.GarbageCollector` decides which stable checkpoints to
  eliminate (and may, for the coordinated baselines, use the node's control
  plane).

The node talks to its environment exclusively through a
:class:`repro.transport.Transport` — clock, application sends, control
sends, timers — so the same middleware runs unchanged inside the
discrete-event simulator (:class:`repro.transport.SimTransport`) and as a
real OS process on UDP sockets (:class:`repro.live.transport.LiveTransport`).
Despite the class name (kept for continuity), nothing in here is
simulation-specific.

The event ordering required by Section 4.5 — a forced checkpoint triggered by
a message is stored *before* the receipt is processed and before any garbage
collection related to that receipt — is enforced in :meth:`deliver`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.causality.dependency_vector import DependencyVector
from repro.gc.base import ControlPlane, GarbageCollector
from repro.protocols.base import CheckpointingProtocol
from repro.storage.stable import StableStorage
from repro.transport.base import AppMessage, TraceRecorderPort, Transport


class _NodeControlPlane(ControlPlane):
    """Adapter giving a node's collector access to control messages and timers."""

    def __init__(self, node: "SimulationNode") -> None:
        self._node = node

    def send_control(self, destination: int, payload: Any) -> None:
        self._node.transport.send_control_message(
            self._node.pid, destination, payload
        )

    def broadcast_control(self, payload: Any) -> None:
        for pid in range(self._node.num_processes):
            if pid != self._node.pid:
                self.send_control(pid, payload)

    def schedule_timer(self, delay: float) -> None:
        transport = self._node.transport
        transport.schedule_timer(
            delay, lambda: self._node.collector.on_timer(transport.now())
        )

    def current_time(self) -> float:
        return self._node.transport.now()


class SimulationNode:
    """One process of the checkpointed distributed application."""

    def __init__(
        self,
        pid: int,
        num_processes: int,
        *,
        transport: Transport,
        trace: TraceRecorderPort,
        protocol: CheckpointingProtocol,
        collector: GarbageCollector,
        storage: StableStorage,
    ) -> None:
        self._pid = pid
        self._num_processes = num_processes
        self._transport = transport
        self._trace = trace
        self._protocol = protocol
        self._collector = collector
        self._storage = storage
        self._dv = DependencyVector.initial(num_processes, pid)
        self._crashed = False
        self._departed = False
        self.messages_sent = 0
        self.messages_received = 0
        self.duplicates_received = 0
        self.basic_checkpoints = 0
        self.forced_checkpoints = 0
        self.rollbacks = 0
        collector.attach_control_plane(_NodeControlPlane(self))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        """The process id."""
        return self._pid

    @property
    def num_processes(self) -> int:
        """Number of processes in the system."""
        return self._num_processes

    @property
    def transport(self) -> Transport:
        """The backend this node runs on (simulated or live)."""
        return self._transport

    @property
    def protocol(self) -> CheckpointingProtocol:
        """The checkpointing protocol policy."""
        return self._protocol

    @property
    def collector(self) -> GarbageCollector:
        """The attached garbage collector."""
        return self._collector

    @property
    def storage(self) -> StableStorage:
        """The process's stable storage."""
        return self._storage

    @property
    def current_dv(self) -> Tuple[int, ...]:
        """The process's current dependency vector."""
        return self._dv.as_tuple()

    @property
    def crashed(self) -> bool:
        """True while the process is down (between crash and recovery)."""
        return self._crashed

    @property
    def departed(self) -> bool:
        """True once the process permanently left the membership."""
        return self._departed

    @property
    def _inert(self) -> bool:
        """True when the process must ignore application events."""
        return self._crashed or self._departed

    # ------------------------------------------------------------------
    # Application events
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Store the initial stable checkpoint ``s_pid^0`` (the model requires it)."""
        self.take_checkpoint(forced=False)

    def send_message(self, destination: int, payload: Any = None) -> None:
        """Send an application message to ``destination``."""
        if self._inert:
            return
        if destination == self._pid:
            raise ValueError("a process does not send application messages to itself")
        self._protocol.notify_send()
        self._collector.on_send(self._dv.as_tuple())
        piggyback = self._dv.piggyback()
        message = self._transport.send_app_message(
            self._pid, destination, piggyback, payload
        )
        self._trace.record_send(
            self._pid, destination, message.message_id, self._transport.now()
        )
        self.messages_sent += 1

    def deliver(self, message: AppMessage) -> None:
        """Deliver an application message to this process."""
        if self._inert:
            return
        if self._protocol.should_force_checkpoint(self._dv.as_tuple(), message.piggyback):
            self.take_checkpoint(forced=True)
        self._trace.record_receive(message.message_id, self._transport.now())
        updated = self._dv.absorb(message.piggyback)
        self._protocol.notify_receive()
        self._collector.on_receive(message.piggyback, updated, self._dv.as_tuple())
        self.messages_received += 1

    def deliver_duplicate(self, message: AppMessage) -> None:
        """Deliver a duplicate copy of a message this process already received.

        The middleware cannot tell a duplicate from a fresh message (the
        paper's piggyback carries no sequence numbers), so the full delivery
        path runs again: the protocol may force a checkpoint, the dependency
        vector re-absorbs the piggyback (idempotent — the information was
        already absorbed by the first copy, which the network guarantees
        arrived earlier), and the collector observes the receipt.  Only the
        trace knows the ground truth and records a causally-neutral
        duplicate event instead of a second receive.
        """
        if self._inert:
            return
        if self._protocol.should_force_checkpoint(self._dv.as_tuple(), message.piggyback):
            self.take_checkpoint(forced=True)
        self._trace.record_duplicate_receive(message.message_id, self._transport.now())
        updated = self._dv.absorb(message.piggyback)
        self._protocol.notify_receive()
        self._collector.on_receive(message.piggyback, updated, self._dv.as_tuple())
        self.duplicates_received += 1

    def take_checkpoint(self, *, forced: bool = False, payload: Any = None) -> int:
        """Take a basic or forced checkpoint; returns its index."""
        if self._inert:
            return self._storage.last_index()
        index = self._dv.current_interval()
        now = self._transport.now()
        self._storage.store(
            index, self._dv.as_tuple(), payload=payload, forced=forced, time=now
        )
        self._trace.record_checkpoint(
            self._pid, index, self._dv.as_tuple(), forced=forced, time=now
        )
        self._collector.on_checkpoint_stored(
            index, self._dv.as_tuple(), forced=forced, time=now
        )
        self._protocol.notify_checkpoint()
        self._dv.advance_after_checkpoint()
        if forced:
            self.forced_checkpoints += 1
        else:
            self.basic_checkpoints += 1
        return index

    # ------------------------------------------------------------------
    # Failures and recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose the volatile state; the process stays down until recovery."""
        self._crashed = True
        self._transport.on_crash(self._pid)

    def depart(self) -> List[int]:
        """Permanently retire from the membership.

        Unlike :meth:`crash` there is no recovery: a departed process can
        never be faulty, so every one of its stable checkpoints is garbage
        the instant it leaves (the paper's obsolescence theory — no recovery
        line can need them).  The collector eliminates them all, and the
        node ignores application events from then on.  Returns the
        eliminated indices.
        """
        if self._departed:
            raise RuntimeError(f"process {self._pid} already departed")
        collected = self._collector.on_departure_self()
        self._departed = True
        self._transport.on_crash(self._pid)
        return collected

    def apply_rollback(
        self,
        rollback_index: int,
        last_interval_vector: Optional[Sequence[int]],
    ) -> List[int]:
        """Restart from stable checkpoint ``rollback_index``.

        The node discards later checkpoints, recreates its dependency vector
        from the restored checkpoint, resets the protocol state and lets the
        garbage collector run its recovery-session logic (Algorithm 3 for
        RDT-LGC).  Returns the checkpoint indices the collector eliminated.
        """
        self._storage.eliminate_after(rollback_index)
        restored = self._storage.get(rollback_index)
        self._dv.restore(restored.dependency_vector)
        self._dv.advance_after_checkpoint()
        self._protocol.reset_after_rollback()
        collected = self._collector.on_rollback(
            rollback_index, last_interval_vector, self._dv.as_tuple()
        )
        self._crashed = False
        self.rollbacks += 1
        self._transport.on_recover(self._pid)
        return collected

    def apply_peer_rollback(self, last_interval_vector: Sequence[int]) -> List[int]:
        """Recovery session in which this process keeps its volatile state."""
        return self._collector.on_peer_rollback(
            last_interval_vector, self._dv.as_tuple()
        )
