"""Global execution recorder.

The :class:`TraceRecorder` observes everything the simulated processes do and
maintains the corresponding :class:`repro.causality.EventLog`, together with
the dependency vectors the middleware stored with each stable checkpoint.  At
any point it can be turned into a :class:`repro.ccp.CCP` for analysis: the CCP
of the recorded execution is exactly the pattern the paper's characterisations
are stated over, so the recorder is what connects the *online* algorithms to
the *offline* oracles in tests and benchmarks.

Recovery sessions rewrite history: the post-rollback state of the system is the
recovery-line cut, so :meth:`apply_recovery` truncates each rolled-back
process's history at its recovery-line component (the resulting prefix is a
consistent cut because the recovery line is consistent) and forgets the
checkpoints that were rolled back.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.causality.events import EventKind, EventLog
from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP
from repro.recovery.rollback_plan import RollbackPlan


class TraceRecorder:
    """Records a simulated execution as an event log plus checkpoint vectors."""

    def __init__(self, num_processes: int) -> None:
        self._num_processes = num_processes
        self._log = EventLog(num_processes)
        self._recorded_dvs: Dict[CheckpointId, Tuple[int, ...]] = {}
        self._dropped_messages: set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """Number of processes being traced."""
        return self._num_processes

    @property
    def log(self) -> EventLog:
        """The current event log (post-rollback history only)."""
        return self._log

    def recorded_checkpoint_dvs(self) -> Dict[CheckpointId, Tuple[int, ...]]:
        """Dependency vectors stored with the currently existing stable checkpoints."""
        return dict(self._recorded_dvs)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_send(
        self, sender: int, receiver: int, message_id: int, time: float
    ) -> None:
        """Record the sending of an application message."""
        self._log.add_send(sender, receiver, message_id=message_id, time=time)

    def record_receive(self, message_id: int, time: float) -> None:
        """Record the delivery of an application message.

        Deliveries of messages whose send was erased by a recovery session are
        ignored (the runner prevents them anyway by dropping in-flight
        messages, so this is a belt-and-braces guard).
        """
        if message_id in self._dropped_messages or not self._log.has_message(message_id):
            return
        self._log.add_receive(message_id, time=time)

    def record_checkpoint(
        self,
        pid: int,
        index: int,
        dependency_vector: Sequence[int],
        *,
        forced: bool,
        time: float,
    ) -> None:
        """Record a stable checkpoint and the vector stored with it."""
        self._log.add_checkpoint(pid, index, time=time, forced=forced)
        self._recorded_dvs[CheckpointId(pid, index)] = tuple(dependency_vector)

    def record_internal(self, pid: int, time: float) -> None:
        """Record an internal application event (used by scripted scenarios)."""
        self._log.add_internal(pid, time=time)

    # ------------------------------------------------------------------
    # Recovery sessions
    # ------------------------------------------------------------------
    def apply_recovery(self, plan: RollbackPlan) -> None:
        """Truncate the recorded history at the recovery line of ``plan``."""
        lengths: List[int] = []
        for pid in range(self._num_processes):
            rollback = plan.rollback_for(pid)
            history = self._log.history(pid)
            if rollback is None:
                lengths.append(len(history))
                continue
            cutoff = None
            for event in history:
                if (
                    event.kind is EventKind.CHECKPOINT
                    and event.checkpoint_index == rollback.rollback_index
                ):
                    cutoff = event.seq + 1
                    break
            if cutoff is None:
                raise RuntimeError(
                    f"recovery line references checkpoint "
                    f"s{pid}^{rollback.rollback_index} which is not in the trace"
                )
            lengths.append(cutoff)
        surviving_messages = set()
        for pid in range(self._num_processes):
            for event in self._log.history(pid).events[: lengths[pid]]:
                if event.kind is EventKind.SEND:
                    surviving_messages.add(event.message_id)
        for message in self._log.messages():
            if message.message_id not in surviving_messages:
                self._dropped_messages.add(message.message_id)
        self._log = self._log.prefix(lengths)
        for pid in range(self._num_processes):
            rollback = plan.rollback_for(pid)
            if rollback is None:
                continue
            stale = [
                cid
                for cid in self._recorded_dvs
                if cid.pid == pid and cid.index > rollback.rollback_index
            ]
            for cid in stale:
                del self._recorded_dvs[cid]

    # ------------------------------------------------------------------
    # Analysis snapshots
    # ------------------------------------------------------------------
    def ccp(
        self, volatile_dvs: Optional[Mapping[int, Sequence[int]]] = None
    ) -> CCP:
        """The CCP of the recorded execution.

        ``volatile_dvs`` optionally supplies the processes' current dependency
        vectors so that the volatile checkpoints carry recorded (rather than
        only ground-truth) vectors.
        """
        recorded: Dict[CheckpointId, Tuple[int, ...]] = dict(self._recorded_dvs)
        if volatile_dvs is not None:
            for pid, dv in volatile_dvs.items():
                last = self._log.history(pid).last_checkpoint_index()
                recorded[CheckpointId(pid, last + 1)] = tuple(dv)
        return CCP(self._log, recorded_dvs=recorded)
