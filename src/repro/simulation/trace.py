"""Global execution recorder.

The :class:`TraceRecorder` observes everything the simulated processes do and
maintains the corresponding :class:`repro.causality.EventLog`, together with
the dependency vectors the middleware stored with each stable checkpoint.  At
any point it can be turned into a :class:`repro.ccp.CCP` for analysis: the CCP
of the recorded execution is exactly the pattern the paper's characterisations
are stated over, so the recorder is what connects the *online* algorithms to
the *offline* oracles in tests and benchmarks.

The recorder maintains the expensive CCP substrate *incrementally* rather than
re-deriving it per snapshot:

* a live :class:`repro.causality.CausalOrder` is kept current with
  :meth:`CausalOrder.refresh`, so each event is vector-timestamped exactly
  once over the whole run;
* checkpoint-interval indices of message send/receive events are assigned at
  record time (an event's interval is fixed the moment it happens), so the
  :class:`repro.ccp.pattern.MessageInterval` table never has to be recomputed
  from the log;
* :meth:`ccp` memoises the built pattern keyed on a mutation version: while
  no new event arrives, every caller receives the *same* CCP object and with
  it the same shared :class:`repro.ccp.analysis_cache.AnalysisCache`, which is
  what lets ``audit="full"`` sampling stop rebuilding the pattern and its
  zigzag/obsolete analyses at every instant.

Recovery sessions rewrite history: the post-rollback state of the system is the
recovery-line cut, so :meth:`apply_recovery` truncates each rolled-back
process's history at its recovery-line component (the resulting prefix is a
consistent cut because the recovery line is consistent), forgets the
checkpoints that were rolled back, and rebuilds the incremental state from the
truncated log (the one place the live substrate is invalidated wholesale).

Persistence: the recorder accepts :class:`TraceSink` observers
(:meth:`attach_sink`).  Every successfully recorded occurrence — including
recovery sessions, which replay needs to reproduce the history truncation —
is forwarded to each sink in recording order, which is how
:class:`repro.traceio.writer.TraceWriter` turns a live run into a durable,
replayable artifact without the recorder knowing anything about files.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from repro.causality.events import EventKind, EventLog
from repro.causality.happens_before import CausalOrder
from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP, MessageInterval
from repro.recovery.rollback_plan import RollbackPlan


class TraceSink(Protocol):
    """Observer of recorded occurrences, in recording order.

    Callbacks fire *after* the recorder accepted the occurrence (validation
    passed, internal state mutated), so a sink only ever sees occurrences
    that are part of the recorded history.  Replaying the same callback
    sequence into a fresh :class:`TraceRecorder` rebuilds an identical
    recorder — the contract :mod:`repro.traceio` is built on.
    """

    def on_send(
        self, sender: int, receiver: int, message_id: int, time: float
    ) -> None:
        """An application send was recorded."""

    def on_receive(self, message_id: int, time: float) -> None:
        """A message delivery was recorded."""

    def on_duplicate_receive(self, message_id: int, time: float) -> None:
        """A duplicate delivery of an already-received message was recorded."""

    def on_checkpoint(
        self,
        pid: int,
        index: int,
        dependency_vector: Sequence[int],
        *,
        forced: bool,
        time: float,
    ) -> None:
        """A stable checkpoint (and its stored vector) was recorded."""

    def on_internal(self, pid: int, time: float) -> None:
        """An internal application event was recorded."""

    def on_recovery(self, plan: RollbackPlan) -> None:
        """A recovery session truncated the recorded history."""


class TraceRecorder:
    """Records a simulated execution as an event log plus checkpoint vectors."""

    def __init__(self, num_processes: int) -> None:
        self._num_processes = num_processes
        self._log = EventLog(num_processes)
        self._recorded_dvs: Dict[CheckpointId, Tuple[int, ...]] = {}
        self._dropped_messages: set[int] = set()
        # Incremental CCP substrate.
        self._version = 0
        self._order = CausalOrder(self._log)
        self._checkpoints_taken = [0] * num_processes
        self._message_intervals: Dict[int, MessageInterval] = {}
        self._pending_sends: Dict[int, Tuple[int, int, int, int]] = {}
        # Memoised snapshot: (version, volatile-DV fingerprint, CCP).
        self._ccp_cache: Optional[Tuple[int, object, CCP]] = None
        self._sinks: List[TraceSink] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """Number of processes being traced."""
        return self._num_processes

    @property
    def log(self) -> EventLog:
        """The current event log (post-rollback history only)."""
        return self._log

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every recorded event or recovery."""
        return self._version

    def recorded_checkpoint_dvs(self) -> Dict[CheckpointId, Tuple[int, ...]]:
        """Dependency vectors stored with the currently existing stable checkpoints."""
        return dict(self._recorded_dvs)

    # ------------------------------------------------------------------
    # Persistence sinks
    # ------------------------------------------------------------------
    def attach_sink(self, sink: TraceSink) -> None:
        """Forward every subsequently recorded occurrence to ``sink``.

        Sinks attached mid-run only observe the suffix; attach before the
        first event (the runner does) to capture a replayable trace.
        """
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_send(
        self, sender: int, receiver: int, message_id: int, time: float
    ) -> None:
        """Record the sending of an application message."""
        event, _ = self._log.add_send(
            sender, receiver, message_id=message_id, time=time
        )
        self._pending_sends[message_id] = (
            sender,
            receiver,
            self._checkpoints_taken[sender],
            event.seq,
        )
        self._version += 1
        for sink in self._sinks:
            sink.on_send(sender, receiver, message_id, time)

    def record_receive(self, message_id: int, time: float) -> None:
        """Record the delivery of an application message.

        Deliveries of messages whose send was erased by a recovery session are
        ignored (the runner prevents them anyway by dropping in-flight
        messages, so this is a belt-and-braces guard).
        """
        if message_id in self._dropped_messages or not self._log.has_message(message_id):
            return
        event = self._log.add_receive(message_id, time=time)
        sender, receiver, send_interval, send_seq = self._pending_sends.pop(message_id)
        self._message_intervals[message_id] = MessageInterval(
            message_id=message_id,
            sender=sender,
            receiver=receiver,
            send_interval=send_interval,
            receive_interval=self._checkpoints_taken[receiver],
            send_seq=send_seq,
            receive_seq=event.seq,
        )
        self._version += 1
        for sink in self._sinks:
            sink.on_receive(message_id, time)

    def record_duplicate_receive(self, message_id: int, time: float) -> None:
        """Record the delivery of a *duplicate* copy of a received message.

        A duplicate carries a piggyback the receiver has already absorbed
        (the network delivers whichever copy arrives first as the real
        receive), so it contributes **no** causal dependency: it is recorded
        as an internal event at the receiver — the event exists (the
        protocol may have acted on it) but adds no edge to the CCP.  The
        :class:`repro.causality.events.EventLog` invariant that every
        message is received at most once is thereby preserved.
        """
        if message_id in self._dropped_messages or not self._log.has_message(message_id):
            return
        message = self._log.message(message_id)
        if not message.delivered:
            raise ValueError(
                f"duplicate delivery of message {message_id} before its first receive"
            )
        self._log.add_internal(message.receiver, time=time)
        self._version += 1
        for sink in self._sinks:
            sink.on_duplicate_receive(message_id, time)

    def record_checkpoint(
        self,
        pid: int,
        index: int,
        dependency_vector: Sequence[int],
        *,
        forced: bool,
        time: float,
    ) -> None:
        """Record a stable checkpoint and the vector stored with it."""
        self._log.add_checkpoint(pid, index, time=time, forced=forced)
        self._recorded_dvs[CheckpointId(pid, index)] = tuple(dependency_vector)
        self._checkpoints_taken[pid] = index + 1
        self._version += 1
        for sink in self._sinks:
            sink.on_checkpoint(pid, index, dependency_vector, forced=forced, time=time)

    def record_internal(self, pid: int, time: float) -> None:
        """Record an internal application event (used by scripted scenarios)."""
        self._log.add_internal(pid, time=time)
        self._version += 1
        for sink in self._sinks:
            sink.on_internal(pid, time)

    # ------------------------------------------------------------------
    # Recovery sessions
    # ------------------------------------------------------------------
    def apply_recovery(self, plan: RollbackPlan) -> None:
        """Truncate the recorded history at the recovery line of ``plan``."""
        lengths: List[int] = []
        for pid in range(self._num_processes):
            rollback = plan.rollback_for(pid)
            history = self._log.history(pid)
            if rollback is None:
                lengths.append(len(history))
                continue
            cutoff = None
            for event in history:
                if (
                    event.kind is EventKind.CHECKPOINT
                    and event.checkpoint_index == rollback.rollback_index
                ):
                    cutoff = event.seq + 1
                    break
            if cutoff is None:
                raise RuntimeError(
                    f"recovery line references checkpoint "
                    f"s{pid}^{rollback.rollback_index} which is not in the trace"
                )
            lengths.append(cutoff)
        surviving_messages = set()
        for pid in range(self._num_processes):
            for event in self._log.history(pid).events[: lengths[pid]]:
                if event.kind is EventKind.SEND:
                    surviving_messages.add(event.message_id)
        for message in self._log.messages():
            if message.message_id not in surviving_messages:
                self._dropped_messages.add(message.message_id)
        self._log = self._log.prefix(lengths)
        for pid in range(self._num_processes):
            rollback = plan.rollback_for(pid)
            if rollback is None:
                continue
            stale = [
                cid
                for cid in self._recorded_dvs
                if cid.pid == pid and cid.index > rollback.rollback_index
            ]
            for cid in stale:
                del self._recorded_dvs[cid]
        self._rebuild_incremental_state()
        self._version += 1
        for sink in self._sinks:
            sink.on_recovery(plan)

    def _rebuild_incremental_state(self) -> None:
        """Re-derive the live substrate after history was truncated."""
        self._order = CausalOrder(self._log)
        self._ccp_cache = None
        self._pending_sends.clear()
        self._message_intervals.clear()
        # One pass per process assigns every event its checkpoint interval;
        # messages are then stitched together from the per-event assignments.
        send_info: Dict[int, Tuple[int, int, int, int]] = {}
        receive_info: Dict[int, Tuple[int, int]] = {}
        for pid in range(self._num_processes):
            taken = 0
            for event in self._log.history(pid):
                if event.kind is EventKind.SEND:
                    assert event.message_id is not None
                    message = self._log.message(event.message_id)
                    send_info[event.message_id] = (
                        pid,
                        message.receiver,
                        taken,
                        event.seq,
                    )
                elif event.kind is EventKind.RECEIVE:
                    assert event.message_id is not None
                    receive_info[event.message_id] = (taken, event.seq)
                elif event.kind is EventKind.CHECKPOINT:
                    taken += 1
            self._checkpoints_taken[pid] = taken
        for message_id, (sender, receiver, send_interval, send_seq) in send_info.items():
            received = receive_info.get(message_id)
            if received is None:
                self._pending_sends[message_id] = (
                    sender,
                    receiver,
                    send_interval,
                    send_seq,
                )
                continue
            receive_interval, receive_seq = received
            self._message_intervals[message_id] = MessageInterval(
                message_id=message_id,
                sender=sender,
                receiver=receiver,
                send_interval=send_interval,
                receive_interval=receive_interval,
                send_seq=send_seq,
                receive_seq=receive_seq,
            )

    # ------------------------------------------------------------------
    # Analysis snapshots
    # ------------------------------------------------------------------
    def ccp(
        self, volatile_dvs: Optional[Mapping[int, Sequence[int]]] = None
    ) -> CCP:
        """The CCP of the recorded execution.

        ``volatile_dvs`` optionally supplies the processes' current dependency
        vectors so that the volatile checkpoints carry recorded (rather than
        only ground-truth) vectors.

        While the recorded execution does not change between calls, the same
        CCP object is returned, so its attached analysis cache (zigzag kernel,
        Theorem-1/2 retained sets, recovery lines) is shared across callers.
        """
        fingerprint = (
            None
            if volatile_dvs is None
            else tuple(sorted((pid, tuple(dv)) for pid, dv in volatile_dvs.items()))
        )
        if self._ccp_cache is not None:
            version, cached_fingerprint, cached = self._ccp_cache
            if version == self._version and cached_fingerprint == fingerprint:
                return cached
        recorded: Dict[CheckpointId, Tuple[int, ...]] = dict(self._recorded_dvs)
        if volatile_dvs is not None:
            for pid, dv in volatile_dvs.items():
                recorded[CheckpointId(pid, self._checkpoints_taken[pid])] = tuple(dv)
        self._order.refresh()
        intervals = [
            self._message_intervals[mid] for mid in sorted(self._message_intervals)
        ]
        ccp = CCP(
            self._log,
            causal_order=self._order,
            recorded_dvs=recorded,
            message_intervals=intervals,
        )
        self._ccp_cache = (self._version, fingerprint, ccp)
        return ccp
