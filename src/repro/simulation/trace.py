"""Global execution recorder.

The :class:`TraceRecorder` observes everything the simulated processes do and
maintains the corresponding :class:`repro.causality.EventLog`, together with
the dependency vectors the middleware stored with each stable checkpoint.  At
any point it can be turned into a :class:`repro.ccp.CCP` for analysis: the CCP
of the recorded execution is exactly the pattern the paper's characterisations
are stated over, so the recorder is what connects the *online* algorithms to
the *offline* oracles in tests and benchmarks.

The recorder maintains the expensive CCP substrate *incrementally* rather than
re-deriving it per snapshot:

* checkpoint-interval indices of message send/receive events are assigned at
  record time (an event's interval is fixed the moment it happens), so the
  :class:`repro.ccp.pattern.MessageInterval` table never has to be recomputed
  from the log;
* :meth:`ccp` memoises the built pattern keyed on a mutation version: while
  no new event arrives, every caller receives the *same* CCP object and with
  it the same shared :class:`repro.ccp.analysis_cache.AnalysisCache`, which is
  what lets ``audit="full"`` sampling stop rebuilding the pattern and its
  zigzag/obsolete analyses at every instant.

``incremental_analyses`` selects how retained sets and recovery lines are
produced at analysis instants:

* ``"off"`` (default) — classic full recompute: a live
  :class:`repro.causality.CausalOrder` is kept current with
  :meth:`CausalOrder.refresh` and the analysis cache derives everything from
  checkpoint-level precedence queries.
* ``"on"`` — a :class:`repro.ccp.incremental.CheckpointKnowledgeTracker` is
  maintained in O(P) per event and snapshots carry an
  :class:`repro.ccp.incremental.IncrementalAnalysisView` as their
  ``analysis_provider``; no vector-clock replay happens at all unless some
  caller explicitly asks for event-level precedence.
* ``"check"`` — both substrates are maintained and the analysis cache
  asserts they agree (the cross-check mode the equivalence tests run).

``prune=True`` additionally lets the recorder *consume* the obsolescence
decisions collectors emit (:meth:`record_elimination`): once a contiguous
prefix of a process's checkpoints is garbage, the corresponding checkpoint
intervals are compacted out of the event log (:meth:`maybe_prune`), bounding
the recorder's memory by the live checkpoint frontier instead of run length.
Pruning weakens the cut to a *send-closed consistent* one first, which is
exactly what keeps the zigzag relation of every retained checkpoint intact;
receives of pruned sends that arrive later are recorded as INTERNAL events
(their knowledge merge still happens, so Theorem-2 state stays exact).
Pruning implies ``incremental_analyses="on"``: on a pruned log the classic
recomputation is no longer a valid stand-in for ground truth, the maintained
knowledge state is.

Recovery sessions rewrite history: the post-rollback state of the system is the
recovery-line cut, so :meth:`apply_recovery` truncates each rolled-back
process's history at its recovery-line component (the resulting prefix is a
consistent cut because the recovery line is consistent), forgets the
checkpoints that were rolled back, and rebuilds the incremental state from the
truncated log (the one place the live substrate is invalidated wholesale).

Persistence: the recorder accepts :class:`TraceSink` observers
(:meth:`attach_sink`).  Every successfully recorded occurrence — including
recovery sessions, which replay needs to reproduce the history truncation —
is forwarded to each sink in recording order, which is how
:class:`repro.traceio.writer.TraceWriter` turns a live run into a durable,
replayable artifact without the recorder knowing anything about files.
Pruning is *not* an occurrence: sinks observe the full history, so traces
written from pruned runs remain complete and replayable.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from repro.causality.events import EventKind, EventLog
from repro.causality.happens_before import CausalOrder
from repro.ccp.checkpoint import CheckpointId
from repro.ccp.incremental import (
    INCREMENTAL_MODES,
    CheckpointKnowledgeTracker,
    IncrementalAnalysisView,
)
from repro.ccp.pattern import CCP, MessageInterval
from repro.membership import MembershipView
from repro.recovery.rollback_plan import RollbackPlan


class TraceSink(Protocol):
    """Observer of recorded occurrences, in recording order.

    Callbacks fire *after* the recorder accepted the occurrence (validation
    passed, internal state mutated), so a sink only ever sees occurrences
    that are part of the recorded history.  Replaying the same callback
    sequence into a fresh :class:`TraceRecorder` rebuilds an identical
    recorder — the contract :mod:`repro.traceio` is built on.
    """

    def on_send(
        self, sender: int, receiver: int, message_id: int, time: float
    ) -> None:
        """An application send was recorded."""

    def on_receive(self, message_id: int, time: float) -> None:
        """A message delivery was recorded."""

    def on_duplicate_receive(self, message_id: int, time: float) -> None:
        """A duplicate delivery of an already-received message was recorded."""

    def on_checkpoint(
        self,
        pid: int,
        index: int,
        dependency_vector: Sequence[int],
        *,
        forced: bool,
        time: float,
    ) -> None:
        """A stable checkpoint (and its stored vector) was recorded."""

    def on_internal(self, pid: int, time: float) -> None:
        """An internal application event was recorded."""

    def on_recovery(self, plan: RollbackPlan) -> None:
        """A recovery session truncated the recorded history."""

    def on_join(self, pid: int, time: float) -> None:
        """A process joined the membership."""

    def on_leave(self, pid: int, time: float) -> None:
        """A process left the membership permanently."""


class TraceRecorder:
    """Records a simulated execution as an event log plus checkpoint vectors."""

    def __init__(
        self,
        num_processes: int,
        *,
        incremental_analyses: str = "off",
        prune: bool = False,
        prune_threshold: int = 512,
        initial_members: Optional[Iterable[int]] = None,
    ) -> None:
        if incremental_analyses not in INCREMENTAL_MODES:
            raise ValueError(
                f"unknown incremental_analyses mode {incremental_analyses!r} "
                f"(expected one of {INCREMENTAL_MODES})"
            )
        if prune and incremental_analyses == "off":
            # Classic recomputation over a pruned log is not authoritative
            # (the event graph loses edges); pruning requires the maintained
            # knowledge state.
            incremental_analyses = "on"
        self._num_processes = num_processes
        # Membership: pids without a join event are members from the start;
        # dormant joiners exist in the log (empty history) until they join.
        self._membership = MembershipView(
            num_processes,
            None if initial_members is None else frozenset(initial_members),
        )
        self._log = EventLog(num_processes)
        self._recorded_dvs: Dict[CheckpointId, Tuple[int, ...]] = {}
        self._dropped_messages: set[int] = set()
        # Incremental CCP substrate.
        self._version = 0
        self._incremental = incremental_analyses
        self._tracker: Optional[CheckpointKnowledgeTracker] = (
            CheckpointKnowledgeTracker(num_processes)
            if incremental_analyses != "off"
            else None
        )
        # "on" mode never replays vector clocks; a CCP snapshot builds a
        # causal order lazily only if some caller asks for event-level
        # precedence explicitly.
        self._order: Optional[CausalOrder] = (
            CausalOrder(self._log) if incremental_analyses != "on" else None
        )
        self._checkpoints_taken = [0] * num_processes
        self._message_intervals: Dict[int, MessageInterval] = {}
        self._pending_sends: Dict[int, Tuple[int, int, int, int]] = {}
        self._ckpt_seq: Dict[CheckpointId, int] = {}
        # Obsolescence-driven pruning state.
        self._prune_enabled = prune
        self._prune_threshold = prune_threshold
        # Membership-keyed (not a fixed-size list): a pid joining after
        # construction must not alias or corrupt a neighbour's set.
        self._eliminated: Dict[int, Set[int]] = {}
        self._prune_floor: List[int] = [0] * num_processes
        self._pruned_pending: Dict[int, Tuple[int, int]] = {}
        self._pruned_delivered: Dict[int, int] = {}
        self._pruned_events = 0
        # Memoised snapshot: (version, volatile-DV fingerprint, CCP).
        self._ccp_cache: Optional[Tuple[int, object, CCP]] = None
        self._sinks: List[TraceSink] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """Number of processes being traced."""
        return self._num_processes

    @property
    def log(self) -> EventLog:
        """The current event log (post-rollback, post-pruning history only)."""
        return self._log

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every recorded event, recovery or prune."""
        return self._version

    @property
    def incremental_analyses(self) -> str:
        """The analysis mode this recorder runs in (``off``/``on``/``check``)."""
        return self._incremental

    @property
    def pruning_enabled(self) -> bool:
        """True if obsolescence-driven log compaction is active."""
        return self._prune_enabled

    @property
    def pruned_events(self) -> int:
        """Total events compacted out of the log by pruning so far."""
        return self._pruned_events

    @property
    def knowledge_tracker(self) -> Optional[CheckpointKnowledgeTracker]:
        """The maintained checkpoint-knowledge state (None in ``off`` mode)."""
        return self._tracker

    @property
    def checkpoints_taken(self) -> Tuple[int, ...]:
        """Per-process count of stable checkpoints taken (volatile index)."""
        return tuple(self._checkpoints_taken)

    @property
    def membership(self) -> MembershipView:
        """The membership state threaded through this recorder."""
        return self._membership

    @property
    def departed(self) -> FrozenSet[int]:
        """Pids that permanently left the membership."""
        return self._membership.departed

    def recorded_checkpoint_dvs(self) -> Dict[CheckpointId, Tuple[int, ...]]:
        """Dependency vectors stored with the currently existing stable checkpoints."""
        return dict(self._recorded_dvs)

    # ------------------------------------------------------------------
    # Persistence sinks
    # ------------------------------------------------------------------
    def attach_sink(self, sink: TraceSink) -> None:
        """Forward every subsequently recorded occurrence to ``sink``.

        Sinks attached mid-run only observe the suffix; attach before the
        first event (the runner does) to capture a replayable trace.
        """
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_send(
        self, sender: int, receiver: int, message_id: int, time: float
    ) -> None:
        """Record the sending of an application message."""
        self._require_member(sender)
        event, _ = self._log.add_send(
            sender, receiver, message_id=message_id, time=time
        )
        self._pending_sends[message_id] = (
            sender,
            receiver,
            self._checkpoints_taken[sender],
            event.seq,
        )
        if self._tracker is not None:
            self._tracker.note_send(message_id, sender)
        self._version += 1
        for sink in self._sinks:
            sink.on_send(sender, receiver, message_id, time)

    def record_receive(self, message_id: int, time: float) -> None:
        """Record the delivery of an application message.

        Deliveries of messages whose send was erased by a recovery session are
        ignored (the runner prevents them anyway by dropping in-flight
        messages, so this is a belt-and-braces guard).  Deliveries of messages
        whose send interval was *pruned* as obsolete are recorded as INTERNAL
        events: the hand-off edge can only serve pruned checkpoints, but the
        knowledge the message carries still reaches the receiver.
        """
        if message_id in self._dropped_messages:
            return
        if message_id in self._pruned_pending:
            _, receiver = self._pruned_pending.pop(message_id)
            event = self._log.add_internal(receiver, time=time)
            assert self._tracker is not None
            self._tracker.note_receive(message_id, receiver, event.seq)
            self._tracker.forget_messages([message_id])
            self._pruned_delivered[message_id] = receiver
            self._version += 1
            for sink in self._sinks:
                sink.on_receive(message_id, time)
            return
        if not self._log.has_message(message_id):
            return
        event = self._log.add_receive(message_id, time=time)
        sender, receiver, send_interval, send_seq = self._pending_sends.pop(message_id)
        self._message_intervals[message_id] = MessageInterval(
            message_id=message_id,
            sender=sender,
            receiver=receiver,
            send_interval=send_interval,
            receive_interval=self._checkpoints_taken[receiver],
            send_seq=send_seq,
            receive_seq=event.seq,
        )
        if self._tracker is not None:
            self._tracker.note_receive(message_id, receiver, event.seq)
        self._version += 1
        for sink in self._sinks:
            sink.on_receive(message_id, time)

    def record_duplicate_receive(self, message_id: int, time: float) -> None:
        """Record the delivery of a *duplicate* copy of a received message.

        A duplicate carries a piggyback the receiver has already absorbed
        (the network delivers whichever copy arrives first as the real
        receive), so it contributes **no** causal dependency: it is recorded
        as an internal event at the receiver — the event exists (the
        protocol may have acted on it) but adds no edge to the CCP.  The
        :class:`repro.causality.events.EventLog` invariant that every
        message is received at most once is thereby preserved.
        """
        if message_id in self._dropped_messages:
            return
        pruned_receiver = self._pruned_delivered.get(message_id)
        if pruned_receiver is not None:
            self._log.add_internal(pruned_receiver, time=time)
            self._version += 1
            for sink in self._sinks:
                sink.on_duplicate_receive(message_id, time)
            return
        if not self._log.has_message(message_id):
            return
        message = self._log.message(message_id)
        if not message.delivered:
            raise ValueError(
                f"duplicate delivery of message {message_id} before its first receive"
            )
        self._log.add_internal(message.receiver, time=time)
        self._version += 1
        for sink in self._sinks:
            sink.on_duplicate_receive(message_id, time)

    def record_checkpoint(
        self,
        pid: int,
        index: int,
        dependency_vector: Sequence[int],
        *,
        forced: bool,
        time: float,
    ) -> None:
        """Record a stable checkpoint and the vector stored with it."""
        self._require_member(pid)
        event = self._log.add_checkpoint(pid, index, time=time, forced=forced)
        cid = CheckpointId(pid, index)
        self._recorded_dvs[cid] = tuple(dependency_vector)
        self._checkpoints_taken[pid] = index + 1
        self._ckpt_seq[cid] = event.seq
        if self._tracker is not None:
            self._tracker.note_checkpoint(pid, index, event.seq)
        self._version += 1
        for sink in self._sinks:
            sink.on_checkpoint(pid, index, dependency_vector, forced=forced, time=time)

    def record_internal(self, pid: int, time: float) -> None:
        """Record an internal application event (used by scripted scenarios)."""
        self._log.add_internal(pid, time=time)
        self._version += 1
        for sink in self._sinks:
            sink.on_internal(pid, time)

    # ------------------------------------------------------------------
    # Membership events
    # ------------------------------------------------------------------
    def _require_member(self, pid: int) -> None:
        from repro.membership import MembershipError

        if not self._membership.is_member(pid):
            state = "departed" if pid in self._membership.departed else (
                "dormant (not yet joined)"
                if 0 <= pid < self._num_processes
                else "outside the capacity"
            )
            raise MembershipError(
                f"process {pid} is {state} and cannot originate events "
                f"(capacity {self._num_processes})"
            )

    def record_join(self, pid: int, time: float) -> None:
        """Record a process joining the membership.

        A dormant pid within the provisioned capacity becomes live; a pid at
        or beyond the capacity grows every per-process structure first (the
        event log, the knowledge tracker, interval bookkeeping).  Joining an
        already-live or departed pid raises
        :class:`~repro.membership.MembershipError`.
        """
        self._membership.join(pid)  # validates; grows the view's capacity
        if pid >= self._num_processes:
            self._grow_to(pid + 1)
        self._version += 1
        self._ccp_cache = None
        for sink in self._sinks:
            sink.on_join(pid, time)

    def record_leave(self, pid: int, time: float) -> None:
        """Record a process leaving the membership permanently.

        From this point the pid is excluded from every analysis: it cannot
        be faulty, recovery lines pin it to its volatile index, and all its
        checkpoints are obsolete (the collectors eliminate them at
        departure).  Leaving a non-member raises
        :class:`~repro.membership.MembershipError`.
        """
        self._membership.leave(pid)
        self._version += 1
        self._ccp_cache = None
        for sink in self._sinks:
            sink.on_leave(pid, time)

    def _grow_to(self, num_processes: int) -> None:
        """Extend every per-process structure to a larger capacity."""
        self._log.grow_to(num_processes)
        if self._tracker is not None:
            self._tracker.grow(num_processes)
        pad = num_processes - self._num_processes
        self._checkpoints_taken.extend([0] * pad)
        self._prune_floor.extend([0] * pad)
        self._num_processes = num_processes
        if self._order is not None:
            # The causal order's clocks are sized at construction; joins are
            # rare, so a fresh replay is simpler than widening every clock.
            self._order = CausalOrder(self._log)

    # ------------------------------------------------------------------
    # Obsolescence-driven pruning
    # ------------------------------------------------------------------
    def record_elimination(self, pid: int, index: int) -> None:
        """Note that the collector of ``pid`` eliminated checkpoint ``index``.

        Advances the per-process prune floor over the contiguous garbage
        prefix and opportunistically compacts the log (:meth:`maybe_prune`).
        No-op unless pruning is enabled.
        """
        if not self._prune_enabled:
            return
        if not 0 <= index < self._checkpoints_taken[pid]:
            raise ValueError(
                f"elimination of unknown checkpoint s{pid}^{index}"
            )
        if index < self._prune_floor[pid]:
            return  # already below the garbage frontier
        eliminated = self._eliminated.setdefault(pid, set())
        eliminated.add(index)
        floor = self._prune_floor[pid]
        while floor in eliminated:
            eliminated.discard(floor)
            floor += 1
        self._prune_floor[pid] = floor
        self.maybe_prune()

    def maybe_prune(self, *, force: bool = False) -> bool:
        """Compact obsolete checkpoint intervals out of the log.

        The candidate cut puts each process's base at its prune floor (the
        first non-garbage checkpoint), then weakens it to a *send-closed*
        fixpoint: a delivered message whose send survives must keep its
        receive, otherwise the receiver's base is lowered to just below the
        receive interval.  Send-closedness is exactly what preserves the
        zigzag relation of every checkpoint at or above the final bases —
        every hand-off chain reachable from a live checkpoint consists of
        surviving messages only.

        Pruning is skipped (returns False) while the reclaimable event count
        is below the hysteresis threshold, unless ``force`` is given.
        """
        if not self._prune_enabled:
            return False
        bases = self._log.checkpoint_bases
        desired: List[int] = []
        for pid in range(self._num_processes):
            last = self._checkpoints_taken[pid] - 1
            if last < 0:
                desired.append(bases[pid])
            else:
                desired.append(max(bases[pid], min(self._prune_floor[pid], last)))
        # Cheap upper bound on reclaimable events before paying for the fixpoint.
        upper = sum(
            self._ckpt_seq[CheckpointId(pid, d)] if d > bases[pid] else 0
            for pid, d in enumerate(desired)
        )
        if upper == 0 or (not force and upper < self._prune_threshold):
            return False
        cut = desired
        changed = True
        while changed:
            changed = False
            for interval in self._message_intervals.values():
                sender_cut = cut[interval.sender] > bases[interval.sender]
                send_kept = (
                    not sender_cut or interval.send_interval > cut[interval.sender]
                )
                if (
                    send_kept
                    and cut[interval.receiver] > bases[interval.receiver]
                    and interval.receive_interval <= cut[interval.receiver]
                ):
                    cut[interval.receiver] = max(
                        bases[interval.receiver], interval.receive_interval - 1
                    )
                    changed = True
        starts = [
            self._ckpt_seq[CheckpointId(pid, cut[pid])] if cut[pid] > bases[pid] else 0
            for pid in range(self._num_processes)
        ]
        total = sum(starts)
        if total == 0 or (not force and total < self._prune_threshold):
            return False
        self._perform_prune(cut, starts)
        return True

    def _perform_prune(self, cut: List[int], starts: List[int]) -> None:
        """Apply a computed send-closed cut: rewrite the log and remap state."""
        pruned_delivered = [
            message_id
            for message_id, interval in self._message_intervals.items()
            if interval.send_seq < starts[interval.sender]
        ]
        for message_id in pruned_delivered:
            interval = self._message_intervals.pop(message_id)
            self._pruned_delivered[message_id] = interval.receiver
        pruned_pending = [
            message_id
            for message_id, (sender, _, _, seq) in self._pending_sends.items()
            if seq < starts[sender]
        ]
        for message_id in pruned_pending:
            sender, receiver, _, _ = self._pending_sends.pop(message_id)
            self._pruned_pending[message_id] = (sender, receiver)
        self._log = self._log.suffix(starts, checkpoint_bases=cut)
        self._message_intervals = {
            message_id: MessageInterval(
                message_id=interval.message_id,
                sender=interval.sender,
                receiver=interval.receiver,
                send_interval=interval.send_interval,
                receive_interval=interval.receive_interval,
                send_seq=interval.send_seq - starts[interval.sender],
                receive_seq=interval.receive_seq - starts[interval.receiver],
            )
            for message_id, interval in self._message_intervals.items()
        }
        self._pending_sends = {
            message_id: (sender, receiver, send_interval, seq - starts[sender])
            for message_id, (sender, receiver, send_interval, seq) in (
                self._pending_sends.items()
            )
        }
        stale_cids = [
            cid for cid in self._recorded_dvs if cid.index < cut[cid.pid]
        ]
        for cid in stale_cids:
            del self._recorded_dvs[cid]
        self._ckpt_seq = {
            cid: seq - starts[cid.pid]
            for cid, seq in self._ckpt_seq.items()
            if cid.index >= cut[cid.pid]
        }
        if self._tracker is not None:
            self._tracker.apply_suffix(starts)
            self._tracker.forget_checkpoints(stale_cids)
            self._tracker.forget_messages(pruned_delivered)
        if self._order is not None:
            self._order = CausalOrder(self._log)
        self._pruned_events += sum(starts)
        self._ccp_cache = None
        self._version += 1

    # ------------------------------------------------------------------
    # Recovery sessions
    # ------------------------------------------------------------------
    def apply_recovery(self, plan: RollbackPlan) -> None:
        """Truncate the recorded history at the recovery line of ``plan``."""
        lengths: List[int] = []
        for pid in range(self._num_processes):
            rollback = plan.rollback_for(pid)
            history = self._log.history(pid)
            if rollback is None:
                lengths.append(len(history))
                continue
            cutoff = None
            for event in history:
                if (
                    event.kind is EventKind.CHECKPOINT
                    and event.checkpoint_index == rollback.rollback_index
                ):
                    cutoff = event.seq + 1
                    break
            if cutoff is None:
                raise RuntimeError(
                    f"recovery line references checkpoint "
                    f"s{pid}^{rollback.rollback_index} which is not in the trace"
                )
            lengths.append(cutoff)
        surviving_messages = set()
        for pid in range(self._num_processes):
            for event in self._log.history(pid).events[: lengths[pid]]:
                if event.kind is EventKind.SEND:
                    surviving_messages.add(event.message_id)
        newly_dropped = []
        for message in self._log.messages():
            if message.message_id not in surviving_messages:
                self._dropped_messages.add(message.message_id)
                newly_dropped.append(message.message_id)
        if self._tracker is not None:
            self._tracker.apply_truncation(lengths)
            self._tracker.forget_messages(newly_dropped)
        self._log = self._log.prefix(lengths)
        for pid in range(self._num_processes):
            rollback = plan.rollback_for(pid)
            if rollback is None:
                continue
            stale = [
                cid
                for cid in self._recorded_dvs
                if cid.pid == pid and cid.index > rollback.rollback_index
            ]
            for cid in stale:
                del self._recorded_dvs[cid]
            if self._tracker is not None:
                self._tracker.forget_checkpoints(stale)
            # Rolled-back checkpoint indices are *reused* after recovery
            # (stable storage rewinds its next index), so elimination facts
            # recorded for the discarded incarnations must not survive to
            # taint their successors.
            self._eliminated[pid] = {
                index
                for index in self._eliminated.get(pid, set())
                if index <= rollback.rollback_index
            }
            self._prune_floor[pid] = min(
                self._prune_floor[pid], rollback.rollback_index
            )
        self._rebuild_incremental_state()
        self._version += 1
        for sink in self._sinks:
            sink.on_recovery(plan)

    def _rebuild_incremental_state(self) -> None:
        """Re-derive the live substrate after history was truncated."""
        if self._order is not None:
            self._order = CausalOrder(self._log)
        self._ccp_cache = None
        self._pending_sends.clear()
        self._message_intervals.clear()
        self._ckpt_seq.clear()
        # One pass per process assigns every event its checkpoint interval;
        # messages are then stitched together from the per-event assignments.
        send_info: Dict[int, Tuple[int, int, int, int]] = {}
        receive_info: Dict[int, Tuple[int, int]] = {}
        for pid in range(self._num_processes):
            taken = self._log.checkpoint_base(pid)
            for event in self._log.history(pid):
                if event.kind is EventKind.SEND:
                    assert event.message_id is not None
                    message = self._log.message(event.message_id)
                    send_info[event.message_id] = (
                        pid,
                        message.receiver,
                        taken,
                        event.seq,
                    )
                elif event.kind is EventKind.RECEIVE:
                    assert event.message_id is not None
                    receive_info[event.message_id] = (taken, event.seq)
                elif event.kind is EventKind.CHECKPOINT:
                    assert event.checkpoint_index is not None
                    self._ckpt_seq[
                        CheckpointId(pid, event.checkpoint_index)
                    ] = event.seq
                    taken = event.checkpoint_index + 1
            self._checkpoints_taken[pid] = taken
        for message_id, (sender, receiver, send_interval, send_seq) in send_info.items():
            received = receive_info.get(message_id)
            if received is None:
                self._pending_sends[message_id] = (
                    sender,
                    receiver,
                    send_interval,
                    send_seq,
                )
                continue
            receive_interval, receive_seq = received
            self._message_intervals[message_id] = MessageInterval(
                message_id=message_id,
                sender=sender,
                receiver=receiver,
                send_interval=send_interval,
                receive_interval=receive_interval,
                send_seq=send_seq,
                receive_seq=receive_seq,
            )

    # ------------------------------------------------------------------
    # Analysis snapshots
    # ------------------------------------------------------------------
    def ccp(
        self, volatile_dvs: Optional[Mapping[int, Sequence[int]]] = None
    ) -> CCP:
        """The CCP of the recorded execution.

        ``volatile_dvs`` optionally supplies the processes' current dependency
        vectors so that the volatile checkpoints carry recorded (rather than
        only ground-truth) vectors.

        While the recorded execution does not change between calls, the same
        CCP object is returned, so its attached analysis cache (zigzag kernel,
        Theorem-1/2 retained sets, recovery lines) is shared across callers.
        """
        fingerprint = (
            None
            if volatile_dvs is None
            else tuple(sorted((pid, tuple(dv)) for pid, dv in volatile_dvs.items()))
        )
        if self._ccp_cache is not None:
            version, cached_fingerprint, cached = self._ccp_cache
            if version == self._version and cached_fingerprint == fingerprint:
                return cached
        recorded: Dict[CheckpointId, Tuple[int, ...]] = dict(self._recorded_dvs)
        if volatile_dvs is not None:
            for pid, dv in volatile_dvs.items():
                recorded[CheckpointId(pid, self._checkpoints_taken[pid])] = tuple(dv)
        if self._order is not None:
            self._order.refresh()
        intervals = [
            self._message_intervals[mid] for mid in sorted(self._message_intervals)
        ]
        provider = (
            IncrementalAnalysisView(self, self._incremental)
            if self._tracker is not None
            else None
        )
        ccp = CCP(
            self._log,
            causal_order=self._order,
            recorded_dvs=recorded,
            message_intervals=intervals,
            analysis_provider=provider,
            departed=self._membership.departed,
        )
        self._ccp_cache = (self._version, fingerprint, ccp)
        return ccp
