"""Rollback-dependency graph (R-graph) analysis utility.

The R-graph (Wang 1997) is the interval-level dependency structure used by
classic algorithms for recovery-line calculation and rollback propagation.  In
this library recovery lines are computed directly from the causal relation
(Lemma 1), so the R-graph is provided as an *analysis* tool: it lets examples
and tests reason about how a rollback of one checkpoint propagates to others,
and it is the structure on which Wang's coordinated garbage collector
(the paper's main point of comparison) conceptually operates.

Node convention: each general checkpoint ``c_i^gamma`` represents the interval
``I_i^{gamma+1}`` that *starts* at that checkpoint.  There is an edge
``c_i^gamma -> c_j^delta`` iff

* ``i == j`` and ``delta == gamma + 1`` (program order between intervals); or
* a message sent in ``I_i^{gamma+1}`` is received in ``I_j^{delta+1}``.

Rolling back checkpoint ``c`` invalidates its outgoing interval; reachability
from ``c`` therefore over-approximates the set of checkpoints that must also
be rolled back.  Under RDT this reachability coincides with causal
reachability, which tests verify.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP


class RollbackDependencyGraph:
    """The R-graph of a CCP with reachability queries."""

    def __init__(self, ccp: CCP) -> None:
        self._ccp = ccp
        self._successors: Dict[CheckpointId, Set[CheckpointId]] = {}
        self._build()

    def _build(self) -> None:
        ccp = self._ccp
        for pid in ccp.processes:
            ids = ccp.general_ids(pid)
            for cid in ids:
                self._successors.setdefault(cid, set())
            for earlier, later in zip(ids, ids[1:]):
                self._successors[earlier].add(later)
        for message in ccp.messages():
            source = CheckpointId(message.sender, message.send_interval - 1)
            target = CheckpointId(message.receiver, message.receive_interval - 1)
            if source in self._successors and target in self._successors:
                self._successors[source].add(target)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def successors(self, cid: CheckpointId) -> Set[CheckpointId]:
        """Direct successors of ``cid`` in the R-graph."""
        return set(self._successors[cid])

    def reachable(self, cid: CheckpointId) -> Set[CheckpointId]:
        """All checkpoints reachable from ``cid`` (excluding ``cid`` itself)."""
        seen: Set[CheckpointId] = set()
        stack = list(self._successors[cid])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._successors[current])
        seen.discard(cid)
        return seen

    def rollback_closure(self, rolled_back: List[CheckpointId]) -> Set[CheckpointId]:
        """Checkpoints invalidated (transitively) by rolling back ``rolled_back``.

        The result includes the given checkpoints themselves plus everything
        reachable from them: if an interval is undone, every interval that
        received one of its messages must be undone too.
        """
        closure: Set[CheckpointId] = set()
        for cid in rolled_back:
            if cid not in self._successors:
                raise KeyError(f"{cid} is not a checkpoint of this CCP")
            closure.add(cid)
            closure |= self.reachable(cid)
        return closure

    def edge_count(self) -> int:
        """Total number of edges in the graph."""
        return sum(len(s) for s in self._successors.values())

    def node_count(self) -> int:
        """Total number of nodes (general checkpoints)."""
        return len(self._successors)
