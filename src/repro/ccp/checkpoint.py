"""Checkpoint identities and records (Section 2.2 of the paper).

A *stable* checkpoint ``s_i^gamma`` is a local checkpoint written to stable
storage; the *volatile* checkpoint ``v_i`` is the current in-memory state of a
process.  The paper unifies both under the notion of a *general checkpoint*
``c_i^gamma`` (Equation 1):

    c_i^gamma = s_i^gamma            if gamma <= last_s(i)
    c_i^gamma = v_i                  if gamma == last_s(i) + 1

A *checkpoint interval* ``I_i^gamma`` is the set of events executed by ``p_i``
between ``c_i^{gamma-1}`` (inclusive) and ``c_i^gamma`` (exclusive).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class CheckpointKind(enum.Enum):
    """Whether a general checkpoint is on stable storage or still volatile."""

    STABLE = "stable"
    VOLATILE = "volatile"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True, slots=True)
class CheckpointId:
    """Identifies a general checkpoint ``c_pid^index``."""

    pid: int
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"c{self.pid}^{self.index}"

    def predecessor(self) -> "CheckpointId":
        """The previous checkpoint of the same process (index - 1)."""
        if self.index == 0:
            raise ValueError(f"{self} has no predecessor")
        return CheckpointId(self.pid, self.index - 1)

    def successor(self) -> "CheckpointId":
        """The next checkpoint of the same process (index + 1)."""
        return CheckpointId(self.pid, self.index + 1)


@dataclass(frozen=True)
class Checkpoint:
    """A general checkpoint of a CCP.

    Attributes
    ----------
    pid, index:
        Identity (``c_pid^index``).
    kind:
        STABLE for ``s_i^gamma`` with ``gamma <= last_s(i)``; VOLATILE for the
        single ``v_i`` per process.
    dependency_vector:
        The dependency vector associated with the checkpoint: for stable
        checkpoints this is the DV stored with the checkpoint when it was
        taken; for the volatile checkpoint it is the process's current DV.
        ``None`` when the CCP was built without dependency tracking.
    event_seq:
        For stable checkpoints, the sequence number of the CHECKPOINT event
        that took it.  ``None`` for volatile checkpoints (they sit after the
        last recorded event).
    forced:
        Whether the checkpoint was forced by the communication-induced
        protocol (informational; GC does not distinguish basic from forced).
    time:
        Simulated time at which the checkpoint was taken (informational).
    """

    pid: int
    index: int
    kind: CheckpointKind
    dependency_vector: Optional[Tuple[int, ...]] = None
    event_seq: Optional[int] = None
    forced: bool = False
    time: float = 0.0

    @property
    def checkpoint_id(self) -> CheckpointId:
        """The :class:`CheckpointId` of this checkpoint."""
        return CheckpointId(self.pid, self.index)

    @property
    def is_stable(self) -> bool:
        """True if this checkpoint lives on stable storage."""
        return self.kind is CheckpointKind.STABLE

    @property
    def is_volatile(self) -> bool:
        """True if this checkpoint is the process's current volatile state."""
        return self.kind is CheckpointKind.VOLATILE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = "s" if self.is_stable else "v"
        if self.is_volatile:
            return f"v{self.pid}"
        return f"{prefix}{self.pid}^{self.index}"
