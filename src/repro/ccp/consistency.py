"""Consistent global checkpoints and min/max queries.

A *global checkpoint* picks one general checkpoint per process; it is
*consistent* iff its members are pairwise consistent, i.e. no member causally
precedes another (Section 2.2).  Netzer & Xu characterise the more general
question of whether a set of checkpoints can be *extended* to a consistent
global checkpoint: that holds iff no zigzag path connects any two of them
(including a checkpoint to itself); under RDT the two notions coincide for
full global checkpoints because every zigzag dependency is causal.

This module also implements the classic min/max queries that the RDT property
enables (Wang 1997): the maximum (respectively minimum) consistent global
checkpoint containing a given set of local checkpoints, computed by simple
fixpoint propagation over the causal relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, List, Mapping, Optional, Tuple

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP
from repro.ccp.zigzag import ZigzagAnalysis


@dataclass(frozen=True)
class GlobalCheckpoint:
    """One general checkpoint per process, identified by index.

    ``indices[pid]`` is the index of the chosen checkpoint of process ``pid``.
    """

    indices: Tuple[int, ...]

    @classmethod
    def of(cls, indices: Mapping[int, int] | List[int] | Tuple[int, ...]) -> "GlobalCheckpoint":
        """Build from a mapping pid->index or a dense sequence of indices.

        A mapping must cover every process id ``0 .. max(pid)``: a global
        checkpoint has exactly one component per process, so a gap in the
        mapping is a caller error (it used to be silently padded with index
        0, which turned typos into wrong consistency answers).  Note the
        constructor cannot know the system's process count, so *trailing*
        omissions (a mapping that stops before the last process) produce a
        smaller checkpoint instead of an error; the size cross-check in
        :func:`is_consistent_global_checkpoint` rejects those against a CCP.
        """
        if isinstance(indices, Mapping):
            if not indices:
                raise ValueError("cannot build a global checkpoint from an empty mapping")
            size = max(indices) + 1
            missing = [pid for pid in range(size) if pid not in indices]
            if missing:
                raise ValueError(
                    "sparse global checkpoint mapping: no index for "
                    f"process(es) {missing}"
                )
            return cls(tuple(indices[pid] for pid in range(size)))
        return cls(tuple(indices))

    @property
    def num_processes(self) -> int:
        """Number of processes covered."""
        return len(self.indices)

    def checkpoint_id(self, pid: int) -> CheckpointId:
        """The member checkpoint of process ``pid``."""
        return CheckpointId(pid, self.indices[pid])

    def members(self) -> Iterator[CheckpointId]:
        """Iterate over all member checkpoints."""
        for pid, index in enumerate(self.indices):
            yield CheckpointId(pid, index)

    def total_index(self) -> int:
        """Sum of member indices (used to compare how 'recent' lines are)."""
        return sum(self.indices)

    def rolled_back_count(self, ccp: CCP) -> int:
        """Number of general checkpoints rolled back if this line is restored.

        For each process, the checkpoints strictly after the chosen component
        (up to and including the volatile one) are rolled back, which is the
        quantity minimised by Definition 5.
        """
        total = 0
        for pid in range(self.num_processes):
            total += ccp.volatile_index(pid) - self.indices[pid]
        return total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "{" + ", ".join(str(cid) for cid in self.members()) + "}"


def is_consistent_global_checkpoint(
    ccp: CCP,
    global_checkpoint: GlobalCheckpoint,
    *,
    method: str = "causal",
    zigzag: Optional[ZigzagAnalysis] = None,
) -> bool:
    """Check consistency of a global checkpoint.

    ``method='causal'`` applies the paper's definition (pairwise not causally
    related).  ``method='zigzag'`` applies the Netzer–Xu condition (no zigzag
    path between any two members, including self cycles); under RDT both
    answers agree, which tests exploit.
    """
    if global_checkpoint.num_processes != ccp.num_processes:
        raise ValueError("global checkpoint and CCP cover different process sets")
    members = list(global_checkpoint.members())
    for cid in members:
        if not ccp.has_checkpoint(cid):
            raise KeyError(f"{cid} is not a checkpoint of this CCP")
    if method == "causal":
        for first, second in combinations(members, 2):
            if not ccp.consistent(first, second):
                return False
        return True
    if method == "zigzag":
        analysis = zigzag if zigzag is not None else ccp.analyses.zigzag
        for first in members:
            for second in members:
                if analysis.zigzag_exists(first, second):
                    return False
        return True
    raise ValueError(f"unknown consistency method {method!r}")


def _fixpoint(
    ccp: CCP,
    fixed: Mapping[int, int],
    start: List[int],
    adjust_down: bool,
) -> Optional[GlobalCheckpoint]:
    """Shared fixpoint used by the max (adjust_down) and min queries."""
    candidate = list(start)
    for pid, index in fixed.items():
        if not ccp.has_checkpoint(CheckpointId(pid, index)):
            raise KeyError(f"fixed checkpoint c{pid}^{index} is not in this CCP")
        candidate[pid] = index
    changed = True
    while changed:
        changed = False
        for i in range(ccp.num_processes):
            for j in range(ccp.num_processes):
                if i == j:
                    continue
                first = CheckpointId(i, candidate[i])
                second = CheckpointId(j, candidate[j])
                if not ccp.causally_precedes(first, second):
                    continue
                # Inconsistent pair: first -> second.  Repair by moving the
                # adjustable side.  Max query: any solution below the candidate
                # must use an earlier checkpoint of the successor side, so roll
                # j back (or i back when j is fixed).  Min query: any solution
                # above the candidate must use a later checkpoint of the
                # predecessor side, so advance i; a fixed predecessor means no
                # solution exists at all.
                if adjust_down:
                    if j in fixed:
                        if i in fixed:
                            return None
                        candidate[i] -= 1
                        if candidate[i] < 0:
                            return None
                    else:
                        candidate[j] -= 1
                        if candidate[j] < 0:
                            return None
                else:
                    if i in fixed:
                        return None
                    candidate[i] += 1
                    if candidate[i] > ccp.volatile_index(i):
                        return None
                changed = True
    result = GlobalCheckpoint(tuple(candidate))
    if not is_consistent_global_checkpoint(ccp, result):
        return None
    return result


def max_consistent_global_checkpoint(
    ccp: CCP, fixed: Optional[Mapping[int, int]] = None
) -> Optional[GlobalCheckpoint]:
    """The maximum consistent global checkpoint containing ``fixed``.

    ``fixed`` maps process ids to checkpoint indices that must be members.
    Unconstrained processes start from their volatile checkpoint and are
    rolled back until consistency holds (rollback propagation).  Returns
    ``None`` if no consistent global checkpoint contains the fixed set.
    Under RDT the fixpoint is the unique maximum (Wang 1997).
    """
    fixed = dict(fixed or {})
    start = [ccp.volatile_index(pid) for pid in ccp.processes]
    return _fixpoint(ccp, fixed, start, adjust_down=True)


def min_consistent_global_checkpoint(
    ccp: CCP, fixed: Optional[Mapping[int, int]] = None
) -> Optional[GlobalCheckpoint]:
    """The minimum consistent global checkpoint containing ``fixed``.

    Unconstrained processes start from their initial checkpoint and are
    advanced until consistency holds.  Returns ``None`` when impossible.
    """
    fixed = dict(fixed or {})
    start = [0 for _ in ccp.processes]
    return _fixpoint(ccp, fixed, start, adjust_down=False)


def all_consistent_global_checkpoints(ccp: CCP) -> List[GlobalCheckpoint]:
    """Enumerate every consistent global checkpoint (exponential; tests only)."""
    results: List[GlobalCheckpoint] = []
    limits = [ccp.volatile_index(pid) for pid in ccp.processes]

    def recurse(prefix: List[int], pid: int) -> None:
        if pid == ccp.num_processes:
            candidate = GlobalCheckpoint(tuple(prefix))
            if is_consistent_global_checkpoint(ccp, candidate):
                results.append(candidate)
            return
        for index in range(limits[pid] + 1):
            recurse(prefix + [index], pid + 1)

    recurse([], 0)
    return results
