"""Checkpoint-and-Communication-Pattern (CCP) substrate.

This subpackage turns a raw distributed execution (an
:class:`repro.causality.EventLog`) into the checkpoint-level objects the paper
reasons about:

* :mod:`checkpoint` — checkpoint identities, stable vs volatile checkpoints and
  checkpoint intervals (Section 2.2, Equation 1);
* :mod:`pattern` — the :class:`CCP` itself: general checkpoints, ``last_s(i)``,
  checkpoint-level causal precedence, ground-truth dependency vectors;
* :mod:`builder` — a fluent builder for hand-specified CCPs (used to reproduce
  the paper's figures exactly);
* :mod:`zigzag` — Netzer–Xu zigzag paths, C-paths vs Z-paths, zigzag cycles and
  useless checkpoints (Definition 3): the bitset interval-condensation kernel
  plus the brute-force BFS reference it is property-tested against;
* :mod:`analysis_cache` — the shared per-pattern bundle of derived analyses
  (zigzag kernel, R-graph, Theorem-1/2 retained sets, recovery lines),
  reachable as ``ccp.analyses``;
* :mod:`rdt` — the rollback-dependency-trackability property checker
  (Definition 4);
* :mod:`consistency` — consistent global checkpoints and min/max consistent
  global checkpoint queries;
* :mod:`rollback_graph` — the rollback-dependency graph (R-graph) analysis
  utility.
"""

from repro.ccp.analysis_cache import AnalysisCache
from repro.ccp.builder import CCPBuilder
from repro.ccp.checkpoint import Checkpoint, CheckpointId, CheckpointKind
from repro.ccp.consistency import (
    GlobalCheckpoint,
    is_consistent_global_checkpoint,
    max_consistent_global_checkpoint,
    min_consistent_global_checkpoint,
)
from repro.ccp.pattern import CCP
from repro.ccp.rdt import RDTReport, check_rdt
from repro.ccp.rollback_graph import RollbackDependencyGraph
from repro.ccp.zigzag import BruteForceZigzagAnalysis, ZigzagAnalysis, ZigzagPath

__all__ = [
    "AnalysisCache",
    "BruteForceZigzagAnalysis",
    "CCP",
    "CCPBuilder",
    "Checkpoint",
    "CheckpointId",
    "CheckpointKind",
    "GlobalCheckpoint",
    "RDTReport",
    "RollbackDependencyGraph",
    "ZigzagAnalysis",
    "ZigzagPath",
    "check_rdt",
    "is_consistent_global_checkpoint",
    "max_consistent_global_checkpoint",
    "min_consistent_global_checkpoint",
]
