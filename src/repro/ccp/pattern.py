"""The Checkpoint and Communication Pattern (CCP).

A CCP is "the set of all checkpoints taken by all the processes in a
consistent cut and the dependency relation between them created by the
exchanged messages (excluding lost and in-transit messages)" (Section 2.2).

The :class:`CCP` class is derived from an :class:`repro.causality.EventLog`
(optionally restricted to a cut) and offers the checkpoint-level queries used
by the rest of the library:

* stable and volatile (general) checkpoints, ``last_s(i)``;
* checkpoint-level causal precedence (ground truth, computed from the event
  graph rather than from piggybacked vectors);
* per-checkpoint ground-truth dependency vectors, which — for RDT executions —
  coincide with the vectors an RDT protocol piggybacks (Equation 2);
* message interval information needed by the zigzag-path analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.causality.cuts import Cut
from repro.causality.events import Event, EventId, EventLog
from repro.causality.happens_before import CausalOrder
from repro.ccp.checkpoint import Checkpoint, CheckpointId, CheckpointKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ccp.analysis_cache import AnalysisCache


@dataclass(frozen=True, slots=True)
class MessageInterval:
    """A delivered message annotated with its send and receive intervals.

    The *send interval* is the index ``alpha`` such that the send event belongs
    to ``I_sender^alpha``; likewise for the receive interval.  These are the
    only facts about messages needed for zigzag-path analysis (Definition 3).
    """

    message_id: int
    sender: int
    receiver: int
    send_interval: int
    receive_interval: int
    send_seq: int
    receive_seq: int


class CCP:
    """A checkpoint and communication pattern over a recorded execution."""

    def __init__(
        self,
        log: EventLog,
        *,
        causal_order: Optional[CausalOrder] = None,
        recorded_dvs: Optional[Mapping[CheckpointId, Sequence[int]]] = None,
        message_intervals: Optional[Sequence[MessageInterval]] = None,
        analysis_provider: Optional[object] = None,
        departed: Iterable[int] = (),
    ) -> None:
        """Build the CCP of the full recorded execution.

        Parameters
        ----------
        log:
            The execution.  It must be causally replayable (every receive has a
            send); use :meth:`from_log` to restrict to a cut first.
        causal_order:
            A pre-computed :class:`CausalOrder` for ``log``.  Built lazily on
            first event-level precedence query if absent — incrementally
            maintained analyses never pay for the vector-clock replay.
        recorded_dvs:
            Dependency vectors recorded by the checkpointing middleware, keyed
            by checkpoint id.  When present they are attached to the
            corresponding :class:`Checkpoint` records; ground-truth vectors are
            still available through :meth:`ground_truth_dv`.
        message_intervals:
            Pre-computed :class:`MessageInterval` records for every delivered
            message of ``log`` (derived from the log if absent).  Supplied by
            incremental producers such as the simulation trace recorder, which
            tracks intervals as events are appended.
        analysis_provider:
            An optional delta-maintained analysis source (see
            :mod:`repro.ccp.incremental`).  When present, the
            :class:`~repro.ccp.analysis_cache.AnalysisCache` serves Theorem-1/2
            retained sets and recovery lines from it instead of recomputing
            them from the event graph; ``provider.mode == "check"`` makes the
            cache compute both and assert equality.
        departed:
            Pids that left the membership before this cut.  A departed
            process can never be faulty again, so the analyses exclude it
            on both sides: its checkpoints pin nothing, and nothing pins
            them (they are all obsolete — the garbage-of-departed
            invariant).
        """
        self._log = log
        self._lazy_order = causal_order
        self._provider = analysis_provider
        self._departed = frozenset(departed)
        self._recorded_dvs = dict(recorded_dvs) if recorded_dvs else {}

        self._stable_events: List[List[Event]] = [
            log.history(pid).checkpoint_events() for pid in log.processes
        ]
        self._checkpoints: Dict[CheckpointId, Checkpoint] = {}
        self._ground_truth_dvs: Dict[CheckpointId, Tuple[int, ...]] = {}
        self._analyses: Optional["AnalysisCache"] = None
        self._build_checkpoints()
        self._messages = (
            list(message_intervals)
            if message_intervals is not None
            else self._build_message_intervals()
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_log(
        cls,
        log: EventLog,
        cut: Optional[Cut] = None,
        *,
        recorded_dvs: Optional[Mapping[CheckpointId, Sequence[int]]] = None,
    ) -> "CCP":
        """Build the CCP defined by ``cut`` (default: the full execution)."""
        if cut is not None:
            log = cut.restrict(log)
        return cls(log, recorded_dvs=recorded_dvs)

    def _build_checkpoints(self) -> None:
        for pid in self._log.processes:
            for event in self._stable_events[pid]:
                assert event.checkpoint_index is not None
                cid = CheckpointId(pid, event.checkpoint_index)
                self._checkpoints[cid] = Checkpoint(
                    pid=pid,
                    index=event.checkpoint_index,
                    kind=CheckpointKind.STABLE,
                    dependency_vector=self._recorded_or_none(cid),
                    event_seq=event.seq,
                    forced=event.forced,
                    time=event.time,
                )
            volatile_index = self.last_stable(pid) + 1
            vid = CheckpointId(pid, volatile_index)
            self._checkpoints[vid] = Checkpoint(
                pid=pid,
                index=volatile_index,
                kind=CheckpointKind.VOLATILE,
                dependency_vector=self._recorded_or_none(vid),
                event_seq=None,
            )

    def _recorded_or_none(self, cid: CheckpointId) -> Optional[Tuple[int, ...]]:
        recorded = self._recorded_dvs.get(cid)
        return tuple(recorded) if recorded is not None else None

    def _build_message_intervals(self) -> List[MessageInterval]:
        intervals: List[MessageInterval] = []
        for message in self._log.delivered_messages():
            send_event = self._log.event(message.send_event)
            assert message.receive_event is not None
            receive_event = self._log.event(message.receive_event)
            intervals.append(
                MessageInterval(
                    message_id=message.message_id,
                    sender=message.sender,
                    receiver=message.receiver,
                    send_interval=self.interval_of_event(send_event),
                    receive_interval=self.interval_of_event(receive_event),
                    send_seq=send_event.seq,
                    receive_seq=receive_event.seq,
                )
            )
        return intervals

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def log(self) -> EventLog:
        """The underlying event log."""
        return self._log

    @property
    def causal_order(self) -> CausalOrder:
        """The event-level causal order of the execution (built on demand)."""
        if self._lazy_order is None:
            self._lazy_order = CausalOrder(self._log)
        return self._lazy_order

    @property
    def analysis_provider(self) -> Optional[object]:
        """The delta-maintained analysis source attached to this pattern, if any."""
        return self._provider

    @property
    def num_processes(self) -> int:
        """Number of processes in the pattern."""
        return self._log.num_processes

    @property
    def processes(self) -> range:
        """Process ids ``0 .. n-1``."""
        return self._log.processes

    @property
    def departed(self) -> FrozenSet[int]:
        """Pids that left the membership before this cut."""
        return self._departed

    @property
    def active_processes(self) -> List[int]:
        """Process ids that have not departed (dormant joiners included)."""
        if not self._departed:
            return list(self._log.processes)
        return [pid for pid in self._log.processes if pid not in self._departed]

    def base_interval(self, pid: int) -> int:
        """The first checkpoint interval of ``pid`` retained in this pattern.

        0 for full records; for pruned logs this is the log's checkpoint base
        — no event of ``pid`` belongs to an earlier interval, which lets the
        zigzag kernel size its bitsets by the live window.
        """
        return self._log.checkpoint_base(pid)

    def last_stable(self, pid: int) -> int:
        """``last_s(pid)``: index of the last stable checkpoint, or -1 if none."""
        events = self._stable_events[pid]
        if not events:
            return -1
        index = events[-1].checkpoint_index
        assert index is not None
        return index

    def volatile_index(self, pid: int) -> int:
        """Index of the volatile (general) checkpoint ``v_pid``."""
        return self.last_stable(pid) + 1

    def last_stable_id(self, pid: int) -> CheckpointId:
        """``s_pid^last`` as a :class:`CheckpointId` (requires at least one stable)."""
        last = self.last_stable(pid)
        if last < 0:
            raise ValueError(f"process {pid} has no stable checkpoint in this CCP")
        return CheckpointId(pid, last)

    def volatile_id(self, pid: int) -> CheckpointId:
        """The volatile checkpoint ``v_pid`` as a :class:`CheckpointId`."""
        return CheckpointId(pid, self.volatile_index(pid))

    def stable_ids(self, pid: int) -> List[CheckpointId]:
        """All stable checkpoint ids of ``pid``, in index order."""
        events = self._stable_events[pid]
        return [CheckpointId(pid, e.checkpoint_index) for e in events]  # type: ignore[arg-type]

    def general_ids(self, pid: int) -> List[CheckpointId]:
        """All general checkpoint ids of ``pid`` (stable then volatile)."""
        return self.stable_ids(pid) + [self.volatile_id(pid)]

    def all_checkpoints(self) -> List[Checkpoint]:
        """Every checkpoint (stable and volatile) of every process."""
        result: List[Checkpoint] = []
        for pid in self.processes:
            result.extend(self.checkpoint(cid) for cid in self.general_ids(pid))
        return result

    def has_checkpoint(self, cid: CheckpointId) -> bool:
        """True if ``cid`` exists in this pattern."""
        return cid in self._checkpoints

    def checkpoint(self, cid: CheckpointId) -> Checkpoint:
        """The :class:`Checkpoint` record for ``cid``."""
        return self._checkpoints[cid]

    def is_stable(self, cid: CheckpointId) -> bool:
        """True if ``cid`` denotes a stable checkpoint of this pattern."""
        return self.has_checkpoint(cid) and self._checkpoints[cid].is_stable

    def is_volatile(self, cid: CheckpointId) -> bool:
        """True if ``cid`` denotes the volatile checkpoint of its process."""
        return self.has_checkpoint(cid) and self._checkpoints[cid].is_volatile

    def total_stable_checkpoints(self) -> int:
        """Total number of stable checkpoints across all processes."""
        return sum(len(self._stable_events[pid]) for pid in self.processes)

    # ------------------------------------------------------------------
    # Intervals
    # ------------------------------------------------------------------
    def interval_of_event(self, event: Event | EventId) -> int:
        """The checkpoint interval ``I_pid^gamma`` an event belongs to.

        ``I_i^gamma`` spans from ``c_i^{gamma-1}`` (inclusive) to ``c_i^gamma``
        (exclusive), so an event's interval is one more than the index of the
        last checkpoint taken at or before it.
        """
        if isinstance(event, EventId):
            event = self._log.event(event)
        last = self._log.checkpoint_base(event.pid) - 1
        for ckpt in self._stable_events[event.pid]:
            if ckpt.seq <= event.seq:
                assert ckpt.checkpoint_index is not None
                last = ckpt.checkpoint_index
            else:
                break
        return last + 1

    def messages(self) -> List[MessageInterval]:
        """Delivered messages annotated with send/receive intervals."""
        return list(self._messages)

    # ------------------------------------------------------------------
    # Shared derived analyses
    # ------------------------------------------------------------------
    @property
    def analyses(self) -> "AnalysisCache":
        """The shared :class:`~repro.ccp.analysis_cache.AnalysisCache`.

        Zigzag kernel, R-graph, Theorem-1/2 retained sets and recovery lines
        are each materialised at most once per pattern; every consumer module
        (consistency, obsolete oracles, optimality audit, recovery) goes
        through this bundle instead of building private analysis objects.
        """
        if self._analyses is None:
            from repro.ccp.analysis_cache import AnalysisCache

            self._analyses = AnalysisCache(self)
        return self._analyses

    # ------------------------------------------------------------------
    # Checkpoint-level causal precedence (ground truth)
    # ------------------------------------------------------------------
    def causally_precedes(self, first: CheckpointId, second: CheckpointId) -> bool:
        """True iff general checkpoint ``first`` causally precedes ``second``.

        Stable checkpoints are anchored at their CHECKPOINT event; the volatile
        checkpoint of a process is anchored after the last event of that
        process.  The volatile checkpoint therefore never precedes anything,
        and is preceded by everything in the causal past of its process's last
        event (including all of the process's own checkpoints).
        """
        self._require(first)
        self._require(second)
        if first == second:
            return False
        first_cp = self._checkpoints[first]
        second_cp = self._checkpoints[second]
        if first_cp.is_volatile:
            return False
        assert first_cp.event_seq is not None
        first_event = EventId(first.pid, first_cp.event_seq)
        if second_cp.is_stable:
            assert second_cp.event_seq is not None
            second_event = EventId(second.pid, second_cp.event_seq)
            if first.pid == second.pid:
                return first.index < second.index
            return self.causal_order.precedes(first_event, second_event)
        # second is volatile: anchored after the last event of its process.
        if first.pid == second.pid:
            return True
        history = self._log.history(second.pid)
        if len(history) == 0:
            return False
        last_event = history[len(history) - 1].event_id
        return first_event == last_event or self.causal_order.precedes(first_event, last_event)

    def consistent(self, first: CheckpointId, second: CheckpointId) -> bool:
        """Two checkpoints are consistent iff neither causally precedes the other."""
        return not self.causally_precedes(first, second) and not self.causally_precedes(
            second, first
        )

    # ------------------------------------------------------------------
    # Dependency vectors
    # ------------------------------------------------------------------
    def ground_truth_dv(self, cid: CheckpointId) -> Tuple[int, ...]:
        """The transitive dependency vector implied by the event graph.

        Entry ``a`` is one more than the index of the latest checkpoint of
        ``p_a`` that causally precedes ``cid`` (0 if none).  For executions
        driven by an RDT protocol this equals the vector the protocol stored
        with the checkpoint (Equation 2), which tests verify.
        """
        self._require(cid)
        cached = self._ground_truth_dvs.get(cid)
        if cached is not None:
            return cached
        entries = [0] * self.num_processes
        for pid in self.processes:
            best = -1
            for other in self.stable_ids(pid):
                if other == cid:
                    continue
                if self.causally_precedes(other, cid):
                    best = max(best, other.index)
            entries[pid] = best + 1
        result = tuple(entries)
        self._ground_truth_dvs[cid] = result
        return result

    def dv(self, cid: CheckpointId) -> Tuple[int, ...]:
        """The dependency vector of ``cid``: recorded if available, else ground truth."""
        recorded = self._checkpoints[cid].dependency_vector
        if recorded is not None:
            return recorded
        return self.ground_truth_dv(cid)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, cid: CheckpointId) -> None:
        if cid not in self._checkpoints:
            raise KeyError(f"checkpoint {cid} is not part of this CCP")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CCP(processes={self.num_processes}, "
            f"stable={self.total_stable_checkpoints()}, "
            f"messages={len(self._messages)})"
        )
