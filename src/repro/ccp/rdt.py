"""Rollback-dependency trackability (RDT) property checker.

Definition 4 of the paper: a CCP is RD-trackable iff for any two checkpoints
``c_i^gamma`` and ``c_j^iota``, a zigzag path from the former to the latter
implies causal precedence (``c_i^gamma ~> c_j^iota  =>  c_i^gamma -> c_j^iota``).

RD-trackable patterns have no useless checkpoints (a zigzag cycle would imply
``c -> c``, which is impossible) and all checkpoint dependencies can be tracked
on-the-fly with transitive dependency vectors (Equation 2).

The checker compares the ground-truth zigzag relation against the ground-truth
causal relation and reports every violating pair, together with a concrete
witness Z-path for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP
from repro.ccp.zigzag import ZigzagAnalysis, ZigzagPath


@dataclass(frozen=True)
class RDTViolation:
    """A pair of checkpoints connected by a zigzag path but not causally related."""

    source: CheckpointId
    target: CheckpointId
    witness: Optional[ZigzagPath] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source} ~> {self.target} but {self.source} -/-> {self.target}"


@dataclass
class RDTReport:
    """Outcome of an RDT check over a CCP."""

    is_rdt: bool
    violations: List[RDTViolation] = field(default_factory=list)
    useless_checkpoints: List[CheckpointId] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.is_rdt


def check_rdt(
    ccp: CCP,
    *,
    analysis: Optional[ZigzagAnalysis] = None,
    collect_witnesses: bool = True,
) -> RDTReport:
    """Check Definition 4 over every ordered pair of general checkpoints.

    Because consistent-cut restrictions of a CCP only remove messages and
    checkpoints, a CCP that passes this check is RD-trackable on every
    consistent cut of the same execution as well, which is the form in which
    the paper states the assumption for RDT checkpointing protocols.
    """
    analysis = analysis if analysis is not None else ccp.analyses.zigzag
    violations: List[RDTViolation] = []
    pairs: List[Tuple[CheckpointId, CheckpointId]] = analysis.zigzag_pairs()
    for source, target in pairs:
        if not ccp.causally_precedes(source, target):
            witness = analysis.find_zigzag_path(source, target) if collect_witnesses else None
            violations.append(RDTViolation(source, target, witness))
    useless = [v.source for v in violations if v.source == v.target]
    return RDTReport(is_rdt=not violations, violations=violations, useless_checkpoints=useless)
