"""Fluent construction of hand-specified CCPs.

The paper's figures (1 through 5) are small, hand-drawn checkpoint and
communication patterns.  :class:`CCPBuilder` lets tests, examples and
benchmarks describe such patterns declaratively::

    builder = CCPBuilder(3)                # s_i^0 taken automatically
    builder.send(0, 1, tag="m1")
    builder.receive("m1")
    builder.checkpoint(1)                  # s_1^1
    ccp = builder.build()

Alongside the event structure the builder simulates the dependency-vector
propagation of Section 4.2, so the built CCP carries the exact vectors an RDT
protocol would have piggybacked and stored.  This is what lets Figure 4 of the
paper be reproduced value-for-value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.causality.dependency_vector import DependencyVector
from repro.causality.events import EventLog
from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP


class CCPBuilder:
    """Incrementally describe a checkpoint and communication pattern."""

    def __init__(
        self,
        num_processes: int,
        *,
        initial_checkpoints: bool = True,
        track_dependency_vectors: bool = True,
    ) -> None:
        """Create a builder for ``num_processes`` processes.

        Parameters
        ----------
        initial_checkpoints:
            When True (the default, matching the paper's model) every process
            starts by storing its initial stable checkpoint ``s_i^0``.
        track_dependency_vectors:
            When True the builder simulates dependency-vector propagation and
            records the vector stored with every checkpoint.
        """
        if num_processes <= 0:
            raise ValueError("a CCP needs at least one process")
        self._log = EventLog(num_processes)
        self._track = track_dependency_vectors
        self._dvs = [
            DependencyVector.initial(num_processes, pid) for pid in range(num_processes)
        ]
        self._message_tags: Dict[str, int] = {}
        self._message_dvs: Dict[int, Tuple[int, ...]] = {}
        self._recorded: Dict[CheckpointId, Tuple[int, ...]] = {}
        self._next_auto_tag = 0
        self._clock = 0.0
        if initial_checkpoints:
            for pid in range(num_processes):
                self.checkpoint(pid)

    # ------------------------------------------------------------------
    # Construction verbs
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """Number of processes in the pattern being built."""
        return self._log.num_processes

    def checkpoint(self, pid: int, *, forced: bool = False) -> CheckpointId:
        """Take the next stable checkpoint of ``pid`` and return its id."""
        index = self._log.history(pid).last_checkpoint_index() + 1
        self._clock += 1.0
        self._log.add_checkpoint(pid, index, time=self._clock, forced=forced)
        cid = CheckpointId(pid, index)
        if self._track:
            self._recorded[cid] = self._dvs[pid].snapshot()
            self._dvs[pid].advance_after_checkpoint()
        return cid

    def internal(self, pid: int) -> None:
        """Record an internal (non-communication, non-checkpoint) event."""
        self._clock += 1.0
        self._log.add_internal(pid, time=self._clock)

    def send(self, sender: int, receiver: int, *, tag: Optional[str] = None) -> str:
        """Record the send of a message; returns the tag used to receive it."""
        if tag is None:
            tag = f"_auto{self._next_auto_tag}"
            self._next_auto_tag += 1
        if tag in self._message_tags:
            raise ValueError(f"message tag {tag!r} already used")
        self._clock += 1.0
        _, message = self._log.add_send(sender, receiver, time=self._clock)
        self._message_tags[tag] = message.message_id
        if self._track:
            self._message_dvs[message.message_id] = self._dvs[sender].piggyback()
        return tag

    def receive(self, tag: str) -> None:
        """Record the receipt of a previously sent message."""
        if tag not in self._message_tags:
            raise ValueError(f"unknown message tag {tag!r}")
        message_id = self._message_tags[tag]
        self._clock += 1.0
        event = self._log.add_receive(message_id, time=self._clock)
        if self._track:
            self._dvs[event.pid].absorb(self._message_dvs[message_id])

    def message_exchange(
        self, sender: int, receiver: int, *, tag: Optional[str] = None
    ) -> str:
        """Convenience: a send immediately followed by its receive."""
        tag = self.send(sender, receiver, tag=tag)
        self.receive(tag)
        return tag

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def current_dv(self, pid: int) -> Tuple[int, ...]:
        """The dependency vector currently held by ``pid`` (``DV(v_pid)``)."""
        if not self._track:
            raise ValueError("dependency-vector tracking is disabled")
        return self._dvs[pid].snapshot()

    def event_log(self) -> EventLog:
        """The raw event log built so far (shared, not copied)."""
        return self._log

    def build(self) -> CCP:
        """Build the CCP of the execution described so far.

        The recorded dependency vectors of stable checkpoints and the current
        vectors of the volatile checkpoints are attached to the pattern when
        tracking is enabled.
        """
        recorded: Dict[CheckpointId, Tuple[int, ...]] = dict(self._recorded)
        if self._track:
            for pid in range(self.num_processes):
                last = self._log.history(pid).last_checkpoint_index()
                recorded[CheckpointId(pid, last + 1)] = self._dvs[pid].snapshot()
        return CCP(self._log, recorded_dvs=recorded if self._track else None)

    def message_id(self, tag: str) -> int:
        """The internal message id assigned to ``tag``."""
        return self._message_tags[tag]

    def tags(self) -> List[str]:
        """All message tags used so far, in creation order."""
        return sorted(self._message_tags, key=self._message_tags.get)  # type: ignore[arg-type]
