"""Shared, lazily materialised analyses of one CCP.

Every oracle in the library — zigzag queries, the Theorem-1/2 obsolete
characterisations, recovery-line determination, R-graph reachability — is a
pure function of the pattern, yet historically each consumer rebuilt its own
analysis object per call: the simulator's ``audit="full"`` mode constructed a
fresh :class:`~repro.ccp.zigzag.ZigzagAnalysis` and re-derived the retained
sets at every sampling instant.  :class:`AnalysisCache` is the single home for
those derived structures: one instance hangs off each :class:`~repro.ccp.CCP`
(via :attr:`CCP.analyses <repro.ccp.pattern.CCP.analyses>`) and everything is
computed at most once per pattern.

A CCP is immutable once built, so the cache never needs invalidation at this
level; *live* patterns are handled one layer up by
:class:`repro.simulation.trace.TraceRecorder`, which reuses the same CCP
object (and therefore the same cache) until the recorded execution changes.

Imports of the consumer modules are deferred to call time: this module sits
below :mod:`repro.core.obsolete` and :mod:`repro.recovery.recovery_line` in
the import graph, while their public functions delegate back here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.ccp.checkpoint import CheckpointId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ccp.consistency import GlobalCheckpoint
    from repro.ccp.pattern import CCP
    from repro.ccp.rollback_graph import RollbackDependencyGraph
    from repro.ccp.zigzag import ZigzagAnalysis


class AnalysisCache:
    """Lazily built, shared analyses over one immutable CCP."""

    def __init__(self, ccp: "CCP") -> None:
        self._ccp = ccp
        self._zigzag: Optional["ZigzagAnalysis"] = None
        self._rollback_graph: Optional["RollbackDependencyGraph"] = None
        self._useless: Optional[Tuple[CheckpointId, ...]] = None
        self._theorem1_retained: Optional[FrozenSet[CheckpointId]] = None
        self._theorem2_retained: Optional[FrozenSet[CheckpointId]] = None
        self._recovery_lines: Dict[FrozenSet[int], "GlobalCheckpoint"] = {}

    @property
    def ccp(self) -> "CCP":
        """The pattern these analyses are derived from."""
        return self._ccp

    # ------------------------------------------------------------------
    # Zigzag kernel and R-graph
    # ------------------------------------------------------------------
    @property
    def zigzag(self) -> "ZigzagAnalysis":
        """The bitset zigzag kernel of the pattern."""
        if self._zigzag is None:
            from repro.ccp.zigzag import ZigzagAnalysis

            self._zigzag = ZigzagAnalysis(self._ccp)
        return self._zigzag

    @property
    def rollback_graph(self) -> "RollbackDependencyGraph":
        """The rollback-dependency graph (R-graph) of the pattern."""
        if self._rollback_graph is None:
            from repro.ccp.rollback_graph import RollbackDependencyGraph

            self._rollback_graph = RollbackDependencyGraph(self._ccp)
        return self._rollback_graph

    @property
    def useless_checkpoints(self) -> Tuple[CheckpointId, ...]:
        """Checkpoints on a zigzag cycle (Netzer–Xu uselessness)."""
        if self._useless is None:
            self._useless = tuple(self.zigzag.useless_checkpoints())
        return self._useless

    # ------------------------------------------------------------------
    # Obsolete-checkpoint characterisations (Theorems 1 and 2)
    # ------------------------------------------------------------------
    # The classic computations are batch equivalents of the per-checkpoint
    # transcriptions in repro.core.obsolete (_is_retained_theorem1/2), with
    # the loop-invariant subterms hoisted: the last stable checkpoint of each
    # process (Theorem 1) and the last-known-checkpoint matrix last_k_i(f)
    # (Theorem 2) do not depend on the checkpoint under test, so computing
    # them per checkpoint — as the literal transcription does — made every
    # full audit quadratic in the number of checkpoints.  The
    # equivalence-property tests pin both implementations to the literal
    # statements of the theorems.
    #
    # When the CCP carries an ``analysis_provider`` (a live recorder's
    # incremental knowledge state), the provider's answer is served instead:
    # on pruned histories it is the only authoritative one.  In "check" mode
    # the classic answer is computed as well and compared, whenever the log
    # is unpruned and therefore a valid reference.

    def _provider_answer(self, attribute: str):
        provider = self._ccp.analysis_provider
        if provider is None:
            return None
        answer = getattr(provider, attribute)()
        if provider.mode == "check" and provider.comparable:
            classic = getattr(self, f"_classic_{attribute}")()
            if classic != answer:
                raise AssertionError(
                    f"incremental {attribute} diverged from full recompute: "
                    f"incremental={sorted(answer)} classic={sorted(classic)}"
                )
        return answer

    @property
    def theorem1_retained(self) -> FrozenSet[CheckpointId]:
        """Stable checkpoints Theorem 1 still deems necessary."""
        if self._theorem1_retained is None:
            answer = self._provider_answer("theorem1_retained")
            self._theorem1_retained = (
                answer if answer is not None else self._classic_theorem1_retained()
            )
        return self._theorem1_retained

    def _classic_theorem1_retained(self) -> FrozenSet[CheckpointId]:
        # Departed processes are excluded on both sides (see CCP.departed):
        # they can never be faulty again, so their last checkpoints pin
        # nothing and their own checkpoints are all obsolete.
        ccp = self._ccp
        active = ccp.active_processes
        lasts = [
            ccp.last_stable_id(f) for f in active if ccp.last_stable(f) >= 0
        ]
        retained = set()
        for pid in active:
            for cid in ccp.stable_ids(pid):
                successor = CheckpointId(pid, cid.index + 1)
                for last in lasts:
                    if ccp.causally_precedes(
                        last, successor
                    ) and not ccp.causally_precedes(last, cid):
                        retained.add(cid)
                        break
        return frozenset(retained)

    @property
    def theorem2_retained(self) -> FrozenSet[CheckpointId]:
        """Stable checkpoints retained under causal knowledge only (Theorem 2)."""
        if self._theorem2_retained is None:
            answer = self._provider_answer("theorem2_retained")
            self._theorem2_retained = (
                answer if answer is not None else self._classic_theorem2_retained()
            )
        return self._theorem2_retained

    def _classic_theorem2_retained(self) -> FrozenSet[CheckpointId]:
        ccp = self._ccp
        active = ccp.active_processes
        # last_known[i][f]: index of the latest stable checkpoint of p_f in
        # the causal past of p_i's volatile state (-1 if none) — last_k_i(f).
        # Only active observers/subjects matter: departed processes never
        # become faulty again, so knowledge about them retains nothing.
        last_known = {
            observer: {
                f: max(
                    (
                        cid.index
                        for cid in ccp.stable_ids(f)
                        if ccp.causally_precedes(cid, ccp.volatile_id(observer))
                    ),
                    default=-1,
                )
                for f in active
            }
            for observer in active
        }
        retained = set()
        for pid in active:
            known_ids = [
                CheckpointId(f, index)
                for f, index in last_known[pid].items()
                if index >= 0
            ]
            for cid in ccp.stable_ids(pid):
                successor = CheckpointId(pid, cid.index + 1)
                for known in known_ids:
                    if ccp.causally_precedes(
                        known, successor
                    ) and not ccp.causally_precedes(known, cid):
                        retained.add(cid)
                        break
        return frozenset(retained)

    # ------------------------------------------------------------------
    # Recovery lines
    # ------------------------------------------------------------------
    def recovery_line(self, faulty: Iterable[int]) -> "GlobalCheckpoint":
        """The recovery line ``R_F`` (Lemma 1), memoised per faulty set."""
        key = frozenset(faulty)
        cached = self._recovery_lines.get(key)
        if cached is None:
            from repro.recovery.recovery_line import _recovery_line_lemma1

            provider = self._ccp.analysis_provider
            if provider is not None:
                cached = provider.recovery_line(key)
                if provider.mode == "check" and provider.comparable:
                    classic = _recovery_line_lemma1(self._ccp, key)
                    if classic != cached:
                        raise AssertionError(
                            f"incremental recovery line for F={sorted(key)} "
                            f"diverged from full recompute: "
                            f"incremental={cached} classic={classic}"
                        )
            else:
                cached = _recovery_line_lemma1(self._ccp, key)
            self._recovery_lines[key] = cached
        return cached
