"""Zigzag paths, Z-paths, C-paths and useless checkpoints (Netzer & Xu).

Definition 3 of the paper: a sequence of messages ``[m1, ..., mk]`` is a
*zigzag path* from ``c_a^alpha`` to ``c_b^beta`` iff

(i)   ``p_a`` sends ``m1`` after ``c_a^alpha``;
(ii)  if ``m_i`` is received by ``p_c``, then ``m_{i+1}`` is sent by ``p_c`` in
      the same or a later checkpoint interval;
(iii) ``p_b`` receives ``mk`` before ``c_b^beta``.

A zigzag path is *causal* (a C-path) if the receipt of each message but the
last causally precedes the send of the next one; otherwise it is a
(non-causal) Z-path.  A zigzag path from a checkpoint to itself is a *zigzag
cycle* and renders the checkpoint *useless*.

Two implementations of the relation are provided:

* :class:`ZigzagAnalysis` — the production kernel.  It condenses the relation
  to the *interval level*: one node per checkpoint interval ``I_p^gamma``,
  a chain edge ``(p, gamma) -> (p, gamma+1)`` (a later interval can use a
  subset of the messages an earlier one can) and one edge
  ``(sender, send_interval) -> (receiver, receive_interval)`` per delivered
  message.  Strongly connected components of this graph are exactly the
  zigzag cycles; condensing them yields a DAG over which *arrival closures*
  (the set of interval nodes that some hand-off chain can be received in) are
  propagated level by level: components are batched into reverse-topological
  *levels* (a component's level is one more than the maximum level of the
  components it reaches directly), each component ORs the closures of its
  deduplicated successor components exactly once, and whole levels are
  processed as a block.  Two propagation backends share that schedule — the
  default pure-Python big-int backend (the correctness reference) and an
  optional numpy ``uint64`` blocked-bitset backend selected with
  ``kernel="numpy"`` (or the ``REPRO_ZIGZAG_KERNEL`` environment variable),
  which gathers each level's successor rows into one matrix and reduces them
  with a single vectorised OR.  Every relation query then becomes a couple of
  bit operations over the precomputed closures.  Node layouts are *based*:
  bit 0 of a process's segment is its first retained interval, so patterns
  whose prefix has been pruned away (see ``EventLog.checkpoint_bases``) get
  compact bitsets sized by the live window, not by run length.
* :class:`BruteForceZigzagAnalysis` — the original message-level BFS over the
  hand-off graph (edge ``m -> m'`` iff ``m'`` is sent by the receiver of
  ``m`` in the same or a later interval).  It is kept as the executable
  specification: property tests assert the kernel agrees with it query for
  query, and the perf benchmark measures the kernel against it.

Both classes share the Definition-3 sequence checkers and the witness-path
search through :class:`_ZigzagBase`.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP, MessageInterval


@dataclass(frozen=True, slots=True)
class ZigzagPath:
    """A concrete zigzag path between two checkpoints.

    ``message_ids`` lists the messages in order; ``causal`` tells whether the
    path is a C-path (every hand-off is causal) or a Z-path.
    """

    source: CheckpointId
    target: CheckpointId
    message_ids: Tuple[int, ...]
    causal: bool

    def __len__(self) -> int:
        return len(self.message_ids)


class _ZigzagBase:
    """Message bookkeeping and Definition-3 checkers shared by both engines."""

    def __init__(self, ccp: CCP) -> None:
        self._ccp = ccp
        self._messages: Dict[int, MessageInterval] = {
            m.message_id: m for m in ccp.messages()
        }
        # Per-sender message lists sorted by send interval: _start_messages and
        # the hand-off successor computation are range queries on these.
        self._by_sender: Dict[int, List[MessageInterval]] = {}
        for message in self._messages.values():
            self._by_sender.setdefault(message.sender, []).append(message)
        for sent in self._by_sender.values():
            sent.sort(key=lambda m: m.send_interval)
        self._send_keys: Dict[int, List[int]] = {
            pid: [m.send_interval for m in sent]
            for pid, sent in self._by_sender.items()
        }
        self._successors_cache: Optional[Dict[int, List[int]]] = None

    @property
    def ccp(self) -> CCP:
        """The pattern this analysis was built over."""
        return self._ccp

    # ------------------------------------------------------------------
    # Message graph (lazy; only needed for witness-path search)
    # ------------------------------------------------------------------
    def _sent_at_or_after(self, pid: int, interval: int) -> List[MessageInterval]:
        """Messages sent by ``pid`` in interval ``interval`` or later."""
        sent = self._by_sender.get(pid)
        if not sent:
            return []
        cut = bisect_left(self._send_keys[pid], interval)
        return sent[cut:]

    @property
    def _successors(self) -> Dict[int, List[int]]:
        """The message hand-off graph: ``m -> m'`` iff condition (ii) holds."""
        if self._successors_cache is None:
            successors: Dict[int, List[int]] = {}
            for message in self._messages.values():
                successors[message.message_id] = [
                    candidate.message_id
                    for candidate in self._sent_at_or_after(
                        message.receiver, message.receive_interval
                    )
                    if candidate.message_id != message.message_id
                ]
            self._successors_cache = successors
        return self._successors_cache

    def _start_messages(self, source: CheckpointId) -> List[int]:
        """Messages sent by the source process after ``source`` (condition i)."""
        return [
            m.message_id
            for m in self._sent_at_or_after(source.pid, source.index + 1)
        ]

    def _is_end_message(self, message_id: int, target: CheckpointId) -> bool:
        """Condition (iii): received by the target process before the target checkpoint."""
        message = self._messages[message_id]
        return message.receiver == target.pid and message.receive_interval <= target.index

    # ------------------------------------------------------------------
    # Relation queries (engine-specific)
    # ------------------------------------------------------------------
    def zigzag_exists(self, source: CheckpointId, target: CheckpointId) -> bool:
        """True iff some zigzag path connects ``source`` to ``target`` (``source ~> target``)."""
        raise NotImplementedError

    def zigzag_pairs(self) -> List[Tuple[CheckpointId, CheckpointId]]:
        """All ordered pairs ``(c, c')`` with a zigzag path from ``c`` to ``c'``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Witness paths
    # ------------------------------------------------------------------
    def find_zigzag_path(
        self, source: CheckpointId, target: CheckpointId
    ) -> Optional[ZigzagPath]:
        """A concrete (shortest) zigzag path from ``source`` to ``target``, if any."""
        best: Optional[List[int]] = None
        for start in self._start_messages(source):
            path = self._shortest_to_end(start, target)
            if path is not None and (best is None or len(path) < len(best)):
                best = path
        if best is None:
            return None
        return ZigzagPath(
            source=source,
            target=target,
            message_ids=tuple(best),
            causal=self.is_causal_sequence(best),
        )

    def _shortest_to_end(self, start: int, target: CheckpointId) -> Optional[List[int]]:
        parents: Dict[int, Optional[int]] = {start: None}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            if self._is_end_message(current, target):
                path: List[int] = []
                node: Optional[int] = current
                while node is not None:
                    path.append(node)
                    node = parents[node]
                return list(reversed(path))
            for succ in self._successors[current]:
                if succ not in parents:
                    parents[succ] = current
                    queue.append(succ)
        return None

    # ------------------------------------------------------------------
    # Path classification (Definition 3 checker)
    # ------------------------------------------------------------------
    def is_zigzag_sequence(
        self,
        message_ids: Sequence[int],
        source: CheckpointId,
        target: CheckpointId,
    ) -> bool:
        """Check a concrete message sequence against Definition 3."""
        if not message_ids:
            return False
        messages = [self._messages[mid] for mid in message_ids]
        first, last = messages[0], messages[-1]
        if first.sender != source.pid or first.send_interval < source.index + 1:
            return False
        if last.receiver != target.pid or last.receive_interval > target.index:
            return False
        for current, nxt in zip(messages, messages[1:]):
            if nxt.sender != current.receiver:
                return False
            if nxt.send_interval < current.receive_interval:
                return False
        return True

    def is_causal_sequence(self, message_ids: Sequence[int]) -> bool:
        """True iff each receipt causally precedes the next send (C-path hand-offs)."""
        messages = [self._messages[mid] for mid in message_ids]
        for current, nxt in zip(messages, messages[1:]):
            if nxt.sender != current.receiver:
                return False
            if nxt.send_seq <= current.receive_seq:
                return False
        return True

    # ------------------------------------------------------------------
    # Cycles and useless checkpoints
    # ------------------------------------------------------------------
    def has_zigzag_cycle(self, checkpoint: CheckpointId) -> bool:
        """True iff a zigzag path connects ``checkpoint`` to itself (Z-cycle)."""
        return self.zigzag_exists(checkpoint, checkpoint)

    def useless_checkpoints(self) -> List[CheckpointId]:
        """All checkpoints on a zigzag cycle (in no consistent global checkpoint)."""
        return [
            cid
            for pid in self._ccp.processes
            for cid in self._ccp.general_ids(pid)
            if self.has_zigzag_cycle(cid)
        ]

    def zigzag_pair_count(self) -> int:
        """Number of ordered pairs in :meth:`zigzag_pairs`.

        Engines may override this with a closed form that avoids materialising
        the (potentially huge) pair list.
        """
        return len(self.zigzag_pairs())


def _resolve_kernel(kernel: Optional[str]) -> str:
    """Resolve the propagation backend name (argument, then env, then default)."""
    resolved = kernel if kernel is not None else os.environ.get(
        "REPRO_ZIGZAG_KERNEL", "bigint"
    )
    if resolved not in ("bigint", "numpy"):
        raise ValueError(
            f"unknown zigzag kernel {resolved!r} (expected 'bigint' or 'numpy')"
        )
    if resolved == "numpy":
        try:
            import numpy  # noqa: F401
        except ImportError as exc:  # pragma: no cover - env without numpy
            raise RuntimeError(
                "zigzag kernel 'numpy' requested but numpy is not installed"
            ) from exc
    return resolved


class ZigzagAnalysis(_ZigzagBase):
    """Bitset zigzag kernel: interval condensation + blocked reachability.

    Construction is ``O(N + M)`` graph building plus one SCC pass and one
    bitset OR per condensation edge, where ``N`` is the number of *retained*
    checkpoint intervals and ``M`` the number of delivered messages.
    Components are grouped into reverse-topological levels and each level is
    propagated as a block; ``kernel="numpy"`` reduces each level with
    vectorised ``uint64`` word operations while the default ``"bigint"``
    backend stays pure Python.  After construction (both backends expose the
    same Python big-int closures):

    * :meth:`zigzag_exists` is one AND over two precomputed big ints;
    * :meth:`useless_checkpoints` is one bit test per general checkpoint;
    * :meth:`zigzag_pairs` extracts, per (source, process) pair, the lowest
      arrival bit of the closure, and :meth:`zigzag_pair_count` sums the
      pair counts in closed form without materialising the list.
    """

    def __init__(self, ccp: CCP, *, kernel: Optional[str] = None) -> None:
        super().__init__(ccp)
        self._kernel = _resolve_kernel(kernel)
        # Node layout: node (p, gamma) at bit offset[p] + (gamma - lo[p])
        # represents the hand-off state "a message sent by p in interval
        # >= gamma is usable"; gamma ranges over lo(p)..volatile_index(p),
        # where lo(p) is the first interval retained in the (possibly pruned)
        # log — every event of p lives in one of those intervals.
        self._volatile: List[int] = [
            ccp.volatile_index(pid) for pid in ccp.processes
        ]
        self._lo: List[int] = [ccp.base_interval(pid) for pid in ccp.processes]
        self._offsets: List[int] = []
        total = 0
        for pid in ccp.processes:
            self._offsets.append(total)
            total += self._volatile[pid] - self._lo[pid] + 1
        self._num_nodes = total
        self._closures: List[int] = self._compute_closures()

    @property
    def kernel(self) -> str:
        """The propagation backend this analysis was built with."""
        return self._kernel

    # ------------------------------------------------------------------
    # Kernel construction
    # ------------------------------------------------------------------
    def _node(self, pid: int, interval: int) -> int:
        return self._offsets[pid] + (interval - self._lo[pid])

    def _compute_closures(self) -> List[int]:
        """Arrival closure of every interval node, as one big int per node.

        Bit ``node(r, rho)`` is set in ``closure[u]`` iff some hand-off chain
        whose first message is sendable from state ``u`` ends with a message
        received by ``r`` in interval ``rho``.  Closures are computed once per
        strongly connected component.  Tarjan's algorithm emits components in
        reverse topological order (every component after everything it
        reaches), which makes levelling a single forward pass: a component's
        level is one more than the maximum level of its (deduplicated)
        successor components.  Levels are then propagated as blocks, sink
        level first, by the selected backend.
        """
        n = self._num_nodes
        # Edges: chain (p, g) -> (p, g+1); message (sender, sigma) -> (receiver, rho).
        chain_next: List[int] = [-1] * n
        for pid in self._ccp.processes:
            for gamma in range(self._lo[pid], self._volatile[pid]):
                chain_next[self._node(pid, gamma)] = self._node(pid, gamma + 1)
        message_edges: List[List[int]] = [[] for _ in range(n)]
        for message in self._messages.values():
            source = self._node(message.sender, message.send_interval)
            target = self._node(message.receiver, message.receive_interval)
            message_edges[source].append(target)

        def edges_of(u: int) -> List[int]:
            succ = message_edges[u]
            nxt = chain_next[u]
            return succ if nxt < 0 else succ + [nxt]

        component, components = self._tarjan_scc(edges_of, n)
        num_comps = len(components)

        # Condense: per-component direct arrival bits (message-edge targets,
        # including intra-component ones) and deduplicated successor
        # components, then assign reverse-topological levels.
        comp_targets: List[List[int]] = [[] for _ in range(num_comps)]
        comp_succs: List[List[int]] = [[] for _ in range(num_comps)]
        level: List[int] = [0] * num_comps
        for comp_id, members in enumerate(components):
            succ_set: Set[int] = set()
            targets = comp_targets[comp_id]
            for u in members:
                for v in message_edges[u]:
                    targets.append(v)
                    if component[v] != comp_id:
                        succ_set.add(component[v])
                nxt = chain_next[u]
                if nxt >= 0 and component[nxt] != comp_id:
                    succ_set.add(component[nxt])
            succs = sorted(succ_set)
            comp_succs[comp_id] = succs
            if succs:
                level[comp_id] = 1 + max(level[s] for s in succs)
        levels: List[List[int]] = [[] for _ in range(max(level, default=-1) + 1)]
        for comp_id, lv in enumerate(level):
            levels[lv].append(comp_id)

        if self._kernel == "numpy":
            comp_closure = self._propagate_numpy(
                num_comps, comp_targets, comp_succs, levels
            )
        else:
            comp_closure = self._propagate_bigint(
                num_comps, comp_targets, comp_succs, levels
            )

        closures = [0] * n
        for comp_id, members in enumerate(components):
            bits = comp_closure[comp_id]
            for u in members:
                closures[u] = bits
        return closures

    @staticmethod
    def _propagate_bigint(
        num_comps: int,
        comp_targets: List[List[int]],
        comp_succs: List[List[int]],
        levels: List[List[int]],
    ) -> List[int]:
        """Pure-Python blocked propagation: one big-int OR per condensation edge."""
        comp_closure: List[int] = [0] * num_comps
        for level_comps in levels:
            for comp_id in level_comps:
                bits = 0
                for v in comp_targets[comp_id]:
                    bits |= 1 << v
                for s in comp_succs[comp_id]:
                    bits |= comp_closure[s]
                comp_closure[comp_id] = bits
        return comp_closure

    def _propagate_numpy(
        self,
        num_comps: int,
        comp_targets: List[List[int]],
        comp_succs: List[List[int]],
        levels: List[List[int]],
    ) -> List[int]:
        """Vectorised blocked propagation over a ``uint64`` bitset matrix.

        Each component owns one row of ``ceil(num_nodes / 64)`` words.  Direct
        arrival bits are scattered with a single ``bitwise_or.at``; per level,
        the successor rows of every component in the level are gathered into
        one matrix and reduced with ``bitwise_or.reduceat``.  Rows are
        converted back to Python big ints at the end so the query layer is
        backend independent.
        """
        import numpy as np

        words = max(1, (self._num_nodes + 63) >> 6)
        rows = np.zeros((num_comps, words), dtype=np.uint64)
        comp_ids: List[int] = []
        word_ids: List[int] = []
        bit_vals: List[int] = []
        for comp_id, targets in enumerate(comp_targets):
            for v in targets:
                comp_ids.append(comp_id)
                word_ids.append(v >> 6)
                bit_vals.append(1 << (v & 63))
        if comp_ids:
            np.bitwise_or.at(
                rows,
                (np.asarray(comp_ids), np.asarray(word_ids)),
                np.asarray(bit_vals, dtype=np.uint64),
            )
        for level_comps in levels:
            with_succ = [c for c in level_comps if comp_succs[c]]
            if not with_succ:
                continue
            flat: List[int] = []
            starts: List[int] = []
            for comp_id in with_succ:
                starts.append(len(flat))
                flat.extend(comp_succs[comp_id])
            reduced = np.bitwise_or.reduceat(
                rows[np.asarray(flat)], np.asarray(starts), axis=0
            )
            rows[np.asarray(with_succ)] |= reduced
        return [
            int.from_bytes(rows[comp_id].tobytes(), "little")
            for comp_id in range(num_comps)
        ]

    @staticmethod
    def _tarjan_scc(edges_of, n: int) -> Tuple[List[int], List[List[int]]]:
        """Iterative Tarjan SCC.

        Returns ``(component, components)`` where ``components`` lists SCCs in
        reverse topological order of the condensation (every SCC appears after
        all SCCs it can reach).
        """
        index = [-1] * n
        lowlink = [0] * n
        on_stack = [False] * n
        component = [-1] * n
        components: List[List[int]] = []
        stack: List[int] = []
        counter = 0
        for root in range(n):
            if index[root] != -1:
                continue
            work: List[Tuple[int, int, List[int]]] = [(root, 0, edges_of(root))]
            while work:
                node, edge_pos, succ = work[-1]
                if edge_pos == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                while edge_pos < len(succ):
                    child = succ[edge_pos]
                    edge_pos += 1
                    if index[child] == -1:
                        work[-1] = (node, edge_pos, succ)
                        work.append((child, 0, edges_of(child)))
                        advanced = True
                        break
                    if on_stack[child]:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == index[node]:
                    members: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component[member] = len(components)
                        members.append(member)
                        if member == node:
                            break
                    components.append(members)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return component, components

    # ------------------------------------------------------------------
    # Bit helpers
    # ------------------------------------------------------------------
    def _closure_of(self, source: CheckpointId) -> int:
        """Arrival closure of the start state of ``source`` (condition i).

        ``start`` is clamped to the first retained interval: a start below it
        would allow strictly more messages than exist in the pattern, so the
        closure of the base node is exact for it.
        """
        if source.pid not in self._ccp.processes:
            return 0
        start = max(source.index + 1, self._lo[source.pid])
        if start > self._volatile[source.pid]:
            return 0
        return self._closures[self._node(source.pid, start)]

    def _end_mask(self, target: CheckpointId) -> int:
        """Bits of every arrival node satisfying condition (iii) for ``target``."""
        if target.pid not in self._ccp.processes:
            return 0
        width = min(target.index, self._volatile[target.pid]) - self._lo[target.pid] + 1
        if width <= 0:
            return 0
        return ((1 << width) - 1) << self._offsets[target.pid]

    def _first_arrival(self, closure: int, pid: int) -> Optional[int]:
        """Earliest interval of ``pid`` with an arrival bit set in ``closure``."""
        segment = (closure >> self._offsets[pid]) & (
            (1 << (self._volatile[pid] - self._lo[pid] + 1)) - 1
        )
        if not segment:
            return None
        return self._lo[pid] + (segment & -segment).bit_length() - 1

    # ------------------------------------------------------------------
    # Relation queries
    # ------------------------------------------------------------------
    def zigzag_exists(self, source: CheckpointId, target: CheckpointId) -> bool:
        """True iff some zigzag path connects ``source`` to ``target`` (``source ~> target``)."""
        return bool(self._closure_of(source) & self._end_mask(target))

    def zigzag_pairs(self) -> List[Tuple[CheckpointId, CheckpointId]]:
        """All ordered pairs ``(c, c')`` with a zigzag path from ``c`` to ``c'``."""
        pairs: List[Tuple[CheckpointId, CheckpointId]] = []
        all_ids = [
            cid for pid in self._ccp.processes for cid in self._ccp.general_ids(pid)
        ]
        for source in all_ids:
            closure = self._closure_of(source)
            if not closure:
                continue
            for pid in self._ccp.processes:
                # The lowest arrival bit gives the earliest interval some chain
                # can be received in; every checkpoint at or after it is a target.
                first = self._first_arrival(closure, pid)
                if first is None:
                    continue
                pairs.extend(
                    (source, CheckpointId(pid, beta))
                    for beta in range(first, self._volatile[pid] + 1)
                )
        return pairs

    def zigzag_pair_count(self) -> int:
        """Number of ordered zigzag pairs, in closed form (no pair list)."""
        count = 0
        for src_pid in self._ccp.processes:
            for source in self._ccp.general_ids(src_pid):
                closure = self._closure_of(source)
                if not closure:
                    continue
                for pid in self._ccp.processes:
                    first = self._first_arrival(closure, pid)
                    if first is not None:
                        count += self._volatile[pid] + 1 - first
        return count


class BruteForceZigzagAnalysis(_ZigzagBase):
    """Reference implementation: message-level BFS over the hand-off graph.

    This is the pre-kernel algorithm, kept as the executable specification the
    bitset kernel is property-tested and benchmarked against.  Do not use it
    on large patterns: reachability is recomputed per start message and the
    hand-off graph alone is quadratic in the number of messages.
    """

    def __init__(self, ccp: CCP) -> None:
        super().__init__(ccp)
        self._reachable_cache: Dict[int, FrozenSet[int]] = {}

    def _reachable(self, message_id: int) -> FrozenSet[int]:
        """Messages reachable from ``message_id`` in the hand-off graph (incl. itself)."""
        cached = self._reachable_cache.get(message_id)
        if cached is not None:
            return cached
        seen: Set[int] = {message_id}
        stack = [message_id]
        while stack:
            current = stack.pop()
            for succ in self._successors[current]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        result = frozenset(seen)
        self._reachable_cache[message_id] = result
        return result

    def zigzag_exists(self, source: CheckpointId, target: CheckpointId) -> bool:
        """True iff some zigzag path connects ``source`` to ``target`` (``source ~> target``)."""
        for start in self._start_messages(source):
            for reachable in self._reachable(start):
                if self._is_end_message(reachable, target):
                    return True
        return False

    def zigzag_pairs(self) -> List[Tuple[CheckpointId, CheckpointId]]:
        """All ordered pairs ``(c, c')`` with a zigzag path from ``c`` to ``c'``."""
        pairs: List[Tuple[CheckpointId, CheckpointId]] = []
        all_ids = [
            cid for pid in self._ccp.processes for cid in self._ccp.general_ids(pid)
        ]
        for source in all_ids:
            starts = self._start_messages(source)
            if not starts:
                continue
            reachable: Set[int] = set()
            for start in starts:
                reachable |= self._reachable(start)
            for target in all_ids:
                if any(self._is_end_message(mid, target) for mid in reachable):
                    pairs.append((source, target))
        return pairs
