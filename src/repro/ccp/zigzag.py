"""Zigzag paths, Z-paths, C-paths and useless checkpoints (Netzer & Xu).

Definition 3 of the paper: a sequence of messages ``[m1, ..., mk]`` is a
*zigzag path* from ``c_a^alpha`` to ``c_b^beta`` iff

(i)   ``p_a`` sends ``m1`` after ``c_a^alpha``;
(ii)  if ``m_i`` is received by ``p_c``, then ``m_{i+1}`` is sent by ``p_c`` in
      the same or a later checkpoint interval;
(iii) ``p_b`` receives ``mk`` before ``c_b^beta``.

A zigzag path is *causal* (a C-path) if the receipt of each message but the
last causally precedes the send of the next one; otherwise it is a
(non-causal) Z-path.  A zigzag path from a checkpoint to itself is a *zigzag
cycle* and renders the checkpoint *useless*.

The :class:`ZigzagAnalysis` class computes the zigzag relation over a
:class:`repro.ccp.CCP` by reachability over a message graph: there is an edge
``m -> m'`` iff ``m'`` is sent by the receiver of ``m`` in the same or a later
interval than the one in which ``m`` was received.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP, MessageInterval


@dataclass(frozen=True)
class ZigzagPath:
    """A concrete zigzag path between two checkpoints.

    ``message_ids`` lists the messages in order; ``causal`` tells whether the
    path is a C-path (every hand-off is causal) or a Z-path.
    """

    source: CheckpointId
    target: CheckpointId
    message_ids: Tuple[int, ...]
    causal: bool

    def __len__(self) -> int:
        return len(self.message_ids)


class ZigzagAnalysis:
    """Zigzag-path queries over a CCP."""

    def __init__(self, ccp: CCP) -> None:
        self._ccp = ccp
        self._messages: Dict[int, MessageInterval] = {
            m.message_id: m for m in ccp.messages()
        }
        self._successors: Dict[int, List[int]] = self._build_message_graph()
        self._reachable_cache: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    # Message graph
    # ------------------------------------------------------------------
    def _build_message_graph(self) -> Dict[int, List[int]]:
        successors: Dict[int, List[int]] = {mid: [] for mid in self._messages}
        by_sender: Dict[int, List[MessageInterval]] = {}
        for message in self._messages.values():
            by_sender.setdefault(message.sender, []).append(message)
        for message in self._messages.values():
            # m -> m' iff m' is sent by m's receiver in the same or a later
            # checkpoint interval than the one in which m was received.
            for candidate in by_sender.get(message.receiver, []):
                if candidate.message_id == message.message_id:
                    continue
                if candidate.send_interval >= message.receive_interval:
                    successors[message.message_id].append(candidate.message_id)
        return successors

    def _reachable(self, message_id: int) -> FrozenSet[int]:
        """Messages reachable from ``message_id`` in the hand-off graph (incl. itself)."""
        cached = self._reachable_cache.get(message_id)
        if cached is not None:
            return cached
        seen: Set[int] = {message_id}
        stack = [message_id]
        while stack:
            current = stack.pop()
            for succ in self._successors[current]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        result = frozenset(seen)
        self._reachable_cache[message_id] = result
        return result

    # ------------------------------------------------------------------
    # Relation queries
    # ------------------------------------------------------------------
    def _start_messages(self, source: CheckpointId) -> List[int]:
        """Messages sent by the source process after ``source`` (condition i)."""
        return [
            m.message_id
            for m in self._messages.values()
            if m.sender == source.pid and m.send_interval >= source.index + 1
        ]

    def _is_end_message(self, message_id: int, target: CheckpointId) -> bool:
        """Condition (iii): received by the target process before the target checkpoint."""
        message = self._messages[message_id]
        return message.receiver == target.pid and message.receive_interval <= target.index

    def zigzag_exists(self, source: CheckpointId, target: CheckpointId) -> bool:
        """True iff some zigzag path connects ``source`` to ``target`` (``source ~> target``)."""
        for start in self._start_messages(source):
            for reachable in self._reachable(start):
                if self._is_end_message(reachable, target):
                    return True
        return False

    def find_zigzag_path(
        self, source: CheckpointId, target: CheckpointId
    ) -> Optional[ZigzagPath]:
        """A concrete (shortest) zigzag path from ``source`` to ``target``, if any."""
        best: Optional[List[int]] = None
        for start in self._start_messages(source):
            path = self._shortest_to_end(start, target)
            if path is not None and (best is None or len(path) < len(best)):
                best = path
        if best is None:
            return None
        return ZigzagPath(
            source=source,
            target=target,
            message_ids=tuple(best),
            causal=self.is_causal_sequence(best),
        )

    def _shortest_to_end(self, start: int, target: CheckpointId) -> Optional[List[int]]:
        parents: Dict[int, Optional[int]] = {start: None}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            if self._is_end_message(current, target):
                path: List[int] = []
                node: Optional[int] = current
                while node is not None:
                    path.append(node)
                    node = parents[node]
                return list(reversed(path))
            for succ in self._successors[current]:
                if succ not in parents:
                    parents[succ] = current
                    queue.append(succ)
        return None

    # ------------------------------------------------------------------
    # Path classification (Definition 3 checker)
    # ------------------------------------------------------------------
    def is_zigzag_sequence(
        self,
        message_ids: Sequence[int],
        source: CheckpointId,
        target: CheckpointId,
    ) -> bool:
        """Check a concrete message sequence against Definition 3."""
        if not message_ids:
            return False
        messages = [self._messages[mid] for mid in message_ids]
        first, last = messages[0], messages[-1]
        if first.sender != source.pid or first.send_interval < source.index + 1:
            return False
        if last.receiver != target.pid or last.receive_interval > target.index:
            return False
        for current, nxt in zip(messages, messages[1:]):
            if nxt.sender != current.receiver:
                return False
            if nxt.send_interval < current.receive_interval:
                return False
        return True

    def is_causal_sequence(self, message_ids: Sequence[int]) -> bool:
        """True iff each receipt causally precedes the next send (C-path hand-offs)."""
        messages = [self._messages[mid] for mid in message_ids]
        for current, nxt in zip(messages, messages[1:]):
            if nxt.sender != current.receiver:
                return False
            if nxt.send_seq <= current.receive_seq:
                return False
        return True

    # ------------------------------------------------------------------
    # Cycles and useless checkpoints
    # ------------------------------------------------------------------
    def has_zigzag_cycle(self, checkpoint: CheckpointId) -> bool:
        """True iff a zigzag path connects ``checkpoint`` to itself (Z-cycle)."""
        return self.zigzag_exists(checkpoint, checkpoint)

    def useless_checkpoints(self) -> List[CheckpointId]:
        """All checkpoints involved in a zigzag cycle (cannot be in any consistent global checkpoint)."""
        useless: List[CheckpointId] = []
        for pid in self._ccp.processes:
            for cid in self._ccp.general_ids(pid):
                if self.has_zigzag_cycle(cid):
                    useless.append(cid)
        return useless

    def zigzag_pairs(self) -> List[Tuple[CheckpointId, CheckpointId]]:
        """All ordered pairs ``(c, c')`` with a zigzag path from ``c`` to ``c'``."""
        pairs: List[Tuple[CheckpointId, CheckpointId]] = []
        all_ids = [
            cid for pid in self._ccp.processes for cid in self._ccp.general_ids(pid)
        ]
        for source in all_ids:
            starts = self._start_messages(source)
            if not starts:
                continue
            reachable: Set[int] = set()
            for start in starts:
                reachable |= self._reachable(start)
            for target in all_ids:
                if any(self._is_end_message(mid, target) for mid in reachable):
                    pairs.append((source, target))
        return pairs
